//! Property-based tests for the simulator: topology route invariants,
//! transport conservation laws, and metric bounds.

use edgechain_sim::{
    gini, EventQueue, NodeId, Point, SampleSet, SimTime, Topology, TopologyConfig, Transport,
    TransportConfig, UNREACHABLE,
};
use proptest::prelude::*;
use rand::SeedableRng;

fn arb_points(max: usize) -> impl Strategy<Value = Vec<Point>> {
    prop::collection::vec((0.0f64..300.0, 0.0f64..300.0), 2..max)
        .prop_map(|v| v.into_iter().map(Point::from).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hops_are_symmetric(points in arb_points(20)) {
        let topo = Topology::from_positions(points);
        for a in topo.nodes() {
            for b in topo.nodes() {
                prop_assert_eq!(topo.hops(a, b), topo.hops(b, a));
            }
        }
    }

    #[test]
    fn hops_satisfy_triangle_inequality(points in arb_points(16)) {
        let topo = Topology::from_positions(points);
        for a in topo.nodes() {
            for b in topo.nodes() {
                for c in topo.nodes() {
                    let ab = topo.hops(a, b);
                    let bc = topo.hops(b, c);
                    let ac = topo.hops(a, c);
                    if ab != UNREACHABLE && bc != UNREACHABLE {
                        prop_assert!(ac != UNREACHABLE);
                        prop_assert!(ac <= ab + bc);
                    }
                }
            }
        }
    }

    #[test]
    fn path_length_matches_hops(points in arb_points(16)) {
        let topo = Topology::from_positions(points);
        for a in topo.nodes() {
            for b in topo.nodes() {
                match topo.path(a, b) {
                    Some(path) => {
                        prop_assert_eq!(path.len() as u32 - 1, topo.hops(a, b));
                        prop_assert_eq!(path[0], a);
                        prop_assert_eq!(*path.last().unwrap(), b);
                        // Consecutive path nodes are radio neighbors.
                        for w in path.windows(2) {
                            prop_assert!(topo.neighbors(w[0]).contains(&w[1]));
                        }
                    }
                    None => prop_assert_eq!(topo.hops(a, b), UNREACHABLE),
                }
            }
        }
    }

    #[test]
    fn rdc_is_symmetric_and_nonnegative(points in arb_points(12)) {
        let topo = Topology::from_positions(points);
        for a in topo.nodes() {
            for b in topo.nodes() {
                let c = topo.rdc(a, b);
                prop_assert!(c >= 0.0);
                prop_assert_eq!(c, topo.rdc(b, a));
                if a == b {
                    prop_assert_eq!(c, 0.0);
                }
            }
        }
    }

    #[test]
    fn unicast_conserves_bytes(points in arb_points(12), bytes in 1u64..10_000_000) {
        let topo = Topology::from_positions(points);
        let mut tr = Transport::new(TransportConfig::default());
        let a = NodeId(0);
        let b = NodeId(topo.len() - 1);
        if let Ok(delivery) = tr.unicast(&topo, a, b, bytes, SimTime::ZERO) {
            let hops = topo.hops(a, b) as u64;
            prop_assert_eq!(delivery.hops as u64, hops);
            // Every hop transmits and receives the full payload once.
            prop_assert_eq!(tr.stats().total_sent(), bytes * hops);
            let total_recv: u64 = topo.nodes()
                .map(|v| tr.stats().received_bytes(v))
                .sum();
            prop_assert_eq!(total_recv, bytes * hops);
        }
    }

    #[test]
    fn unicast_arrival_increases_with_hops(points in arb_points(12)) {
        let topo = Topology::from_positions(points);
        let src = NodeId(0);
        let mut last_by_hops: Vec<(u32, SimTime)> = Vec::new();
        for dst in topo.nodes() {
            if dst == src { continue; }
            let mut tr = Transport::new(TransportConfig::default());
            if let Ok(d) = tr.unicast(&topo, src, dst, 1000, SimTime::ZERO) {
                last_by_hops.push((d.hops, d.arrival));
            }
        }
        last_by_hops.sort();
        for w in last_by_hops.windows(2) {
            if w[0].0 < w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
    }

    #[test]
    fn broadcast_reaches_exactly_the_component(points in arb_points(16)) {
        let topo = Topology::from_positions(points);
        let src = NodeId(0);
        let mut tr = Transport::new(TransportConfig::default());
        let reached: Vec<NodeId> =
            tr.broadcast(&topo, src, 100, SimTime::ZERO).into_iter().map(|(v, _)| v).collect();
        for v in topo.nodes() {
            if v == src { continue; }
            prop_assert_eq!(reached.contains(&v), topo.reachable(src, v));
        }
    }

    #[test]
    fn gini_bounded_and_translation_sensitive(values in prop::collection::vec(0.0f64..1000.0, 2..50)) {
        let g = gini(&values);
        prop_assert!((0.0..1.0).contains(&g), "gini {g}");
        // Adding a constant to every value strictly reduces inequality
        // (unless already equal).
        let shifted: Vec<f64> = values.iter().map(|v| v + 1000.0).collect();
        prop_assert!(gini(&shifted) <= g + 1e-12);
    }

    #[test]
    fn event_queue_pops_sorted(times in prop::collection::vec(0u64..100_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_millis(t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    #[test]
    fn quantiles_are_monotone_and_within_range(
        values in prop::collection::vec(-1e9f64..1e9, 1..200),
        qa in 0.0f64..1.0,
        qb in 0.0f64..1.0,
    ) {
        let mut s: SampleSet = values.iter().copied().collect();
        let (lo, hi) = (qa.min(qb), qa.max(qb));
        let va = s.quantile(lo).unwrap();
        let vb = s.quantile(hi).unwrap();
        prop_assert!(va <= vb, "quantiles not monotone: q{lo}={va} > q{hi}={vb}");
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((min..=max).contains(&va));
        prop_assert!((min..=max).contains(&vb));
    }

    #[test]
    fn probabilistic_flood_reach_is_subset_of_flood(
        points in arb_points(16),
        p in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let topo = Topology::from_positions(points);
        let mut full = Transport::new(TransportConfig::default());
        let reach_full: std::collections::HashSet<NodeId> = full
            .broadcast(&topo, NodeId(0), 10, SimTime::ZERO)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        let mut part = Transport::new(TransportConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let reach_part: std::collections::HashSet<NodeId> = part
            .broadcast_probabilistic(&topo, NodeId(0), 10, SimTime::ZERO, p, &mut rng)
            .into_iter()
            .map(|(v, _)| v)
            .collect();
        prop_assert!(reach_part.is_subset(&reach_full));
        prop_assert!(part.stats().total_sent() <= full.stats().total_sent());
        // Direct neighbors of the source are always reached.
        for &v in topo.neighbors(NodeId(0)) {
            prop_assert!(reach_part.contains(&v));
        }
    }

    #[test]
    fn mobility_preserves_node_count_and_field(points in arb_points(16), steps in 1usize..5) {
        let mut topo = Topology::from_positions(points.clone());
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        for _ in 0..steps {
            topo.mobility_step(&mut rng);
        }
        prop_assert_eq!(topo.len(), points.len());
        for v in topo.nodes() {
            let p = topo.position(v);
            prop_assert!(topo.config().field.contains(&p));
            prop_assert!(topo.home(v).distance(&p) <= topo.mobility_range(v) + 1e-9);
        }
    }

    /// The grid-bucket adjacency build (cell side = radio range, 3×3
    /// candidate neighborhoods) must produce exactly the neighbor lists of
    /// the brute-force all-pairs distance scan, for arbitrary placements
    /// and radio ranges — including ranges larger than the paper's, where
    /// the grid clamps cells to the field boundary.
    #[test]
    fn grid_bucket_adjacency_matches_brute_force(
        points in arb_points(40),
        comm_range in 5.0f64..150.0,
        steps in 0usize..3,
    ) {
        let config = TopologyConfig {
            comm_range,
            ..TopologyConfig::default()
        };
        let mut topo = Topology::from_positions_with_config(points, config);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..steps {
            topo.mobility_step(&mut rng); // re-runs the grid build at new positions
        }
        for a in topo.nodes() {
            let mut brute: Vec<NodeId> = topo
                .nodes()
                .filter(|&b| {
                    b != a && topo.position(a).distance(&topo.position(b)) <= comm_range
                })
                .collect();
            brute.sort();
            prop_assert_eq!(
                topo.neighbors(a),
                &brute[..],
                "grid adjacency diverged from brute force at {:?}",
                a
            );
        }
    }
}
