//! A minimal scoped-thread worker pool with deterministic output order.
//!
//! The simulator's reproducibility guarantee is *bit-identical seeded
//! runs*, which rules out any parallelism whose result depends on thread
//! scheduling. This pool sidesteps the problem structurally: the input
//! index range is split into **contiguous chunks**, each worker computes
//! its chunk left-to-right with a pure function of the index, and the
//! per-chunk outputs are concatenated **in index order** on the calling
//! thread. The result is therefore exactly `(0..len).map(f).collect()`
//! regardless of how the OS schedules the workers — only wall-clock time
//! changes.
//!
//! Built on [`std::thread::scope`] so borrowed inputs work without any
//! `'static` gymnastics and without new dependencies. Used to parallelize
//! per-source BFS in [`crate::Topology::rebuild_routes`] and the
//! independent parameter points of the bench sweep binaries.
//!
//! Note that telemetry sessions are thread-local: a worker that should
//! record metrics must arm its own session inside `f` (see the `perf`
//! bench binary for the merge-in-index-order pattern).

use std::num::NonZeroUsize;

/// Hard ceiling on worker threads, keeping the pool polite on big hosts
/// where BFS chunks would become too small to amortize spawn cost.
const MAX_WORKERS: usize = 8;

/// How many workers the pool would use for `len` items given the caller's
/// cap: `min(cap, available_parallelism, MAX_WORKERS, len)`, at least 1.
pub fn worker_count(len: usize, max_workers: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hardware.min(MAX_WORKERS).min(max_workers).min(len).max(1)
}

/// Maps `f` over `0..len` using up to `max_workers` scoped threads and
/// returns the results **in index order** — byte-for-byte the same output
/// as the serial `(0..len).map(f).collect()`.
///
/// `f` must be a pure function of its index (it may read shared borrowed
/// state, hence `Sync`). With `max_workers <= 1`, a single-item range, or
/// a single-core host, no thread is spawned at all.
///
/// # Panics
///
/// Propagates a panic from any worker.
///
/// # Examples
///
/// ```
/// use edgechain_sim::pool::parallel_map_range;
///
/// let squares = parallel_map_range(6, 4, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25]);
/// ```
pub fn parallel_map_range<R, F>(len: usize, max_workers: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let workers = worker_count(len, max_workers);
    if workers <= 1 {
        return (0..len).map(f).collect();
    }
    let chunk = len.div_ceil(workers);
    let chunks: Vec<Vec<R>> = std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                scope.spawn(move || {
                    let start = w * chunk;
                    let end = ((w + 1) * chunk).min(len);
                    (start..end).map(f).collect::<Vec<R>>()
                })
            })
            .collect();
        // Joining in spawn order merges chunk outputs in index order.
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    });
    let mut out = Vec::with_capacity(len);
    for c in chunks {
        out.extend(c);
    }
    out
}

/// [`parallel_map_range`] over a slice: returns `items.iter().map(f)` in
/// item order, computed on up to `max_workers` threads.
///
/// # Examples
///
/// ```
/// use edgechain_sim::pool::parallel_map;
///
/// let doubled = parallel_map(&[1, 2, 3], 2, |&x| x * 2);
/// assert_eq!(doubled, vec![2, 4, 6]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], max_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    parallel_map_range(items.len(), max_workers, |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_range() {
        let out: Vec<usize> = parallel_map_range(0, 4, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn matches_serial_for_all_worker_counts() {
        let serial: Vec<u64> = (0..103)
            .map(|i| (i as u64).wrapping_mul(2654435761))
            .collect();
        for cap in [1, 2, 3, 5, 8, 64] {
            let par = parallel_map_range(103, cap, |i| (i as u64).wrapping_mul(2654435761));
            assert_eq!(par, serial, "cap={cap}");
        }
    }

    #[test]
    fn uneven_chunks_still_ordered() {
        // len deliberately not divisible by typical worker counts.
        let out = parallel_map_range(17, 4, |i| i);
        assert_eq!(out, (0..17).collect::<Vec<_>>());
    }

    #[test]
    fn slice_variant_borrows_input() {
        let words = ["a", "bb", "ccc"];
        let lens = parallel_map(&words, 2, |w| w.len());
        assert_eq!(lens, vec![1, 2, 3]);
    }

    #[test]
    fn worker_count_clamps() {
        assert_eq!(worker_count(100, 1), 1);
        assert_eq!(worker_count(0, 8), 1);
        assert!(worker_count(100, usize::MAX) <= MAX_WORKERS);
        assert!(worker_count(3, usize::MAX) <= 3);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        let _ = parallel_map_range(8, 4, |i| {
            assert!(i != 5, "boom");
            i
        });
    }
}
