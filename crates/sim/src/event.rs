//! Deterministic discrete-event scheduler.
//!
//! Time is kept in integer **milliseconds** ([`SimTime`]) so that event
//! ordering is exact and runs are bit-for-bit reproducible. Ties are broken
//! by insertion sequence number (FIFO among simultaneous events).
//!
//! # Examples
//!
//! ```
//! use edgechain_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::from_secs(2), "later");
//! q.schedule(SimTime::from_millis(500), "sooner");
//! let (t, e) = q.pop().unwrap();
//! assert_eq!(e, "sooner");
//! assert_eq!(t, SimTime::from_millis(500));
//! ```

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Simulation timestamp in milliseconds since the start of the run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a timestamp from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Creates a timestamp from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Creates a timestamp from fractional seconds (rounded to ms).
    ///
    /// # Panics
    ///
    /// Panics if `s` is negative or not finite.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "time must be finite and nonnegative"
        );
        SimTime((s * 1000.0).round() as u64)
    }

    /// Milliseconds since time zero.
    pub const fn as_millis(&self) -> u64 {
        self.0
    }

    /// Whole seconds since time zero (truncating).
    pub const fn as_secs(&self) -> u64 {
        self.0 / 1000
    }

    /// Fractional seconds since time zero.
    pub fn as_secs_f64(&self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(&self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    /// # Panics
    ///
    /// Panics (in debug) on underflow, like integer subtraction.
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap on (time, seq).
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events, popped in time order with FIFO
/// tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// Current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules `event` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is in the past (before the last popped event).
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: {at} < {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            event,
        });
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule(self.now + delay, event);
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        self.now = entry.time;
        Some((entry.time, entry.event))
    }

    /// Timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

impl<E> fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EventQueue")
            .field("now", &self.now)
            .field("pending", &self.heap.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), 3);
        q.schedule(SimTime::from_millis(10), 1);
        q.schedule(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn fifo_among_simultaneous() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::from_secs(1), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn rejects_past_scheduling() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), "a");
        q.pop();
        q.schedule_in(SimTime::from_secs(3), "b");
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_secs(5));
    }

    #[test]
    fn time_arithmetic() {
        let t = SimTime::from_secs(2) + SimTime::from_millis(500);
        assert_eq!(t.as_millis(), 2500);
        assert_eq!(t.as_secs(), 2);
        assert!((t.as_secs_f64() - 2.5).abs() < 1e-12);
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimTime::ZERO
        );
        assert_eq!(format!("{t}"), "2.500s");
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn from_secs_f64_rounds() {
        assert_eq!(SimTime::from_secs_f64(0.0105).as_millis(), 11);
    }
}
