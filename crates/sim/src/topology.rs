//! Wireless multi-hop network topology.
//!
//! Nodes are placed uniformly at random in a [`Field`]; two nodes share a
//! link when within radio range (unit-disk model). Each node additionally
//! has a *mobility range*: it wanders inside a disc of that radius around
//! its home position (paper §IV-A.2 — the range enters the Range-Distance
//! Cost; §VI — mobility is "within 30 meters ranges").
//!
//! The topology maintains hop counts and next-hop routing tables (BFS) so
//! the transport layer can forward store-and-forward messages. Two
//! interchangeable representations sit behind the same API:
//!
//! * **Dense** (default): eager all-pairs tables plus a precomputed n×n
//!   RDC matrix — the bit-exact reference, fine up to a few thousand
//!   nodes.
//! * **Sparse** ([`TopologyConfig::sparse_routes`]): adjacency is built
//!   with a grid-bucket spatial hash (cell = radio range) and per-source
//!   routing/RDC rows are materialized lazily on first query, so memory
//!   is O(n·degree + touched sources·n) instead of Θ(n²). Every query
//!   runs the identical BFS and Eq. 2 arithmetic, so results are
//!   bit-identical to the dense tables.

use crate::geometry::{CellGrid, Field, Point};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;
use std::sync::OnceLock;

/// Identifier of a simulated node (dense, `0..n`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Hop count marker for unreachable node pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Below this node count the per-source BFS fan-out runs serially: the
/// whole rebuild is a few hundred microseconds and thread spawns would
/// dominate.
const PARALLEL_BFS_MIN_NODES: usize = 64;

/// Configuration for generating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Deployment field (default 300 m × 300 m).
    pub field: Field,
    /// Radio range in meters (default 70 m, typical 802.11n).
    pub comm_range: f64,
    /// Mobility radius in meters for every node (default 30 m).
    pub mobility_range: f64,
    /// How many placement attempts to make before giving up on a connected
    /// topology.
    pub max_placement_attempts: usize,
    /// Use the sparse lazy-row representation instead of the eager dense
    /// tables. Query results are bit-identical; only memory and rebuild
    /// cost change. Default `false` (the dense reference path).
    #[serde(default)]
    pub sparse_routes: bool,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            field: Field::paper_default(),
            comm_range: 70.0,
            mobility_range: 30.0,
            max_placement_attempts: 10_000,
            sparse_routes: false,
        }
    }
}

/// Sentinel in [`RouteRow::next`] for "no next hop".
const NO_HOP: u32 = u32::MAX;

/// One source's lazily materialized routing row.
#[derive(Debug, Clone)]
struct RouteRow {
    /// BFS hop count to every destination ([`UNREACHABLE`] when cut off).
    hops: Vec<u32>,
    /// First hop toward each destination; [`NO_HOP`] when none.
    next: Vec<u32>,
}

/// Routing/RDC storage: eager all-pairs tables or lazy per-source rows.
#[derive(Debug, Clone)]
enum Routes {
    /// The bit-exact reference: Θ(n²) tables rebuilt eagerly.
    Dense {
        /// `hops[i][j]` — BFS hop count, [`UNREACHABLE`] when partitioned.
        hops: Vec<Vec<u32>>,
        /// `next_hop[i][j]` — first hop on a shortest path from `i` to `j`.
        next_hop: Vec<Vec<Option<NodeId>>>,
        /// Dense Range-Distance Cost matrix (`n × n`, row-major).
        rdc: Vec<f64>,
    },
    /// Per-source rows materialized on first query; cleared on rebuild.
    Sparse {
        rows: Vec<OnceLock<RouteRow>>,
        rdc_rows: Vec<OnceLock<Vec<f64>>>,
    },
}

/// Eq. 2 with an explicit hop count: `hops + range_i/norm + range_j/norm`,
/// with the unreachable penalty substituted for the hop term. Kept as one
/// free function so the dense matrix, the lazy rows, and the in-place
/// mobility patches all perform the identical float operations.
fn rdc_formula(i: usize, j: usize, hops: u32, mobility: &[f64], norm: f64, penalty: f64) -> f64 {
    if i == j {
        return 0.0;
    }
    let hop_cost = match hops {
        UNREACHABLE => penalty,
        h => h as f64,
    };
    hop_cost + mobility[i] / norm + mobility[j] / norm
}

/// A snapshot of the multi-hop network: positions, links, and routes.
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    home: Vec<Point>,
    position: Vec<Point>,
    mobility: Vec<f64>,
    /// Fault-injection state: crashed nodes have no radio at all.
    active: Vec<bool>,
    /// Fault-injection state: when set, links between a node inside the
    /// cut set and one outside it are severed (a clean network split on
    /// top of whatever the geometry allows).
    partition: Option<Vec<bool>>,
    adjacency: Vec<Vec<NodeId>>,
    routes: Routes,
    /// Bumped on every routing/RDC change; lets callers detect staleness
    /// of anything they derived from this topology snapshot.
    epoch: u64,
}

impl Topology {
    /// Generates a topology whose *home* positions form a connected graph,
    /// resampling until connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if no connected placement is
    /// found within `config.max_placement_attempts`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_connected<R: Rng + ?Sized>(
        n: usize,
        config: TopologyConfig,
        rng: &mut R,
    ) -> Result<Self, TopologyError> {
        assert!(n > 0, "topology must have at least one node");
        for _ in 0..config.max_placement_attempts.max(1) {
            let home: Vec<Point> = (0..n)
                .map(|_| {
                    Point::new(
                        rng.gen::<f64>() * config.field.width,
                        rng.gen::<f64>() * config.field.height,
                    )
                })
                .collect();
            let topo = Self::from_positions_with_config(home, config.clone());
            if topo.is_connected() {
                return Ok(topo);
            }
        }
        Err(TopologyError::Disconnected {
            nodes: n,
            attempts: config.max_placement_attempts,
        })
    }

    /// Builds a topology from explicit positions with the default config.
    pub fn from_positions(positions: Vec<Point>) -> Self {
        Self::from_positions_with_config(positions, TopologyConfig::default())
    }

    /// Builds a topology from explicit positions and a config.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn from_positions_with_config(positions: Vec<Point>, config: TopologyConfig) -> Self {
        assert!(
            !positions.is_empty(),
            "topology must have at least one node"
        );
        let n = positions.len();
        let mobility = vec![config.mobility_range; n];
        let mut topo = Topology {
            config,
            home: positions.clone(),
            position: positions,
            mobility,
            active: vec![true; n],
            partition: None,
            adjacency: Vec::new(),
            routes: Routes::Dense {
                hops: Vec::new(),
                next_hop: Vec::new(),
                rdc: Vec::new(),
            },
            epoch: 0,
        };
        topo.rebuild_routes();
        topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// Whether the topology is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// The generation configuration.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.position[node.0]
    }

    /// Home (anchor) position of `node`.
    pub fn home(&self, node: NodeId) -> Point {
        self.home[node.0]
    }

    /// Mobility radius of `node` in meters.
    pub fn mobility_range(&self, node: NodeId) -> f64 {
        self.mobility[node.0]
    }

    /// Overrides the mobility radius of `node`. Refreshes the node's row
    /// and column of the cached RDC state (Eq. 2 depends on both
    /// endpoints' ranges) and bumps [`Topology::epoch`]. In sparse mode
    /// only already-materialized RDC rows are patched — hop rows are
    /// unaffected, and lazily computed rows always read fresh mobility.
    pub fn set_mobility_range(&mut self, node: NodeId, range: f64) {
        self.mobility[node.0] = range;
        let n = self.len();
        let i = node.0;
        let norm = self.config.comm_range;
        let penalty = n as f64;
        let mobility = &self.mobility;
        match &mut self.routes {
            Routes::Dense { hops, rdc, .. } => {
                for j in 0..n {
                    rdc[i * n + j] = rdc_formula(i, j, hops[i][j], mobility, norm, penalty);
                    rdc[j * n + i] = rdc_formula(j, i, hops[j][i], mobility, norm, penalty);
                }
            }
            Routes::Sparse { rows, rdc_rows } => {
                for (s, lock) in rdc_rows.iter_mut().enumerate() {
                    let Some(rdc_row) = lock.get_mut() else {
                        continue;
                    };
                    let hops_row = &rows[s]
                        .get()
                        .expect("materialized rdc row implies materialized route row")
                        .hops;
                    if s == i {
                        for j in 0..n {
                            rdc_row[j] = rdc_formula(s, j, hops_row[j], mobility, norm, penalty);
                        }
                    } else {
                        rdc_row[i] = rdc_formula(s, i, hops_row[i], mobility, norm, penalty);
                    }
                }
            }
        }
        self.epoch += 1;
    }

    /// Monotone change counter: incremented whenever routes or RDC values
    /// change (route rebuilds, activation flips, partitions, mobility
    /// steps, range overrides). Two reads returning the same epoch
    /// guarantee every `hops`/`rdc` query in between saw identical state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `node` is up (not crashed by fault injection).
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.0]
    }

    /// Marks `node` as crashed (`false`) or restarted (`true`) and rebuilds
    /// routes. A crashed node has no links: nothing can be sent to it,
    /// from it, or *through* it.
    pub fn set_active(&mut self, node: NodeId, active: bool) {
        if self.active[node.0] != active {
            self.active[node.0] = active;
            self.rebuild_routes();
        }
    }

    /// Iterator over nodes that are currently up.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&v| self.active[v.0])
    }

    /// Number of nodes currently up.
    pub fn active_len(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Imposes (or, with `None`, lifts) a network partition: links between
    /// nodes inside `cut` and nodes outside it are severed. Rebuilds routes.
    pub fn set_partition(&mut self, cut: Option<&[NodeId]>) {
        self.partition = cut.map(|side| {
            let mut inside = vec![false; self.len()];
            for &v in side {
                inside[v.0] = true;
            }
            inside
        });
        self.rebuild_routes();
    }

    /// Whether a partition cut is currently imposed.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Direct neighbors of `node` in the current snapshot.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// Hop count between two nodes ([`UNREACHABLE`] when partitioned,
    /// `0` for `a == b`).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        match &self.routes {
            Routes::Dense { hops, .. } => hops[a.0][b.0],
            Routes::Sparse { .. } => self.sparse_row(a.0).hops[b.0],
        }
    }

    /// Whether `b` is currently reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.hops(a, b) != UNREACHABLE
    }

    /// Whether all *active* nodes form one connected component.
    pub fn is_connected(&self) -> bool {
        let Some(origin) = self.active_nodes().next() else {
            return true;
        };
        self.active_nodes().all(|v| self.reachable(origin, v))
    }

    /// First hop on a shortest path from `cur` toward `dst`, read from
    /// `cur`'s own BFS tree (both representations agree bit-for-bit).
    fn next_hop_of(&self, cur: usize, dst: usize) -> Option<NodeId> {
        match &self.routes {
            Routes::Dense { next_hop, .. } => next_hop[cur][dst],
            Routes::Sparse { .. } => match self.sparse_row(cur).next[dst] {
                NO_HOP => None,
                v => Some(NodeId(v as usize)),
            },
        }
    }

    /// Shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when unreachable. `a == b` yields a single-element path.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        if !self.reachable(a, b) {
            return None;
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = self
                .next_hop_of(cur.0, b.0)
                .expect("reachable pair must have a next hop");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Moves every node to a fresh uniform point inside its mobility disc
    /// (clamped to the field) and rebuilds links and routes. This models the
    /// paper's "nodes move within such a range in a short period of time".
    pub fn mobility_step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.len() {
            let r = self.mobility[i];
            if r <= 0.0 {
                continue;
            }
            // Uniform point in a disc via rejection-free polar sampling.
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let rho = r * rng.gen::<f64>().sqrt();
            let p = Point::new(
                self.home[i].x + rho * theta.cos(),
                self.home[i].y + rho * theta.sin(),
            );
            self.position[i] = self.config.field.clamp(p);
        }
        self.rebuild_routes();
    }

    /// Recomputes adjacency and routing state from current positions.
    /// Dense mode rebuilds the all-pairs tables eagerly (fanned out over
    /// the worker pool); sparse mode only rebuilds adjacency and clears
    /// the lazy rows.
    pub fn rebuild_routes(&mut self) {
        let n = self.len();
        self.rebuild_adjacency();
        if self.config.sparse_routes {
            self.routes = Routes::Sparse {
                rows: (0..n).map(|_| OnceLock::new()).collect(),
                rdc_rows: (0..n).map(|_| OnceLock::new()).collect(),
            };
            self.epoch += 1;
            return;
        }
        // Per-source BFS trees are independent; fan them out over the
        // worker pool on larger topologies. The pool returns rows in
        // source order, so the tables are identical to a serial build.
        let adjacency = &self.adjacency;
        let active = &self.active;
        let workers = if n >= PARALLEL_BFS_MIN_NODES {
            usize::MAX
        } else {
            1
        };
        let bfs = crate::pool::parallel_map_range(n, workers, |src| {
            if active[src] {
                bfs_rows(adjacency, n, src)
            } else {
                (vec![UNREACHABLE; n], vec![None; n])
            }
        });
        let mut hops = Vec::with_capacity(n);
        let mut next_hop = Vec::with_capacity(n);
        for (hops_row, next_row) in bfs {
            hops.push(hops_row);
            next_hop.push(next_row);
        }
        // Dense RDC matrix from the fresh hop tables.
        let norm = self.config.comm_range;
        let penalty = n as f64;
        let mobility = &self.mobility;
        let mut rdc = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                rdc[i * n + j] = rdc_formula(i, j, hops[i][j], mobility, norm, penalty);
            }
        }
        self.routes = Routes::Dense {
            hops,
            next_hop,
            rdc,
        };
        self.epoch += 1;
    }

    /// Rebuilds the adjacency lists with a grid-bucket spatial hash
    /// (cell = radio range): each node tests only the candidates in its
    /// 3×3 cell neighborhood — O(degree) work per node instead of the
    /// O(n) pair scan. Sorting each list ascending reproduces exactly the
    /// ordering of the classic `i < j` double loop, so BFS tie-breaking
    /// (and therefore every route) is unchanged.
    fn rebuild_adjacency(&mut self) {
        let n = self.len();
        let range = self.config.comm_range;
        let grid = CellGrid::new(&self.config.field, range, &self.position);
        let mut adjacency = vec![Vec::new(); n];
        for (i, slot) in adjacency.iter_mut().enumerate() {
            if !self.active[i] {
                continue;
            }
            let mut nbrs: Vec<NodeId> = Vec::new();
            grid.for_each_candidate(&self.position[i], |j| {
                if j == i || !self.active[j] || self.cut_severs(i, j) {
                    return;
                }
                if self.position[i].distance(&self.position[j]) <= range {
                    nbrs.push(NodeId(j));
                }
            });
            nbrs.sort_unstable();
            *slot = nbrs;
        }
        self.adjacency = adjacency;
    }

    /// The lazily materialized routing row for `src` (sparse mode only).
    fn sparse_row(&self, src: usize) -> &RouteRow {
        let Routes::Sparse { rows, .. } = &self.routes else {
            unreachable!("sparse_row called on a dense topology");
        };
        rows[src].get_or_init(|| {
            let n = self.len();
            let (hops, next) = if self.active[src] {
                bfs_rows(&self.adjacency, n, src)
            } else {
                (vec![UNREACHABLE; n], vec![None; n])
            };
            RouteRow {
                hops,
                next: next
                    .into_iter()
                    .map(|o| o.map_or(NO_HOP, |v| v.0 as u32))
                    .collect(),
            }
        })
    }

    /// Whether the imposed partition cut severs the `i`–`j` link.
    fn cut_severs(&self, i: usize, j: usize) -> bool {
        match &self.partition {
            Some(inside) => inside[i] != inside[j],
            None => false,
        }
    }

    /// Range-Distance Cost between two nodes (paper Eq. 2):
    /// `c_ij = d(i,j) + range(i) + range(j)` with hop-count distance and
    /// mobility ranges normalized to hop-equivalents (`range / comm_range`)
    /// so the units are commensurate. `c_ii = 0`. Unreachable pairs get a
    /// large finite penalty (`n` hops) so the facility-location solver can
    /// still run on temporarily partitioned snapshots.
    ///
    /// Dense mode serves the value from the matrix precomputed at rebuild
    /// time; sparse mode evaluates the identical formula from the lazily
    /// materialized hop row.
    pub fn rdc(&self, i: NodeId, j: NodeId) -> f64 {
        match &self.routes {
            Routes::Dense { rdc, .. } => rdc[i.0 * self.len() + j.0],
            Routes::Sparse { .. } => self.rdc_from_hops(i, j, self.sparse_row(i.0).hops[j.0]),
        }
    }

    /// Eq. 2 evaluated with an explicit hop count (with [`UNREACHABLE`]
    /// mapping to the `n`-hop penalty), bit-identical to what [`rdc`]
    /// returns for a pair at that distance. Lets horizon-bounded callers
    /// (e.g. the region-decomposed allocator) price compressed rows
    /// without materializing full RDC rows.
    ///
    /// [`rdc`]: Topology::rdc
    pub fn rdc_from_hops(&self, i: NodeId, j: NodeId, hops: u32) -> f64 {
        rdc_formula(
            i.0,
            j.0,
            hops,
            &self.mobility,
            self.config.comm_range,
            self.len() as f64,
        )
    }

    /// Row `i` of the RDC state: `row[j] == rdc(i, j)` for every `j`.
    /// Lets instance builders copy or gather whole rows instead of issuing
    /// `n` individual lookups. In sparse mode the row is materialized on
    /// first access and cached until the next route rebuild.
    pub fn rdc_row(&self, i: NodeId) -> &[f64] {
        let n = self.len();
        match &self.routes {
            Routes::Dense { rdc, .. } => &rdc[i.0 * n..(i.0 + 1) * n],
            Routes::Sparse { rdc_rows, .. } => rdc_rows[i.0].get_or_init(|| {
                let hops = &self.sparse_row(i.0).hops;
                (0..n)
                    .map(|j| self.rdc_from_hops(i, NodeId(j), hops[j]))
                    .collect()
            }),
        }
    }

    /// Breadth-first search from `src` truncated at `max_hops`, returning
    /// `(node, hops)` pairs in discovery order (starting with `(src, 0)`).
    /// With `within: Some(mask)`, expansion is confined to nodes whose
    /// mask entry is `true` (`src` must be inside). This is the compressed
    /// row the RDC formula needs at scale: peers beyond the horizon simply
    /// do not appear and take the unreachable penalty via
    /// [`Topology::rdc_from_hops`].
    pub fn bfs_bounded(
        &self,
        src: NodeId,
        max_hops: u32,
        within: Option<&[bool]>,
    ) -> Vec<(NodeId, u32)> {
        if !self.active[src.0] {
            return Vec::new();
        }
        let n = self.len();
        let mut dist: Vec<u32> = vec![UNREACHABLE; n];
        dist[src.0] = 0;
        let mut order = vec![(src, 0)];
        let mut queue = VecDeque::new();
        queue.push_back(src);
        while let Some(u) = queue.pop_front() {
            let du = dist[u.0];
            if du >= max_hops {
                continue;
            }
            for &v in &self.adjacency[u.0] {
                if dist[v.0] != UNREACHABLE {
                    continue;
                }
                if let Some(mask) = within {
                    if !mask[v.0] {
                        continue;
                    }
                }
                dist[v.0] = du + 1;
                order.push((v, du + 1));
                queue.push_back(v);
            }
        }
        order
    }

    /// Estimated heap bytes held by the topology's derived structures
    /// (adjacency plus routing/RDC state). Sparse mode counts only the
    /// rows actually materialized, which is the point of the comparison.
    pub fn memory_bytes(&self) -> usize {
        use std::mem::size_of;
        let vec_hdr = size_of::<Vec<u8>>();
        let adj: usize = self
            .adjacency
            .iter()
            .map(|v| vec_hdr + v.capacity() * size_of::<NodeId>())
            .sum();
        let routes = match &self.routes {
            Routes::Dense {
                hops,
                next_hop,
                rdc,
            } => {
                let h: usize = hops
                    .iter()
                    .map(|r| vec_hdr + r.capacity() * size_of::<u32>())
                    .sum();
                let nh: usize = next_hop
                    .iter()
                    .map(|r| vec_hdr + r.capacity() * size_of::<Option<NodeId>>())
                    .sum();
                h + nh + rdc.capacity() * size_of::<f64>()
            }
            Routes::Sparse { rows, rdc_rows } => {
                let r: usize = rows
                    .iter()
                    .filter_map(|l| l.get())
                    .map(|row| 2 * vec_hdr + (row.hops.capacity() + row.next.capacity()) * 4)
                    .sum();
                let rr: usize = rdc_rows
                    .iter()
                    .filter_map(|l| l.get())
                    .map(|row| vec_hdr + row.capacity() * size_of::<f64>())
                    .sum();
                r + rr + (rows.len() + rdc_rows.len()) * size_of::<OnceLock<RouteRow>>()
            }
        };
        adj + routes
    }
}

/// One source's BFS outputs: the hop-count row and the next-hop row.
/// A free function over the borrowed adjacency list (rather than a
/// `&mut self` method) so the per-source fan-out can run on pool workers.
fn bfs_rows(adjacency: &[Vec<NodeId>], n: usize, src: usize) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let mut hops = vec![UNREACHABLE; n];
    let mut next_hop: Vec<Option<NodeId>> = vec![None; n];
    hops[src] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(NodeId(src));
    // parent[v] = predecessor of v on the BFS tree rooted at src.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    while let Some(u) = queue.pop_front() {
        let du = hops[u.0];
        for &v in &adjacency[u.0] {
            if hops[v.0] == UNREACHABLE {
                hops[v.0] = du + 1;
                parent[v.0] = Some(u);
                queue.push_back(v);
            }
        }
    }
    // next_hop[dst]: walk the parent chain from dst back to src.
    for dst in 0..n {
        if dst == src || hops[dst] == UNREACHABLE {
            continue;
        }
        let mut cur = NodeId(dst);
        let mut prev = cur;
        while let Some(p) = parent[cur.0] {
            prev = cur;
            cur = p;
            if cur.0 == src {
                break;
            }
        }
        next_hop[dst] = Some(prev);
    }
    (hops, next_hop)
}

/// Errors from topology generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No connected placement was found.
    Disconnected {
        /// Number of nodes requested.
        nodes: usize,
        /// Attempts made.
        attempts: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Disconnected { nodes, attempts } => write!(
                f,
                "no connected placement for {nodes} nodes after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize, spacing: f64) -> Topology {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::from_positions(pts)
    }

    #[test]
    fn line_hop_counts() {
        let t = line_topology(5, 60.0);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.hops(NodeId(2), NodeId(2)), 0);
        assert_eq!(t.hops(NodeId(1), NodeId(3)), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn line_paths_follow_chain() {
        let t = line_topology(4, 60.0);
        let p = t.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.path(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn partition_detected() {
        // Two clusters 200 m apart with 70 m range.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(250.0, 0.0),
            Point::new(290.0, 0.0),
        ];
        let t = Topology::from_positions(pts);
        assert!(!t.is_connected());
        assert_eq!(t.hops(NodeId(0), NodeId(2)), UNREACHABLE);
        assert!(t.path(NodeId(0), NodeId(3)).is_none());
        assert!(t.reachable(NodeId(0), NodeId(1)));
        assert!(t.reachable(NodeId(2), NodeId(3)));
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [10, 25, 50] {
            let t = Topology::random_connected(n, TopologyConfig::default(), &mut rng).unwrap();
            assert!(t.is_connected(), "n={n}");
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn mobility_stays_within_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = Topology::random_connected(20, TopologyConfig::default(), &mut rng).unwrap();
        for _ in 0..10 {
            t.mobility_step(&mut rng);
            for v in t.nodes() {
                let d = t.home(v).distance(&t.position(v));
                // Clamping to the field can only reduce displacement.
                assert!(d <= 30.0 + 1e-9, "node {v} moved {d} m");
            }
        }
    }

    #[test]
    fn rdc_properties() {
        let t = line_topology(4, 60.0);
        assert_eq!(t.rdc(NodeId(1), NodeId(1)), 0.0);
        // Symmetric because hops and ranges are symmetric.
        assert_eq!(t.rdc(NodeId(0), NodeId(3)), t.rdc(NodeId(3), NodeId(0)));
        // More hops → strictly larger cost (equal ranges).
        assert!(t.rdc(NodeId(0), NodeId(3)) > t.rdc(NodeId(0), NodeId(1)));
        // Default mobility 30 m / 70 m range ⇒ 1 hop + 2*(3/7).
        let expect = 1.0 + 2.0 * (30.0 / 70.0);
        assert!((t.rdc(NodeId(0), NodeId(1)) - expect).abs() < 1e-12);
    }

    #[test]
    fn rdc_unreachable_penalty_is_finite() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(299.0, 299.0)];
        let t = Topology::from_positions(pts);
        let c = t.rdc(NodeId(0), NodeId(1));
        assert!(c.is_finite());
        assert!(c >= t.len() as f64);
    }

    #[test]
    fn neighbors_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Topology::random_connected(30, TopologyConfig::default(), &mut rng).unwrap();
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a));
            }
        }
    }

    #[test]
    fn crashed_node_cannot_route_or_relay() {
        // 0 - 1 - 2: killing the middle node severs the ends.
        let mut t = line_topology(3, 60.0);
        assert!(t.reachable(NodeId(0), NodeId(2)));
        t.set_active(NodeId(1), false);
        assert!(!t.is_active(NodeId(1)));
        assert_eq!(t.active_len(), 2);
        assert!(!t.reachable(NodeId(0), NodeId(2)), "relay must be gone");
        assert!(!t.reachable(NodeId(0), NodeId(1)));
        assert!(t.neighbors(NodeId(1)).is_empty());
        // A restart restores the original routes.
        t.set_active(NodeId(1), true);
        assert!(t.reachable(NodeId(0), NodeId(2)));
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 2);
    }

    #[test]
    fn partition_cut_severs_cross_links_only() {
        let mut t = line_topology(4, 60.0);
        t.set_partition(Some(&[NodeId(2), NodeId(3)]));
        assert!(t.is_partitioned());
        assert!(t.reachable(NodeId(0), NodeId(1)));
        assert!(t.reachable(NodeId(2), NodeId(3)));
        assert!(!t.reachable(NodeId(1), NodeId(2)));
        assert!(!t.is_connected());
        t.set_partition(None);
        assert!(t.is_connected());
    }

    #[test]
    fn partition_survives_mobility_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Topology::random_connected(16, TopologyConfig::default(), &mut rng).unwrap();
        let cut: Vec<NodeId> = (0..8).map(NodeId).collect();
        t.set_partition(Some(&cut));
        for _ in 0..5 {
            t.mobility_step(&mut rng);
            for a in 0..8 {
                for b in 8..16 {
                    assert!(
                        !t.reachable(NodeId(a), NodeId(b)),
                        "{a} reached {b} across the cut"
                    );
                }
            }
        }
    }

    #[test]
    fn set_mobility_range_affects_rdc() {
        let mut t = line_topology(2, 60.0);
        let before = t.rdc(NodeId(0), NodeId(1));
        t.set_mobility_range(NodeId(0), 70.0);
        let after = t.rdc(NodeId(0), NodeId(1));
        assert!(after > before);
        assert_eq!(t.mobility_range(NodeId(0)), 70.0);
    }

    #[test]
    fn rdc_row_matches_pointwise_lookups() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = Topology::random_connected(25, TopologyConfig::default(), &mut rng).unwrap();
        for i in t.nodes() {
            let row = t.rdc_row(i);
            assert_eq!(row.len(), t.len());
            for j in t.nodes() {
                assert_eq!(row[j.0].to_bits(), t.rdc(i, j).to_bits());
            }
        }
    }

    #[test]
    fn cached_rdc_matches_formula() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut t = Topology::random_connected(12, TopologyConfig::default(), &mut rng).unwrap();
        t.set_active(NodeId(3), false);
        t.set_mobility_range(NodeId(5), 45.0);
        let norm = t.config().comm_range;
        for i in t.nodes() {
            for j in t.nodes() {
                let expect = if i == j {
                    0.0
                } else {
                    let hop_cost = match t.hops(i, j) {
                        UNREACHABLE => t.len() as f64,
                        h => h as f64,
                    };
                    hop_cost + t.mobility_range(i) / norm + t.mobility_range(j) / norm
                };
                assert_eq!(t.rdc(i, j).to_bits(), expect.to_bits(), "{i}->{j}");
            }
        }
    }

    #[test]
    fn epoch_bumps_on_every_route_or_rdc_change() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut t = line_topology(4, 60.0);
        let e0 = t.epoch();
        t.set_active(NodeId(1), false);
        assert!(t.epoch() > e0);
        let e1 = t.epoch();
        t.set_active(NodeId(1), false); // no-op flip
        assert_eq!(t.epoch(), e1);
        t.set_active(NodeId(1), true);
        assert!(t.epoch() > e1);
        let e2 = t.epoch();
        t.set_partition(Some(&[NodeId(0)]));
        assert!(t.epoch() > e2);
        let e3 = t.epoch();
        t.set_mobility_range(NodeId(0), 10.0);
        assert!(t.epoch() > e3);
        let e4 = t.epoch();
        t.mobility_step(&mut rng);
        assert!(t.epoch() > e4);
    }

    /// Above the parallel-BFS threshold, the tables must be exactly what a
    /// serial per-source BFS would produce (index-order merge).
    #[test]
    fn parallel_rebuild_matches_serial_bfs() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 96;
        let t = Topology::random_connected(n, TopologyConfig::default(), &mut rng).unwrap();
        for src in 0..n {
            let (hops_row, next_row) = super::bfs_rows(&t.adjacency, n, src);
            for dst in 0..n {
                assert_eq!(t.hops(NodeId(src), NodeId(dst)), hops_row[dst]);
                assert_eq!(t.next_hop_of(src, dst), next_row[dst]);
            }
        }
    }

    /// Runs the same mutation workload on a dense and a sparse topology
    /// (same positions, same twin RNG streams) and asserts every public
    /// query agrees bit-for-bit after each step.
    #[test]
    fn sparse_mode_is_bit_identical_to_dense() {
        let mut rng = StdRng::seed_from_u64(37);
        let dense = Topology::random_connected(40, TopologyConfig::default(), &mut rng).unwrap();
        let positions: Vec<Point> = dense.nodes().map(|v| dense.position(v)).collect();
        let sparse_cfg = TopologyConfig {
            sparse_routes: true,
            ..TopologyConfig::default()
        };
        let mut sparse = Topology::from_positions_with_config(positions.clone(), sparse_cfg);
        let mut dense = Topology::from_positions_with_config(positions, TopologyConfig::default());

        let assert_equal = |d: &Topology, s: &Topology, step: &str| {
            for a in d.nodes() {
                assert_eq!(d.neighbors(a), s.neighbors(a), "{step}: neighbors {a}");
                let srow = s.rdc_row(a);
                let drow = d.rdc_row(a);
                for b in d.nodes() {
                    assert_eq!(d.hops(a, b), s.hops(a, b), "{step}: hops {a}->{b}");
                    assert_eq!(d.path(a, b), s.path(a, b), "{step}: path {a}->{b}");
                    assert_eq!(
                        d.rdc(a, b).to_bits(),
                        s.rdc(a, b).to_bits(),
                        "{step}: rdc {a}->{b}"
                    );
                    assert_eq!(
                        drow[b.0].to_bits(),
                        srow[b.0].to_bits(),
                        "{step}: rdc_row {a}->{b}"
                    );
                }
            }
            assert_eq!(d.is_connected(), s.is_connected(), "{step}: connectivity");
        };

        assert_equal(&dense, &sparse, "initial");
        let mut rng_d = StdRng::seed_from_u64(101);
        let mut rng_s = StdRng::seed_from_u64(101);
        dense.set_active(NodeId(7), false);
        sparse.set_active(NodeId(7), false);
        assert_equal(&dense, &sparse, "crash");
        dense.set_mobility_range(NodeId(3), 55.0);
        sparse.set_mobility_range(NodeId(3), 55.0);
        assert_equal(&dense, &sparse, "range");
        dense.mobility_step(&mut rng_d);
        sparse.mobility_step(&mut rng_s);
        assert_equal(&dense, &sparse, "mobility");
        let cut: Vec<NodeId> = (0..12).map(NodeId).collect();
        dense.set_partition(Some(&cut));
        sparse.set_partition(Some(&cut));
        assert_equal(&dense, &sparse, "partition");
        dense.set_partition(None);
        sparse.set_partition(None);
        dense.set_active(NodeId(7), true);
        sparse.set_active(NodeId(7), true);
        assert_equal(&dense, &sparse, "restore");
    }

    /// RDC rows materialized *before* a mobility-range override must be
    /// patched in place, matching fresh computation afterwards.
    #[test]
    fn sparse_rdc_rows_are_patched_on_range_override() {
        let mut rng = StdRng::seed_from_u64(41);
        let cfg = TopologyConfig {
            sparse_routes: true,
            ..TopologyConfig::default()
        };
        let mut t = Topology::random_connected(20, cfg, &mut rng).unwrap();
        // Materialize a few rows, including the overridden node's own.
        for i in [0usize, 5, 9] {
            let _ = t.rdc_row(NodeId(i));
        }
        t.set_mobility_range(NodeId(5), 62.0);
        let norm = t.config().comm_range;
        for i in [0usize, 5, 9, 13] {
            let row = t.rdc_row(NodeId(i)).to_vec();
            for j in t.nodes() {
                let expect = if i == j.0 {
                    0.0
                } else {
                    let hop_cost = match t.hops(NodeId(i), j) {
                        UNREACHABLE => t.len() as f64,
                        h => h as f64,
                    };
                    hop_cost + t.mobility_range(NodeId(i)) / norm + t.mobility_range(j) / norm
                };
                assert_eq!(row[j.0].to_bits(), expect.to_bits(), "row {i} entry {j}");
            }
        }
    }

    /// The horizon-bounded BFS agrees with full hop counts inside the
    /// horizon and omits everything beyond it.
    #[test]
    fn bounded_bfs_matches_full_bfs_within_horizon() {
        let mut rng = StdRng::seed_from_u64(43);
        let t = Topology::random_connected(35, TopologyConfig::default(), &mut rng).unwrap();
        let horizon = 2;
        for src in t.nodes() {
            let rows = t.bfs_bounded(src, horizon, None);
            let by_node: std::collections::HashMap<NodeId, u32> = rows.into_iter().collect();
            for dst in t.nodes() {
                let full = t.hops(src, dst);
                match by_node.get(&dst) {
                    Some(&h) => assert_eq!(h, full, "{src}->{dst}"),
                    None => assert!(full > horizon, "{src}->{dst} missing but {full} hops"),
                }
            }
        }
    }

    /// A membership mask confines expansion: everything reported is in the
    /// mask and reachable through mask-internal paths only.
    #[test]
    fn bounded_bfs_respects_mask() {
        let t = line_topology(6, 60.0);
        let mut mask = vec![false; 6];
        for i in 0..3 {
            mask[i] = true;
        }
        let rows = t.bfs_bounded(NodeId(0), 10, Some(&mask));
        let ids: Vec<usize> = rows.iter().map(|(v, _)| v.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
        // Severing the mask interior cuts reachability even within range.
        let mut gap = vec![false; 6];
        gap[0] = true;
        gap[2] = true;
        let rows = t.bfs_bounded(NodeId(0), 10, Some(&gap));
        assert_eq!(rows.len(), 1, "node 2 is not adjacent to node 0");
    }

    /// The sparse representation must hold an order of magnitude less
    /// derived state than the dense tables until rows are touched.
    #[test]
    fn sparse_memory_is_far_below_dense() {
        let mut rng = StdRng::seed_from_u64(47);
        let dense = Topology::random_connected(80, TopologyConfig::default(), &mut rng).unwrap();
        let positions: Vec<Point> = dense.nodes().map(|v| dense.position(v)).collect();
        let sparse = Topology::from_positions_with_config(
            positions,
            TopologyConfig {
                sparse_routes: true,
                ..TopologyConfig::default()
            },
        );
        assert!(
            sparse.memory_bytes() * 4 < dense.memory_bytes(),
            "sparse {} vs dense {}",
            sparse.memory_bytes(),
            dense.memory_bytes()
        );
    }
}
