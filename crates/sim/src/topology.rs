//! Wireless multi-hop network topology.
//!
//! Nodes are placed uniformly at random in a [`Field`]; two nodes share a
//! link when within radio range (unit-disk model). Each node additionally
//! has a *mobility range*: it wanders inside a disc of that radius around
//! its home position (paper §IV-A.2 — the range enters the Range-Distance
//! Cost; §VI — mobility is "within 30 meters ranges").
//!
//! The topology maintains all-pairs hop counts and next-hop routing tables
//! (BFS) so the transport layer can forward store-and-forward messages.

use crate::geometry::{Field, Point};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of a simulated node (dense, `0..n`).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The underlying dense index.
    pub fn index(&self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<usize> for NodeId {
    fn from(i: usize) -> Self {
        NodeId(i)
    }
}

/// Hop count marker for unreachable node pairs.
pub const UNREACHABLE: u32 = u32::MAX;

/// Below this node count the per-source BFS fan-out runs serially: the
/// whole rebuild is a few hundred microseconds and thread spawns would
/// dominate.
const PARALLEL_BFS_MIN_NODES: usize = 64;

/// Configuration for generating a [`Topology`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// Deployment field (default 300 m × 300 m).
    pub field: Field,
    /// Radio range in meters (default 70 m, typical 802.11n).
    pub comm_range: f64,
    /// Mobility radius in meters for every node (default 30 m).
    pub mobility_range: f64,
    /// How many placement attempts to make before giving up on a connected
    /// topology.
    pub max_placement_attempts: usize,
}

impl Default for TopologyConfig {
    fn default() -> Self {
        TopologyConfig {
            field: Field::paper_default(),
            comm_range: 70.0,
            mobility_range: 30.0,
            max_placement_attempts: 10_000,
        }
    }
}

/// A snapshot of the multi-hop network: positions, links, and routes.
#[derive(Debug, Clone)]
pub struct Topology {
    config: TopologyConfig,
    home: Vec<Point>,
    position: Vec<Point>,
    mobility: Vec<f64>,
    /// Fault-injection state: crashed nodes have no radio at all.
    active: Vec<bool>,
    /// Fault-injection state: when set, links between a node inside the
    /// cut set and one outside it are severed (a clean network split on
    /// top of whatever the geometry allows).
    partition: Option<Vec<bool>>,
    adjacency: Vec<Vec<NodeId>>,
    /// `hops[i][j]` — BFS hop count, [`UNREACHABLE`] when partitioned.
    hops: Vec<Vec<u32>>,
    /// `next_hop[i][j]` — first hop on a shortest path from `i` to `j`.
    next_hop: Vec<Vec<Option<NodeId>>>,
    /// Dense Range-Distance Cost matrix (`n × n`, row-major), precomputed
    /// at rebuild time so the allocation hot path reads instead of
    /// recomputing Eq. 2 per pair.
    rdc_cache: Vec<f64>,
    /// Bumped on every routing/RDC change; lets callers detect staleness
    /// of anything they derived from this topology snapshot.
    epoch: u64,
}

impl Topology {
    /// Generates a topology whose *home* positions form a connected graph,
    /// resampling until connected.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] if no connected placement is
    /// found within `config.max_placement_attempts`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn random_connected<R: Rng + ?Sized>(
        n: usize,
        config: TopologyConfig,
        rng: &mut R,
    ) -> Result<Self, TopologyError> {
        assert!(n > 0, "topology must have at least one node");
        for _ in 0..config.max_placement_attempts.max(1) {
            let home: Vec<Point> = (0..n)
                .map(|_| {
                    Point::new(
                        rng.gen::<f64>() * config.field.width,
                        rng.gen::<f64>() * config.field.height,
                    )
                })
                .collect();
            let topo = Self::from_positions_with_config(home, config.clone());
            if topo.is_connected() {
                return Ok(topo);
            }
        }
        Err(TopologyError::Disconnected {
            nodes: n,
            attempts: config.max_placement_attempts,
        })
    }

    /// Builds a topology from explicit positions with the default config.
    pub fn from_positions(positions: Vec<Point>) -> Self {
        Self::from_positions_with_config(positions, TopologyConfig::default())
    }

    /// Builds a topology from explicit positions and a config.
    ///
    /// # Panics
    ///
    /// Panics if `positions` is empty.
    pub fn from_positions_with_config(positions: Vec<Point>, config: TopologyConfig) -> Self {
        assert!(
            !positions.is_empty(),
            "topology must have at least one node"
        );
        let n = positions.len();
        let mobility = vec![config.mobility_range; n];
        let mut topo = Topology {
            config,
            home: positions.clone(),
            position: positions,
            mobility,
            active: vec![true; n],
            partition: None,
            adjacency: Vec::new(),
            hops: Vec::new(),
            next_hop: Vec::new(),
            rdc_cache: Vec::new(),
            epoch: 0,
        };
        topo.rebuild_routes();
        topo
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.position.len()
    }

    /// Whether the topology is empty (never true for constructed values).
    pub fn is_empty(&self) -> bool {
        self.position.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.len()).map(NodeId)
    }

    /// The generation configuration.
    pub fn config(&self) -> &TopologyConfig {
        &self.config
    }

    /// Current position of `node`.
    pub fn position(&self, node: NodeId) -> Point {
        self.position[node.0]
    }

    /// Home (anchor) position of `node`.
    pub fn home(&self, node: NodeId) -> Point {
        self.home[node.0]
    }

    /// Mobility radius of `node` in meters.
    pub fn mobility_range(&self, node: NodeId) -> f64 {
        self.mobility[node.0]
    }

    /// Overrides the mobility radius of `node`. Refreshes the node's row
    /// and column of the cached RDC matrix (Eq. 2 depends on both
    /// endpoints' ranges) and bumps [`Topology::epoch`].
    pub fn set_mobility_range(&mut self, node: NodeId, range: f64) {
        self.mobility[node.0] = range;
        let n = self.len();
        let i = node.0;
        for j in 0..n {
            self.rdc_cache[i * n + j] = self.compute_rdc(i, j);
            self.rdc_cache[j * n + i] = self.compute_rdc(j, i);
        }
        self.epoch += 1;
    }

    /// Monotone change counter: incremented whenever routes or RDC values
    /// change (route rebuilds, activation flips, partitions, mobility
    /// steps, range overrides). Two reads returning the same epoch
    /// guarantee every `hops`/`rdc` query in between saw identical state.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether `node` is up (not crashed by fault injection).
    pub fn is_active(&self, node: NodeId) -> bool {
        self.active[node.0]
    }

    /// Marks `node` as crashed (`false`) or restarted (`true`) and rebuilds
    /// routes. A crashed node has no links: nothing can be sent to it,
    /// from it, or *through* it.
    pub fn set_active(&mut self, node: NodeId, active: bool) {
        if self.active[node.0] != active {
            self.active[node.0] = active;
            self.rebuild_routes();
        }
    }

    /// Iterator over nodes that are currently up.
    pub fn active_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes().filter(|&v| self.active[v.0])
    }

    /// Number of nodes currently up.
    pub fn active_len(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Imposes (or, with `None`, lifts) a network partition: links between
    /// nodes inside `cut` and nodes outside it are severed. Rebuilds routes.
    pub fn set_partition(&mut self, cut: Option<&[NodeId]>) {
        self.partition = cut.map(|side| {
            let mut inside = vec![false; self.len()];
            for &v in side {
                inside[v.0] = true;
            }
            inside
        });
        self.rebuild_routes();
    }

    /// Whether a partition cut is currently imposed.
    pub fn is_partitioned(&self) -> bool {
        self.partition.is_some()
    }

    /// Direct neighbors of `node` in the current snapshot.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.0]
    }

    /// Hop count between two nodes ([`UNREACHABLE`] when partitioned,
    /// `0` for `a == b`).
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        self.hops[a.0][b.0]
    }

    /// Whether `b` is currently reachable from `a`.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        self.hops(a, b) != UNREACHABLE
    }

    /// Whether all *active* nodes form one connected component.
    pub fn is_connected(&self) -> bool {
        let Some(origin) = self.active_nodes().next() else {
            return true;
        };
        self.active_nodes().all(|v| self.reachable(origin, v))
    }

    /// Shortest path from `a` to `b` (inclusive of both endpoints), or
    /// `None` when unreachable. `a == b` yields a single-element path.
    pub fn path(&self, a: NodeId, b: NodeId) -> Option<Vec<NodeId>> {
        if a == b {
            return Some(vec![a]);
        }
        if !self.reachable(a, b) {
            return None;
        }
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            let next = self.next_hop[cur.0][b.0].expect("reachable pair must have a next hop");
            path.push(next);
            cur = next;
        }
        Some(path)
    }

    /// Moves every node to a fresh uniform point inside its mobility disc
    /// (clamped to the field) and rebuilds links and routes. This models the
    /// paper's "nodes move within such a range in a short period of time".
    pub fn mobility_step<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in 0..self.len() {
            let r = self.mobility[i];
            if r <= 0.0 {
                continue;
            }
            // Uniform point in a disc via rejection-free polar sampling.
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            let rho = r * rng.gen::<f64>().sqrt();
            let p = Point::new(
                self.home[i].x + rho * theta.cos(),
                self.home[i].y + rho * theta.sin(),
            );
            self.position[i] = self.config.field.clamp(p);
        }
        self.rebuild_routes();
    }

    /// Recomputes adjacency, hop counts, and next-hop tables from current
    /// positions.
    pub fn rebuild_routes(&mut self) {
        let n = self.len();
        let range = self.config.comm_range;
        self.adjacency = vec![Vec::new(); n];
        for i in 0..n {
            if !self.active[i] {
                continue;
            }
            for j in i + 1..n {
                if !self.active[j] || self.cut_severs(i, j) {
                    continue;
                }
                if self.position[i].distance(&self.position[j]) <= range {
                    self.adjacency[i].push(NodeId(j));
                    self.adjacency[j].push(NodeId(i));
                }
            }
        }
        // Per-source BFS trees are independent; fan them out over the
        // worker pool on larger topologies. The pool returns rows in
        // source order, so the tables are identical to a serial build.
        let adjacency = &self.adjacency;
        let active = &self.active;
        let workers = if n >= PARALLEL_BFS_MIN_NODES {
            usize::MAX
        } else {
            1
        };
        let rows = crate::pool::parallel_map_range(n, workers, |src| {
            if active[src] {
                bfs_rows(adjacency, n, src)
            } else {
                (vec![UNREACHABLE; n], vec![None; n])
            }
        });
        self.hops = Vec::with_capacity(n);
        self.next_hop = Vec::with_capacity(n);
        for (hops_row, next_row) in rows {
            self.hops.push(hops_row);
            self.next_hop.push(next_row);
        }
        self.rebuild_rdc();
        self.epoch += 1;
    }

    /// Recomputes the dense RDC matrix from the fresh hop tables.
    fn rebuild_rdc(&mut self) {
        let n = self.len();
        self.rdc_cache = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                self.rdc_cache[i * n + j] = self.compute_rdc(i, j);
            }
        }
    }

    /// Eq. 2 from current hops and mobility state (uncached form).
    fn compute_rdc(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let hop_cost = match self.hops[i][j] {
            UNREACHABLE => self.len() as f64,
            h => h as f64,
        };
        let norm = self.config.comm_range;
        hop_cost + self.mobility[i] / norm + self.mobility[j] / norm
    }

    /// Whether the imposed partition cut severs the `i`–`j` link.
    fn cut_severs(&self, i: usize, j: usize) -> bool {
        match &self.partition {
            Some(inside) => inside[i] != inside[j],
            None => false,
        }
    }

    /// Range-Distance Cost between two nodes (paper Eq. 2):
    /// `c_ij = d(i,j) + range(i) + range(j)` with hop-count distance and
    /// mobility ranges normalized to hop-equivalents (`range / comm_range`)
    /// so the units are commensurate. `c_ii = 0`. Unreachable pairs get a
    /// large finite penalty (`n` hops) so the facility-location solver can
    /// still run on temporarily partitioned snapshots.
    ///
    /// Served from the dense matrix precomputed at rebuild time.
    pub fn rdc(&self, i: NodeId, j: NodeId) -> f64 {
        self.rdc_cache[i.0 * self.len() + j.0]
    }

    /// Row `i` of the cached RDC matrix: `row[j] == rdc(i, j)` for every
    /// `j`. Lets instance builders copy or gather whole rows instead of
    /// issuing `n` individual lookups.
    pub fn rdc_row(&self, i: NodeId) -> &[f64] {
        let n = self.len();
        &self.rdc_cache[i.0 * n..(i.0 + 1) * n]
    }
}

/// One source's BFS outputs: the hop-count row and the next-hop row.
/// A free function over the borrowed adjacency list (rather than a
/// `&mut self` method) so the per-source fan-out can run on pool workers.
fn bfs_rows(adjacency: &[Vec<NodeId>], n: usize, src: usize) -> (Vec<u32>, Vec<Option<NodeId>>) {
    let mut hops = vec![UNREACHABLE; n];
    let mut next_hop: Vec<Option<NodeId>> = vec![None; n];
    hops[src] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(NodeId(src));
    // parent[v] = predecessor of v on the BFS tree rooted at src.
    let mut parent: Vec<Option<NodeId>> = vec![None; n];
    while let Some(u) = queue.pop_front() {
        let du = hops[u.0];
        for &v in &adjacency[u.0] {
            if hops[v.0] == UNREACHABLE {
                hops[v.0] = du + 1;
                parent[v.0] = Some(u);
                queue.push_back(v);
            }
        }
    }
    // next_hop[dst]: walk the parent chain from dst back to src.
    for dst in 0..n {
        if dst == src || hops[dst] == UNREACHABLE {
            continue;
        }
        let mut cur = NodeId(dst);
        let mut prev = cur;
        while let Some(p) = parent[cur.0] {
            prev = cur;
            cur = p;
            if cur.0 == src {
                break;
            }
        }
        next_hop[dst] = Some(prev);
    }
    (hops, next_hop)
}

/// Errors from topology generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// No connected placement was found.
    Disconnected {
        /// Number of nodes requested.
        nodes: usize,
        /// Attempts made.
        attempts: usize,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::Disconnected { nodes, attempts } => write!(
                f,
                "no connected placement for {nodes} nodes after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for TopologyError {}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize, spacing: f64) -> Topology {
        let pts: Vec<Point> = (0..n)
            .map(|i| Point::new(i as f64 * spacing, 0.0))
            .collect();
        Topology::from_positions(pts)
    }

    #[test]
    fn line_hop_counts() {
        let t = line_topology(5, 60.0);
        assert_eq!(t.hops(NodeId(0), NodeId(4)), 4);
        assert_eq!(t.hops(NodeId(2), NodeId(2)), 0);
        assert_eq!(t.hops(NodeId(1), NodeId(3)), 2);
        assert!(t.is_connected());
    }

    #[test]
    fn line_paths_follow_chain() {
        let t = line_topology(4, 60.0);
        let p = t.path(NodeId(0), NodeId(3)).unwrap();
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.path(NodeId(2), NodeId(2)).unwrap(), vec![NodeId(2)]);
    }

    #[test]
    fn partition_detected() {
        // Two clusters 200 m apart with 70 m range.
        let pts = vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(250.0, 0.0),
            Point::new(290.0, 0.0),
        ];
        let t = Topology::from_positions(pts);
        assert!(!t.is_connected());
        assert_eq!(t.hops(NodeId(0), NodeId(2)), UNREACHABLE);
        assert!(t.path(NodeId(0), NodeId(3)).is_none());
        assert!(t.reachable(NodeId(0), NodeId(1)));
        assert!(t.reachable(NodeId(2), NodeId(3)));
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [10, 25, 50] {
            let t = Topology::random_connected(n, TopologyConfig::default(), &mut rng).unwrap();
            assert!(t.is_connected(), "n={n}");
            assert_eq!(t.len(), n);
        }
    }

    #[test]
    fn mobility_stays_within_range() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut t = Topology::random_connected(20, TopologyConfig::default(), &mut rng).unwrap();
        for _ in 0..10 {
            t.mobility_step(&mut rng);
            for v in t.nodes() {
                let d = t.home(v).distance(&t.position(v));
                // Clamping to the field can only reduce displacement.
                assert!(d <= 30.0 + 1e-9, "node {v} moved {d} m");
            }
        }
    }

    #[test]
    fn rdc_properties() {
        let t = line_topology(4, 60.0);
        assert_eq!(t.rdc(NodeId(1), NodeId(1)), 0.0);
        // Symmetric because hops and ranges are symmetric.
        assert_eq!(t.rdc(NodeId(0), NodeId(3)), t.rdc(NodeId(3), NodeId(0)));
        // More hops → strictly larger cost (equal ranges).
        assert!(t.rdc(NodeId(0), NodeId(3)) > t.rdc(NodeId(0), NodeId(1)));
        // Default mobility 30 m / 70 m range ⇒ 1 hop + 2*(3/7).
        let expect = 1.0 + 2.0 * (30.0 / 70.0);
        assert!((t.rdc(NodeId(0), NodeId(1)) - expect).abs() < 1e-12);
    }

    #[test]
    fn rdc_unreachable_penalty_is_finite() {
        let pts = vec![Point::new(0.0, 0.0), Point::new(299.0, 299.0)];
        let t = Topology::from_positions(pts);
        let c = t.rdc(NodeId(0), NodeId(1));
        assert!(c.is_finite());
        assert!(c >= t.len() as f64);
    }

    #[test]
    fn neighbors_symmetric() {
        let mut rng = StdRng::seed_from_u64(3);
        let t = Topology::random_connected(30, TopologyConfig::default(), &mut rng).unwrap();
        for a in t.nodes() {
            for &b in t.neighbors(a) {
                assert!(t.neighbors(b).contains(&a));
            }
        }
    }

    #[test]
    fn crashed_node_cannot_route_or_relay() {
        // 0 - 1 - 2: killing the middle node severs the ends.
        let mut t = line_topology(3, 60.0);
        assert!(t.reachable(NodeId(0), NodeId(2)));
        t.set_active(NodeId(1), false);
        assert!(!t.is_active(NodeId(1)));
        assert_eq!(t.active_len(), 2);
        assert!(!t.reachable(NodeId(0), NodeId(2)), "relay must be gone");
        assert!(!t.reachable(NodeId(0), NodeId(1)));
        assert!(t.neighbors(NodeId(1)).is_empty());
        // A restart restores the original routes.
        t.set_active(NodeId(1), true);
        assert!(t.reachable(NodeId(0), NodeId(2)));
        assert_eq!(t.hops(NodeId(0), NodeId(2)), 2);
    }

    #[test]
    fn partition_cut_severs_cross_links_only() {
        let mut t = line_topology(4, 60.0);
        t.set_partition(Some(&[NodeId(2), NodeId(3)]));
        assert!(t.is_partitioned());
        assert!(t.reachable(NodeId(0), NodeId(1)));
        assert!(t.reachable(NodeId(2), NodeId(3)));
        assert!(!t.reachable(NodeId(1), NodeId(2)));
        assert!(!t.is_connected());
        t.set_partition(None);
        assert!(t.is_connected());
    }

    #[test]
    fn partition_survives_mobility_steps() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Topology::random_connected(16, TopologyConfig::default(), &mut rng).unwrap();
        let cut: Vec<NodeId> = (0..8).map(NodeId).collect();
        t.set_partition(Some(&cut));
        for _ in 0..5 {
            t.mobility_step(&mut rng);
            for a in 0..8 {
                for b in 8..16 {
                    assert!(
                        !t.reachable(NodeId(a), NodeId(b)),
                        "{a} reached {b} across the cut"
                    );
                }
            }
        }
    }

    #[test]
    fn set_mobility_range_affects_rdc() {
        let mut t = line_topology(2, 60.0);
        let before = t.rdc(NodeId(0), NodeId(1));
        t.set_mobility_range(NodeId(0), 70.0);
        let after = t.rdc(NodeId(0), NodeId(1));
        assert!(after > before);
        assert_eq!(t.mobility_range(NodeId(0)), 70.0);
    }

    #[test]
    fn rdc_row_matches_pointwise_lookups() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = Topology::random_connected(25, TopologyConfig::default(), &mut rng).unwrap();
        for i in t.nodes() {
            let row = t.rdc_row(i);
            assert_eq!(row.len(), t.len());
            for j in t.nodes() {
                assert_eq!(row[j.0].to_bits(), t.rdc(i, j).to_bits());
            }
        }
    }

    #[test]
    fn cached_rdc_matches_formula() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut t = Topology::random_connected(12, TopologyConfig::default(), &mut rng).unwrap();
        t.set_active(NodeId(3), false);
        t.set_mobility_range(NodeId(5), 45.0);
        let norm = t.config().comm_range;
        for i in t.nodes() {
            for j in t.nodes() {
                let expect = if i == j {
                    0.0
                } else {
                    let hop_cost = match t.hops(i, j) {
                        UNREACHABLE => t.len() as f64,
                        h => h as f64,
                    };
                    hop_cost + t.mobility_range(i) / norm + t.mobility_range(j) / norm
                };
                assert_eq!(t.rdc(i, j).to_bits(), expect.to_bits(), "{i}->{j}");
            }
        }
    }

    #[test]
    fn epoch_bumps_on_every_route_or_rdc_change() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut t = line_topology(4, 60.0);
        let e0 = t.epoch();
        t.set_active(NodeId(1), false);
        assert!(t.epoch() > e0);
        let e1 = t.epoch();
        t.set_active(NodeId(1), false); // no-op flip
        assert_eq!(t.epoch(), e1);
        t.set_active(NodeId(1), true);
        assert!(t.epoch() > e1);
        let e2 = t.epoch();
        t.set_partition(Some(&[NodeId(0)]));
        assert!(t.epoch() > e2);
        let e3 = t.epoch();
        t.set_mobility_range(NodeId(0), 10.0);
        assert!(t.epoch() > e3);
        let e4 = t.epoch();
        t.mobility_step(&mut rng);
        assert!(t.epoch() > e4);
    }

    /// Above the parallel-BFS threshold, the tables must be exactly what a
    /// serial per-source BFS would produce (index-order merge).
    #[test]
    fn parallel_rebuild_matches_serial_bfs() {
        let mut rng = StdRng::seed_from_u64(31);
        let n = 96;
        let t = Topology::random_connected(n, TopologyConfig::default(), &mut rng).unwrap();
        for src in 0..n {
            let (hops_row, next_row) = super::bfs_rows(&t.adjacency, n, src);
            for dst in 0..n {
                assert_eq!(t.hops(NodeId(src), NodeId(dst)), hops_row[dst]);
                assert_eq!(t.next_hop[src][dst], next_row[dst]);
            }
        }
    }
}
