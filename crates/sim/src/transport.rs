//! Store-and-forward message transport over a [`Topology`].
//!
//! Models what the paper measured through Docker + sockets: propagation
//! delay (10 ms per hop over 802.11), transmission delay (`bytes /
//! bandwidth`), and queueing delay (each node's radio is half-duplex and
//! serves one outgoing frame at a time, tracked with a per-node
//! `busy_until` horizon). Every transmission is also charged to per-node
//! byte counters, which later feed the Fig. 4(a)/5(b) overhead metrics.

use crate::event::SimTime;
use crate::topology::{NodeId, Topology};
use edgechain_telemetry::{self as telemetry, trace_event};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An immutable message payload shared by reference: every consumer of a
/// broadcast (each delivery, each store, each re-serve) clones the `Arc`,
/// not the bytes. Built once from a block's wire encoding and handed to
/// [`Transport::broadcast_payload`].
#[derive(Debug, Clone)]
pub struct Payload(Arc<[u8]>);

impl Payload {
    /// Wraps already-shared bytes without copying.
    pub fn new(bytes: Arc<[u8]>) -> Self {
        Payload(bytes)
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.0
    }

    /// Another handle to the same allocation (an `Arc` clone).
    pub fn shared(&self) -> Arc<[u8]> {
        Arc::clone(&self.0)
    }

    /// A deterministically scrambled copy: every byte is XORed with a
    /// value derived from `seed` and its offset (a splitmix-style hash),
    /// guaranteeing at least the leading format byte changes. Models a
    /// corrupted-on-the-wire or adversarially garbled frame; the copy is a
    /// fresh allocation, the original is untouched.
    pub fn scrambled(&self, seed: u64) -> Payload {
        let mut out: Vec<u8> = self.0.to_vec();
        for (i, b) in out.iter_mut().enumerate() {
            let mut z = seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            let mask = (z >> 56) as u8;
            // Force a flip even when the derived mask is zero.
            *b ^= mask | 1;
        }
        Payload(out.into())
    }

    /// A truncated prefix copy of at most `len` bytes. Models a frame cut
    /// short mid-transmission.
    pub fn truncated(&self, len: usize) -> Payload {
        Payload(self.0[..len.min(self.0.len())].to_vec().into())
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(bytes.into())
    }
}

impl From<Arc<[u8]>> for Payload {
    fn from(bytes: Arc<[u8]>) -> Self {
        Payload(bytes)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl Eq for Payload {}

/// The deliveries of one broadcast, batched by arrival time: every node in
/// a group receives the message at the same instant (one transmission — or
/// several whose arrivals coincide — covers them all), so a scheduler can
/// insert one queue event per group instead of one per recipient.
/// Flattening ([`BroadcastDeliveries::iter`] /
/// [`BroadcastDeliveries::flatten`]) yields exactly the per-recipient
/// `(node, arrival)` sequence [`Transport::broadcast`] returns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastDeliveries {
    payload: Option<Payload>,
    groups: Vec<(SimTime, Vec<NodeId>)>,
}

impl BroadcastDeliveries {
    /// Arrival-time groups in delivery order.
    pub fn groups(&self) -> &[(SimTime, Vec<NodeId>)] {
        &self.groups
    }

    /// The shared payload, when the broadcast carried one
    /// ([`Transport::broadcast_payload`]); byte-count-only broadcasts
    /// return `None`.
    pub fn payload(&self) -> Option<&Payload> {
        self.payload.as_ref()
    }

    /// Total number of nodes reached.
    pub fn reached(&self) -> usize {
        self.groups.iter().map(|(_, nodes)| nodes.len()).sum()
    }

    /// Whether the broadcast reached no one.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Per-recipient deliveries in the exact order
    /// [`Transport::broadcast`] reports them.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, SimTime)> + '_ {
        self.groups
            .iter()
            .flat_map(|(t, nodes)| nodes.iter().map(move |&v| (v, *t)))
    }

    /// [`BroadcastDeliveries::iter`] collected into a vector.
    pub fn flatten(&self) -> Vec<(NodeId, SimTime)> {
        self.iter().collect()
    }
}

/// Transport parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransportConfig {
    /// One-hop propagation delay (paper: 10 ms, typical 802.11).
    pub hop_delay: SimTime,
    /// Effective per-node radio throughput in bytes/second. The default
    /// (2.5 MB/s ≈ 20 Mbit/s) is a conservative 802.11n figure, giving
    /// ~0.4 s per hop for a 1 MB data item — in line with the ≤4 s delivery
    /// times of Fig. 4(c).
    pub bandwidth: f64,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            hop_delay: SimTime::from_millis(10),
            bandwidth: 2_500_000.0,
        }
    }
}

/// Result of a successful unicast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// When the last byte reaches the destination.
    pub arrival: SimTime,
    /// Number of hops traversed (0 for self-delivery).
    pub hops: u32,
}

/// Per-node traffic accounting.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficStats {
    sent: Vec<u64>,
    received: Vec<u64>,
    messages: u64,
}

impl TrafficStats {
    fn ensure(&mut self, n: usize) {
        if self.sent.len() < n {
            self.sent.resize(n, 0);
            self.received.resize(n, 0);
        }
    }

    /// Bytes transmitted by `node` (including forwarded traffic).
    pub fn sent_bytes(&self, node: NodeId) -> u64 {
        self.sent.get(node.0).copied().unwrap_or(0)
    }

    /// Bytes received by `node` (including forwarded traffic).
    pub fn received_bytes(&self, node: NodeId) -> u64 {
        self.received.get(node.0).copied().unwrap_or(0)
    }

    /// Total bytes transmitted network-wide.
    pub fn total_sent(&self) -> u64 {
        self.sent.iter().sum()
    }

    /// Total transfer volume per node: sent + received. This is the
    /// "transmission overhead" of Fig. 4(a)/5(b).
    pub fn node_overhead(&self, node: NodeId) -> u64 {
        self.sent_bytes(node) + self.received_bytes(node)
    }

    /// Mean per-node overhead in bytes.
    pub fn mean_node_overhead(&self) -> f64 {
        if self.sent.is_empty() {
            return 0.0;
        }
        let total: u64 = self
            .sent
            .iter()
            .zip(&self.received)
            .map(|(s, r)| s + r)
            .sum();
        total as f64 / self.sent.len() as f64
    }

    /// Number of point-to-point transmissions performed.
    pub fn message_count(&self) -> u64 {
        self.messages
    }
}

/// Errors from the transport layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportError {
    /// Destination is not reachable in the current topology snapshot.
    Unreachable {
        /// Message source.
        src: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
    /// The message was lost to injected link loss (fault injection); the
    /// sender gets no signal beyond its own retry timeout.
    Dropped {
        /// Message source.
        src: NodeId,
        /// Intended destination.
        dst: NodeId,
    },
}

impl fmt::Display for TransportError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportError::Unreachable { src, dst } => {
                write!(f, "{dst} unreachable from {src} in current topology")
            }
            TransportError::Dropped { src, dst } => {
                write!(f, "message from {src} to {dst} lost to link loss")
            }
        }
    }
}

impl std::error::Error for TransportError {}

/// The transport layer: queueing state plus traffic statistics, plus the
/// fault-injection knobs ([link loss](Transport::set_loss_prob) and
/// [latency multiplier](Transport::set_latency_factor)) that the
/// [`FaultInjector`](crate::fault::FaultInjector) toggles.
#[derive(Debug, Clone)]
pub struct Transport {
    config: TransportConfig,
    busy_until: Vec<SimTime>,
    stats: TrafficStats,
    /// Per-message loss probability (fault injection; 0 = lossless).
    loss_prob: f64,
    /// Multiplier on propagation and transmission delay (fault injection;
    /// 1 = nominal).
    latency_factor: f64,
    /// Messages lost to injected link loss.
    dropped: u64,
    /// Dedicated RNG for loss draws, seeded separately from the
    /// simulation's master RNG so enabling faults never perturbs the rest
    /// of the random stream.
    fault_rng: rand::rngs::StdRng,
}

impl Default for Transport {
    fn default() -> Self {
        Transport::new(TransportConfig::default())
    }
}

impl Transport {
    /// Creates a transport with the given configuration, lossless and at
    /// nominal latency.
    pub fn new(config: TransportConfig) -> Self {
        use rand::SeedableRng;
        Transport {
            config,
            busy_until: Vec::new(),
            stats: TrafficStats::default(),
            loss_prob: 0.0,
            latency_factor: 1.0,
            dropped: 0,
            fault_rng: rand::rngs::StdRng::seed_from_u64(0x70A5),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &TransportConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets statistics (e.g., after a warm-up phase) but keeps queue state.
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::default();
    }

    /// Reseeds the loss-draw RNG (call once at setup for reproducible
    /// fault runs).
    pub fn seed_faults(&mut self, seed: u64) {
        use rand::SeedableRng;
        self.fault_rng = rand::rngs::StdRng::seed_from_u64(seed);
    }

    /// Sets the per-message loss probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= prob <= 1.0`.
    pub fn set_loss_prob(&mut self, prob: f64) {
        assert!(
            (0.0..=1.0).contains(&prob),
            "loss probability must be in [0, 1]"
        );
        self.loss_prob = prob;
    }

    /// The current per-message loss probability.
    pub fn loss_prob(&self) -> f64 {
        self.loss_prob
    }

    /// Sets the delay multiplier applied to both transmission and
    /// propagation time.
    ///
    /// # Panics
    ///
    /// Panics unless `factor >= 1.0` (faults slow links down, never up).
    pub fn set_latency_factor(&mut self, factor: f64) {
        assert!(factor >= 1.0, "latency factor must be >= 1");
        self.latency_factor = factor;
    }

    /// The current delay multiplier.
    pub fn latency_factor(&self) -> f64 {
        self.latency_factor
    }

    /// Messages lost to injected link loss so far.
    pub fn messages_dropped(&self) -> u64 {
        self.dropped
    }

    fn tx_time(&self, bytes: u64) -> SimTime {
        let nominal = bytes as f64 / self.config.bandwidth;
        SimTime::from_secs_f64(nominal * self.latency_factor)
    }

    fn hop_delay(&self) -> SimTime {
        if self.latency_factor == 1.0 {
            self.config.hop_delay
        } else {
            SimTime::from_secs_f64(self.config.hop_delay.as_secs_f64() * self.latency_factor)
        }
    }

    /// Deterministic Bernoulli loss draw (only consulted when lossy).
    fn message_lost(&mut self) -> bool {
        use rand::Rng;
        self.loss_prob > 0.0 && self.fault_rng.gen_bool(self.loss_prob)
    }

    fn ensure(&mut self, n: usize) {
        if self.busy_until.len() < n {
            self.busy_until.resize(n, SimTime::ZERO);
        }
        self.stats.ensure(n);
    }

    /// Sends `bytes` from `src` to `dst` along the current shortest path,
    /// charging transmission time and queueing at every forwarding node.
    ///
    /// # Errors
    ///
    /// Returns [`TransportError::Unreachable`] when no path exists, and
    /// [`TransportError::Dropped`] when injected link loss eats the
    /// message. A dropped message still cost the first hop its airtime
    /// (the frame was transmitted; it just never arrived intact).
    pub fn unicast(
        &mut self,
        topo: &Topology,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> Result<Delivery, TransportError> {
        self.ensure(topo.len());
        if src == dst {
            return Ok(Delivery {
                arrival: now,
                hops: 0,
            });
        }
        let path = topo
            .path(src, dst)
            .ok_or(TransportError::Unreachable { src, dst })?;
        let tx = self.tx_time(bytes);
        if self.message_lost() {
            // The source transmitted a doomed frame: charge its airtime and
            // bytes, then report the loss.
            let depart = now.max(self.busy_until[src.0]);
            self.busy_until[src.0] = depart + tx;
            self.stats.sent[src.0] += bytes;
            self.stats.messages += 1;
            self.dropped += 1;
            telemetry::counter_add("transport.drops", 1);
            trace_event!(
                "transport.drop",
                now.as_millis(),
                src = src.0,
                dst = dst.0,
                bytes = bytes
            );
            return Err(TransportError::Dropped { src, dst });
        }
        let hop_delay = self.hop_delay();
        let mut t = now;
        for pair in path.windows(2) {
            let (u, v) = (pair[0], pair[1]);
            let depart = t.max(self.busy_until[u.0]);
            let done = depart + tx;
            self.busy_until[u.0] = done;
            t = done + hop_delay;
            self.stats.sent[u.0] += bytes;
            self.stats.received[v.0] += bytes;
            self.stats.messages += 1;
        }
        telemetry::counter_add("transport.sends", 1);
        if telemetry::is_enabled() {
            telemetry::record("transport.hops", (path.len() - 1) as f64);
            telemetry::record(
                "transport.unicast_ms",
                t.saturating_since(now).as_millis() as f64,
            );
        }
        trace_event!(
            "transport.send",
            now.as_millis(),
            src = src.0,
            dst = dst.0,
            bytes = bytes,
            hops = path.len() - 1,
            dur_ms = t.saturating_since(now).as_millis()
        );
        Ok(Delivery {
            arrival: t,
            hops: (path.len() - 1) as u32,
        })
    }

    /// Floods `bytes` from `src` to every reachable node (classic flooding:
    /// each reached node rebroadcasts once). Returns `(node, arrival)` for
    /// every node other than `src` that the flood reaches, in BFS order.
    ///
    /// Queueing is charged at each rebroadcasting node; a broadcast frame is
    /// transmitted once per node and received once per reached node, which
    /// matches single-channel radio flooding.
    pub fn broadcast(
        &mut self,
        topo: &Topology,
        src: NodeId,
        bytes: u64,
        now: SimTime,
    ) -> Vec<(NodeId, SimTime)> {
        self.flood(topo, src, bytes, now, None).flatten()
    }

    /// [`Transport::broadcast`] carrying an actual payload: byte
    /// accounting, queueing, loss draws, and telemetry are identical to
    /// the count-based variant for `bytes == payload.len()`, but the
    /// result hands every recipient the **same** `Arc<[u8]>` (no
    /// per-recipient byte copies) with deliveries batched per arrival
    /// time (one queue insertion per group).
    pub fn broadcast_payload(
        &mut self,
        topo: &Topology,
        src: NodeId,
        payload: &Payload,
        now: SimTime,
    ) -> BroadcastDeliveries {
        self.flood(topo, src, payload.len() as u64, now, Some(payload.clone()))
    }

    /// Shared flooding core: BFS by arrival time, one transmission per
    /// node with uncovered neighbors, deliveries grouped by arrival
    /// instant. All neighbors newly covered by one transmission share its
    /// `reach` time, so they land in one group (groups with coinciding
    /// arrivals merge); flattening restores the historical per-recipient
    /// order because coverage order within a group is BFS push order.
    fn flood(
        &mut self,
        topo: &Topology,
        src: NodeId,
        bytes: u64,
        now: SimTime,
        payload: Option<Payload>,
    ) -> BroadcastDeliveries {
        self.ensure(topo.len());
        let tx = self.tx_time(bytes);
        let hop_delay = self.hop_delay();
        let mut arrival: Vec<Option<SimTime>> = vec![None; topo.len()];
        arrival[src.0] = Some(now);
        // BFS by arrival time: process nodes in nondecreasing arrival order.
        let mut order: Vec<NodeId> = vec![src];
        let mut head = 0;
        let mut reached = 0usize;
        let mut groups: Vec<(SimTime, Vec<NodeId>)> = Vec::new();
        while head < order.len() {
            let u = order[head];
            head += 1;
            let t_u = arrival[u.0].expect("ordered nodes have arrivals");
            let has_new_neighbor = topo.neighbors(u).iter().any(|v| arrival[v.0].is_none());
            if !has_new_neighbor {
                continue;
            }
            // One transmission reaches all (new) neighbors.
            let depart = t_u.max(self.busy_until[u.0]);
            let done = depart + tx;
            self.busy_until[u.0] = done;
            self.stats.sent[u.0] += bytes;
            self.stats.messages += 1;
            let reach = done + hop_delay;
            for &v in topo.neighbors(u) {
                if arrival[v.0].is_none() {
                    // Injected link loss applies per reception: a neighbor
                    // that misses the frame may still be covered by a later
                    // rebroadcast from another neighbor.
                    if self.message_lost() {
                        self.dropped += 1;
                        continue;
                    }
                    arrival[v.0] = Some(reach);
                    self.stats.received[v.0] += bytes;
                    order.push(v);
                    reached += 1;
                    match groups.last_mut() {
                        Some((t, nodes)) if *t == reach => nodes.push(v),
                        _ => groups.push((reach, vec![v])),
                    }
                }
            }
        }
        telemetry::counter_add("transport.broadcasts", 1);
        if telemetry::is_enabled() {
            telemetry::record("transport.broadcast_reach", reached as f64);
        }
        trace_event!(
            "transport.broadcast",
            now.as_millis(),
            src = src.0,
            bytes = bytes,
            reached = reached
        );
        BroadcastDeliveries { payload, groups }
    }
}

impl Transport {
    /// Probabilistic flooding (gossip-style broadcast-storm mitigation):
    /// the source always transmits; every other node that receives the
    /// message rebroadcasts with probability `rebroadcast_prob`. With
    /// `p = 1` this is exactly [`Transport::broadcast`]; lower `p` trades
    /// reach for fewer transmissions — the classic remedy for the
    /// broadcast storm problem in wireless multi-hop networks.
    ///
    /// Returns `(node, arrival)` for every node the flood reaches.
    ///
    /// # Panics
    ///
    /// Panics if `rebroadcast_prob` is not within `[0, 1]`.
    pub fn broadcast_probabilistic<R: rand::Rng + ?Sized>(
        &mut self,
        topo: &Topology,
        src: NodeId,
        bytes: u64,
        now: SimTime,
        rebroadcast_prob: f64,
        rng: &mut R,
    ) -> Vec<(NodeId, SimTime)> {
        assert!(
            (0.0..=1.0).contains(&rebroadcast_prob),
            "rebroadcast probability must be in [0, 1]"
        );
        self.ensure(topo.len());
        let tx = self.tx_time(bytes);
        let hop_delay = self.hop_delay();
        let mut arrival: Vec<Option<SimTime>> = vec![None; topo.len()];
        arrival[src.0] = Some(now);
        let mut frontier: Vec<NodeId> = vec![src];
        let mut head = 0;
        let mut out = Vec::new();
        while head < frontier.len() {
            let u = frontier[head];
            head += 1;
            let forwards = u == src || rng.gen::<f64>() < rebroadcast_prob;
            if !forwards {
                continue;
            }
            let has_new = topo.neighbors(u).iter().any(|v| arrival[v.0].is_none());
            if !has_new {
                continue;
            }
            let t_u = arrival[u.0].expect("frontier nodes have arrivals");
            let depart = t_u.max(self.busy_until[u.0]);
            let done = depart + tx;
            self.busy_until[u.0] = done;
            self.stats.sent[u.0] += bytes;
            self.stats.messages += 1;
            let reach = done + hop_delay;
            for &v in topo.neighbors(u) {
                if arrival[v.0].is_none() {
                    if self.message_lost() {
                        self.dropped += 1;
                        continue;
                    }
                    arrival[v.0] = Some(reach);
                    self.stats.received[v.0] += bytes;
                    frontier.push(v);
                    out.push((v, reach));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;

    fn line(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    #[test]
    fn self_delivery_is_free() {
        let topo = line(3);
        let mut tr = Transport::new(TransportConfig::default());
        let d = tr
            .unicast(&topo, NodeId(1), NodeId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        assert_eq!(d.hops, 0);
        assert_eq!(d.arrival, SimTime::ZERO);
        assert_eq!(tr.stats().total_sent(), 0);
    }

    #[test]
    fn unicast_latency_scales_with_hops() {
        let topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        let one = tr
            .unicast(&topo, NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        let mut tr2 = Transport::new(TransportConfig::default());
        let three = tr2
            .unicast(&topo, NodeId(0), NodeId(3), 1_000_000, SimTime::ZERO)
            .unwrap();
        assert_eq!(one.hops, 1);
        assert_eq!(three.hops, 3);
        assert_eq!(three.arrival.as_millis(), 3 * one.arrival.as_millis());
        // 1 MB at 2.5 MB/s = 400 ms + 10 ms prop.
        assert_eq!(one.arrival.as_millis(), 410);
    }

    #[test]
    fn queueing_serializes_transmissions() {
        let topo = line(2);
        let mut tr = Transport::new(TransportConfig::default());
        let a = tr
            .unicast(&topo, NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        let b = tr
            .unicast(&topo, NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        // Second message waits for the first transmission to finish.
        assert_eq!(b.arrival.as_millis(), a.arrival.as_millis() + 400);
    }

    #[test]
    fn unreachable_reported() {
        let topo = Topology::from_positions(vec![Point::new(0.0, 0.0), Point::new(250.0, 250.0)]);
        let mut tr = Transport::new(TransportConfig::default());
        let err = tr
            .unicast(&topo, NodeId(0), NodeId(1), 10, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Unreachable {
                src: NodeId(0),
                dst: NodeId(1)
            }
        );
    }

    #[test]
    fn byte_accounting_charges_forwarders() {
        let topo = line(3);
        let mut tr = Transport::new(TransportConfig::default());
        tr.unicast(&topo, NodeId(0), NodeId(2), 100, SimTime::ZERO)
            .unwrap();
        let s = tr.stats();
        assert_eq!(s.sent_bytes(NodeId(0)), 100);
        assert_eq!(s.sent_bytes(NodeId(1)), 100); // forwarder transmits too
        assert_eq!(s.received_bytes(NodeId(1)), 100);
        assert_eq!(s.received_bytes(NodeId(2)), 100);
        assert_eq!(s.total_sent(), 200);
        assert_eq!(s.message_count(), 2);
        assert_eq!(s.node_overhead(NodeId(1)), 200);
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let topo = line(5);
        let mut tr = Transport::new(TransportConfig::default());
        let deliveries = tr.broadcast(&topo, NodeId(0), 1000, SimTime::ZERO);
        assert_eq!(deliveries.len(), 4);
        // Arrivals strictly increase along the chain.
        let mut sorted = deliveries.clone();
        sorted.sort_by_key(|(n, _)| n.0);
        for w in sorted.windows(2) {
            assert!(w[1].1 > w[0].1);
        }
        // Each of nodes 0..=3 transmits once (node 4 has no new neighbors).
        assert_eq!(tr.stats().total_sent(), 4 * 1000);
        for v in 1..5 {
            assert_eq!(tr.stats().received_bytes(NodeId(v)), 1000);
        }
    }

    #[test]
    fn broadcast_on_partition_covers_only_component() {
        let topo = Topology::from_positions(vec![
            Point::new(0.0, 0.0),
            Point::new(50.0, 0.0),
            Point::new(290.0, 290.0),
        ]);
        let mut tr = Transport::new(TransportConfig::default());
        let deliveries = tr.broadcast(&topo, NodeId(0), 10, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].0, NodeId(1));
    }

    #[test]
    fn probabilistic_flood_with_p1_matches_flooding() {
        use rand::SeedableRng;
        let topo = line(6);
        let mut flood = Transport::new(TransportConfig::default());
        let reach_flood = flood.broadcast(&topo, NodeId(0), 100, SimTime::ZERO);
        let mut prob = Transport::new(TransportConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let reach_prob =
            prob.broadcast_probabilistic(&topo, NodeId(0), 100, SimTime::ZERO, 1.0, &mut rng);
        assert_eq!(reach_flood, reach_prob);
        assert_eq!(flood.stats().total_sent(), prob.stats().total_sent());
    }

    #[test]
    fn probabilistic_flood_with_p0_reaches_only_neighbors() {
        use rand::SeedableRng;
        let topo = line(6);
        let mut tr = Transport::new(TransportConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let reached =
            tr.broadcast_probabilistic(&topo, NodeId(2), 100, SimTime::ZERO, 0.0, &mut rng);
        let mut nodes: Vec<NodeId> = reached.into_iter().map(|(v, _)| v).collect();
        nodes.sort();
        assert_eq!(nodes, vec![NodeId(1), NodeId(3)]);
        assert_eq!(tr.stats().total_sent(), 100); // only the source transmits
    }

    #[test]
    fn probabilistic_flood_never_costs_more_than_flooding() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let topo = crate::topology::Topology::random_connected(
            25,
            crate::topology::TopologyConfig::default(),
            &mut rng,
        )
        .unwrap();
        let mut flood = Transport::new(TransportConfig::default());
        flood.broadcast(&topo, NodeId(0), 1000, SimTime::ZERO);
        for p in [0.3, 0.6, 0.9] {
            let mut tr = Transport::new(TransportConfig::default());
            tr.broadcast_probabilistic(&topo, NodeId(0), 1000, SimTime::ZERO, p, &mut rng);
            assert!(
                tr.stats().total_sent() <= flood.stats().total_sent(),
                "p={p} sent more than flooding"
            );
        }
    }

    #[test]
    #[should_panic(expected = "probability must be in")]
    fn probabilistic_flood_rejects_bad_probability() {
        use rand::SeedableRng;
        let topo = line(2);
        let mut tr = Transport::new(TransportConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let _ = tr.broadcast_probabilistic(&topo, NodeId(0), 1, SimTime::ZERO, 1.5, &mut rng);
    }

    #[test]
    fn reset_stats_clears_counters_only() {
        let topo = line(2);
        let mut tr = Transport::new(TransportConfig::default());
        tr.unicast(&topo, NodeId(0), NodeId(1), 50, SimTime::ZERO)
            .unwrap();
        tr.reset_stats();
        assert_eq!(tr.stats().total_sent(), 0);
        assert_eq!(tr.stats().mean_node_overhead(), 0.0);
    }

    #[test]
    fn total_loss_drops_every_unicast() {
        let topo = line(3);
        let mut tr = Transport::new(TransportConfig::default());
        tr.set_loss_prob(1.0);
        let err = tr
            .unicast(&topo, NodeId(0), NodeId(2), 500, SimTime::ZERO)
            .unwrap_err();
        assert_eq!(
            err,
            TransportError::Dropped {
                src: NodeId(0),
                dst: NodeId(2)
            }
        );
        assert_eq!(tr.messages_dropped(), 1);
        // The doomed frame still burned the source's airtime and bytes.
        assert_eq!(tr.stats().sent_bytes(NodeId(0)), 500);
        assert_eq!(tr.stats().received_bytes(NodeId(2)), 0);
    }

    #[test]
    fn lossless_transport_never_consults_the_fault_rng() {
        let topo = line(4);
        let mut a = Transport::new(TransportConfig::default());
        let mut b = Transport::new(TransportConfig::default());
        b.seed_faults(0xDEAD_BEEF); // different fault seed, same traffic
        for _ in 0..20 {
            let da = a.unicast(&topo, NodeId(0), NodeId(3), 1000, SimTime::ZERO);
            let db = b.unicast(&topo, NodeId(0), NodeId(3), 1000, SimTime::ZERO);
            assert_eq!(da.unwrap(), db.unwrap());
        }
        assert_eq!(a.messages_dropped(), 0);
        assert_eq!(b.messages_dropped(), 0);
    }

    #[test]
    fn partial_loss_is_deterministic_per_seed() {
        let topo = line(2);
        let run = |seed: u64| {
            let mut tr = Transport::new(TransportConfig::default());
            tr.seed_faults(seed);
            tr.set_loss_prob(0.3);
            (0..200)
                .map(|_| {
                    tr.unicast(&topo, NodeId(0), NodeId(1), 10, SimTime::ZERO)
                        .is_ok()
                })
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9), "same seed must give the same loss pattern");
        let oks = run(9).iter().filter(|&&ok| ok).count();
        assert!((100..180).contains(&oks), "~70% should survive, got {oks}");
    }

    #[test]
    fn latency_spike_scales_delivery_time() {
        let topo = line(2);
        let mut tr = Transport::new(TransportConfig::default());
        tr.set_latency_factor(3.0);
        let d = tr
            .unicast(&topo, NodeId(0), NodeId(1), 1_000_000, SimTime::ZERO)
            .unwrap();
        // Nominal 410 ms (400 tx + 10 prop) tripled.
        assert_eq!(d.arrival.as_millis(), 3 * 410);
    }

    #[test]
    fn broadcast_under_total_loss_reaches_no_one() {
        let topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        tr.set_loss_prob(1.0);
        let reached = tr.broadcast(&topo, NodeId(0), 100, SimTime::ZERO);
        assert!(reached.is_empty());
        assert_eq!(tr.messages_dropped(), 1, "one lost reception per neighbor");
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn loss_prob_out_of_range_rejected() {
        Transport::new(TransportConfig::default()).set_loss_prob(1.5);
    }

    #[test]
    #[should_panic(expected = "latency factor")]
    fn latency_factor_below_one_rejected() {
        Transport::new(TransportConfig::default()).set_latency_factor(0.5);
    }

    #[test]
    fn broadcast_payload_matches_count_based_broadcast() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let topo = crate::topology::Topology::random_connected(
            25,
            crate::topology::TopologyConfig::default(),
            &mut rng,
        )
        .unwrap();
        let bytes = vec![0xABu8; 1000];
        for loss in [0.0, 0.3] {
            let mut by_count = Transport::new(TransportConfig::default());
            let mut by_payload = Transport::new(TransportConfig::default());
            for tr in [&mut by_count, &mut by_payload] {
                tr.seed_faults(77);
                tr.set_loss_prob(loss);
            }
            let flat = by_count.broadcast(&topo, NodeId(0), 1000, SimTime::ZERO);
            let grouped = by_payload.broadcast_payload(
                &topo,
                NodeId(0),
                &Payload::from(bytes.clone()),
                SimTime::ZERO,
            );
            assert_eq!(grouped.flatten(), flat, "loss={loss}");
            assert_eq!(grouped.reached(), flat.len());
            assert_eq!(
                by_count.stats().total_sent(),
                by_payload.stats().total_sent()
            );
            assert_eq!(by_count.messages_dropped(), by_payload.messages_dropped());
        }
    }

    #[test]
    fn deliveries_batch_same_arrival_into_one_group() {
        // A star: the centre's single transmission covers all three leaves
        // at the same instant — one group, not three.
        let topo = Topology::from_positions(vec![
            Point::new(0.0, 0.0),
            Point::new(60.0, 0.0),
            Point::new(-60.0, 0.0),
            Point::new(0.0, 60.0),
        ]);
        let mut tr = Transport::new(TransportConfig::default());
        let d = tr.broadcast_payload(
            &topo,
            NodeId(0),
            &Payload::from(vec![1u8; 100]),
            SimTime::ZERO,
        );
        assert_eq!(d.reached(), 3);
        assert_eq!(d.groups().len(), 1, "one arrival instant, one group");
        assert_eq!(d.groups()[0].1.len(), 3);
        // A line delivers hop by hop: one group per hop.
        let line_topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        let d = tr.broadcast_payload(
            &line_topo,
            NodeId(0),
            &Payload::from(vec![1u8; 100]),
            SimTime::ZERO,
        );
        assert_eq!(d.reached(), 3);
        assert_eq!(d.groups().len(), 3);
    }

    #[test]
    fn payload_is_shared_not_copied() {
        let payload = Payload::from(vec![7u8; 64]);
        let topo = line(3);
        let mut tr = Transport::new(TransportConfig::default());
        let d = tr.broadcast_payload(&topo, NodeId(0), &payload, SimTime::ZERO);
        let delivered = d.payload().expect("payload broadcast carries payload");
        assert!(
            Arc::ptr_eq(&delivered.shared(), &payload.shared()),
            "deliveries must share the sender's allocation"
        );
        assert_eq!(delivered.bytes(), payload.bytes());
        assert_eq!(delivered.len(), 64);
        assert!(!delivered.is_empty());
    }

    #[test]
    fn scrambled_and_truncated_payloads_are_deterministic_copies() {
        let payload = Payload::from((0u8..=255).collect::<Vec<u8>>());
        let a = payload.scrambled(42);
        let b = payload.scrambled(42);
        assert_eq!(a, b, "same seed scrambles identically");
        assert_ne!(a, payload, "scrambling must change the bytes");
        assert_ne!(
            a.bytes()[0],
            payload.bytes()[0],
            "leading format byte must flip"
        );
        assert_ne!(a, payload.scrambled(43), "different seeds differ");
        assert_eq!(payload.bytes(), &(0u8..=255).collect::<Vec<u8>>()[..]);
        let t = payload.truncated(10);
        assert_eq!(t.bytes(), &payload.bytes()[..10]);
        assert_eq!(payload.truncated(10_000).len(), 256);
    }

    #[test]
    fn mean_node_overhead() {
        let topo = line(2);
        let mut tr = Transport::new(TransportConfig::default());
        tr.unicast(&topo, NodeId(0), NodeId(1), 100, SimTime::ZERO)
            .unwrap();
        // Node 0 sent 100, node 1 received 100 → mean (100+100)/2.
        assert_eq!(tr.stats().mean_node_overhead(), 100.0);
    }
}
