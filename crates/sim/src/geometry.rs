//! Planar geometry for the wireless network model.
//!
//! Nodes live in a rectangular field (the paper uses 300 m × 300 m) and two
//! nodes can communicate when their Euclidean distance is at most the radio
//! range (70 m, typical 802.11n).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the simulation field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

/// A rectangular deployment field anchored at the origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

impl Field {
    /// Creates a field.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        Field { width, height }
    }

    /// The paper's evaluation field: 300 m × 300 m.
    pub fn paper_default() -> Self {
        Field::new(300.0, 300.0)
    }

    /// Clamps a point into the field.
    pub fn clamp(&self, p: Point) -> Point {
        Point {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// Whether the field contains `p`.
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

impl Default for Field {
    fn default() -> Self {
        Field::paper_default()
    }
}

/// A uniform-grid spatial hash over a [`Field`].
///
/// Buckets points into square cells of side `cell` meters. With
/// `cell >= radio range`, every point within range of a query point lies
/// in the query's own cell or one of its 8 neighbors, so range queries
/// touch O(density · cell²) candidates instead of all `n` points.
#[derive(Debug, Clone)]
pub struct CellGrid {
    cell: f64,
    cols: usize,
    rows: usize,
    buckets: Vec<Vec<usize>>,
}

impl CellGrid {
    /// Buckets `points` (indexed by position in the slice) into cells of
    /// side `cell` meters. Points outside the field are clamped into the
    /// border cells, so out-of-field coordinates still land in a bucket.
    ///
    /// # Panics
    ///
    /// Panics if `cell` is not strictly positive.
    pub fn new(field: &Field, cell: f64, points: &[Point]) -> Self {
        assert!(cell > 0.0, "cell size must be positive");
        let cols = (field.width / cell).ceil().max(1.0) as usize;
        let rows = (field.height / cell).ceil().max(1.0) as usize;
        let mut grid = CellGrid {
            cell,
            cols,
            rows,
            buckets: vec![Vec::new(); cols * rows],
        };
        for (i, p) in points.iter().enumerate() {
            let c = grid.cell_of(p);
            grid.buckets[c].push(i);
        }
        grid
    }

    /// Bucket index containing `p` (clamped to the grid bounds).
    fn cell_of(&self, p: &Point) -> usize {
        let cx = ((p.x / self.cell).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell).floor().max(0.0) as usize).min(self.rows - 1);
        cy * self.cols + cx
    }

    /// Visits every point index in the 3×3 cell neighborhood of `p` —
    /// a superset of all points within `cell` meters of `p`. Indices are
    /// visited in bucket order (insertion order within a bucket), so the
    /// caller must sort if it needs a canonical ordering.
    pub fn for_each_candidate<F: FnMut(usize)>(&self, p: &Point, mut f: F) {
        let cx = ((p.x / self.cell).floor().max(0.0) as usize).min(self.cols - 1);
        let cy = ((p.y / self.cell).floor().max(0.0) as usize).min(self.rows - 1);
        let x0 = cx.saturating_sub(1);
        let y0 = cy.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y1 = (cy + 1).min(self.rows - 1);
        for y in y0..=y1 {
            for x in x0..=x1 {
                for &i in &self.buckets[y * self.cols + x] {
                    f(i);
                }
            }
        }
    }

    /// Estimated heap usage in bytes.
    pub fn memory_bytes(&self) -> usize {
        let per_bucket = std::mem::size_of::<Vec<usize>>();
        let entries: usize = self.buckets.iter().map(|b| b.capacity()).sum();
        self.buckets.capacity() * per_bucket + entries * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_symmetry() {
        let a = Point::new(1.5, 2.5);
        let b = Point::new(-4.0, 7.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn field_clamp_and_contains() {
        let f = Field::paper_default();
        assert!(f.contains(&Point::new(150.0, 150.0)));
        assert!(!f.contains(&Point::new(301.0, 0.0)));
        let clamped = f.clamp(Point::new(-5.0, 500.0));
        assert_eq!(clamped, Point::new(0.0, 300.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_field_rejected() {
        let _ = Field::new(0.0, 10.0);
    }

    #[test]
    fn point_display() {
        assert_eq!(format!("{}", Point::new(1.25, 2.0)), "(1.2, 2.0)");
    }

    #[test]
    fn cell_grid_candidates_cover_all_in_range_pairs() {
        let field = Field::paper_default();
        // Deterministic pseudo-grid of points, including field corners.
        let mut pts = Vec::new();
        for i in 0..12 {
            for j in 0..12 {
                pts.push(Point::new(
                    (i as f64 * 27.3) % 300.0,
                    (j as f64 * 41.7) % 300.0,
                ));
            }
        }
        let range = 70.0;
        let grid = CellGrid::new(&field, range, &pts);
        for (a, pa) in pts.iter().enumerate() {
            let mut candidates = Vec::new();
            grid.for_each_candidate(pa, |i| candidates.push(i));
            // Every in-range point (including `a` itself) is a candidate.
            for (b, pb) in pts.iter().enumerate() {
                if pa.distance(pb) <= range {
                    assert!(candidates.contains(&b), "{a} missing in-range {b}");
                }
            }
        }
    }

    #[test]
    fn cell_grid_clamps_out_of_field_points() {
        let field = Field::new(100.0, 100.0);
        let pts = vec![Point::new(-10.0, 50.0), Point::new(250.0, 250.0)];
        let grid = CellGrid::new(&field, 70.0, &pts);
        let mut seen = Vec::new();
        grid.for_each_candidate(&Point::new(0.0, 50.0), |i| seen.push(i));
        assert!(seen.contains(&0));
        let mut far = Vec::new();
        grid.for_each_candidate(&Point::new(100.0, 100.0), |i| far.push(i));
        assert!(far.contains(&1));
        assert!(grid.memory_bytes() > 0);
    }
}
