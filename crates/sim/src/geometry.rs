//! Planar geometry for the wireless network model.
//!
//! Nodes live in a rectangular field (the paper uses 300 m × 300 m) and two
//! nodes can communicate when their Euclidean distance is at most the radio
//! range (70 m, typical 802.11n).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A point in the simulation field, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate in meters.
    pub x: f64,
    /// Vertical coordinate in meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, in meters.
    pub fn distance(&self, other: &Point) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point { x, y }
    }
}

/// A rectangular deployment field anchored at the origin.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Field {
    /// Width in meters.
    pub width: f64,
    /// Height in meters.
    pub height: f64,
}

impl Field {
    /// Creates a field.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not strictly positive.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width > 0.0 && height > 0.0,
            "field dimensions must be positive"
        );
        Field { width, height }
    }

    /// The paper's evaluation field: 300 m × 300 m.
    pub fn paper_default() -> Self {
        Field::new(300.0, 300.0)
    }

    /// Clamps a point into the field.
    pub fn clamp(&self, p: Point) -> Point {
        Point {
            x: p.x.clamp(0.0, self.width),
            y: p.y.clamp(0.0, self.height),
        }
    }

    /// Whether the field contains `p`.
    pub fn contains(&self, p: &Point) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }
}

impl Default for Field {
    fn default() -> Self {
        Field::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_basics() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn distance_symmetry() {
        let a = Point::new(1.5, 2.5);
        let b = Point::new(-4.0, 7.0);
        assert_eq!(a.distance(&b), b.distance(&a));
    }

    #[test]
    fn field_clamp_and_contains() {
        let f = Field::paper_default();
        assert!(f.contains(&Point::new(150.0, 150.0)));
        assert!(!f.contains(&Point::new(301.0, 0.0)));
        let clamped = f.clamp(Point::new(-5.0, 500.0));
        assert_eq!(clamped, Point::new(0.0, 300.0));
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_field_rejected() {
        let _ = Field::new(0.0, 10.0);
    }

    #[test]
    fn point_display() {
        assert_eq!(format!("{}", Point::new(1.25, 2.0)), "(1.2, 2.0)");
    }
}
