//! Deterministic discrete-event simulation of pervasive edge environments.
//!
//! This crate is the substrate replacing the paper's Node.js + Docker
//! testbed. It provides:
//!
//! * [`EventQueue`] / [`SimTime`] — a millisecond-resolution event scheduler
//!   with FIFO tie-breaking, giving bit-for-bit reproducible runs.
//! * [`Topology`] — nodes placed in a 300 m × 300 m field with 70 m radio
//!   range and 30 m mobility discs (the paper's §VI parameters), with BFS
//!   hop counts, shortest-path routing, and the Range-Distance Cost of
//!   Eq. (2).
//! * [`Transport`] — store-and-forward unicast and flooding broadcast with
//!   propagation (10 ms/hop), transmission (`bytes / bandwidth`), and
//!   queueing delays, plus per-node byte accounting.
//! * [`gini`] / [`RunningStats`] — the evaluation metrics of Figs. 4–5.
//!
//! # Examples
//!
//! ```
//! use edgechain_sim::{
//!     NodeId, SimTime, Topology, TopologyConfig, Transport, TransportConfig,
//! };
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let topo = Topology::random_connected(20, TopologyConfig::default(), &mut rng)?;
//! let mut transport = Transport::new(TransportConfig::default());
//! let delivery = transport.unicast(
//!     &topo, NodeId(0), NodeId(7), 1_000_000, SimTime::ZERO,
//! )?;
//! assert!(delivery.arrival > SimTime::ZERO);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod fault;
pub mod geometry;
pub mod metrics;
pub mod pool;
pub mod topology;
pub mod transport;

pub use event::{EventQueue, SimTime};
pub use fault::{
    ByzantineAction, ByzantineSweepConfig, ChurnConfig, FaultAction, FaultEvent, FaultInjector,
    FaultPlan, FaultPlanError, RoleAssignment,
};
pub use geometry::{CellGrid, Field, Point};
pub use metrics::{gini, gini_counts, RunningStats, SampleSet};
pub use topology::{NodeId, Topology, TopologyConfig, TopologyError, UNREACHABLE};
pub use transport::{
    BroadcastDeliveries, Delivery, Payload, TrafficStats, Transport, TransportConfig,
    TransportError,
};
