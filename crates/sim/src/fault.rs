//! Deterministic fault injection: node churn, partitions, lossy links,
//! and latency spikes.
//!
//! A [`FaultPlan`] is a declarative, serializable schedule of
//! [`FaultEvent`]s fixed before the run starts, so a simulation under
//! faults is exactly as reproducible as one without: the same seed and
//! plan give bit-identical traces. The [`FaultInjector`] linearizes the
//! plan into a timeline of [`FaultAction`]s that the event loop applies
//! at the right instants — crashes and restarts mutate the
//! [`Topology`]'s active set, partitions impose a link cut, and
//! loss/latency windows toggle the [`Transport`] knobs.
//!
//! ```
//! use edgechain_sim::fault::{FaultEvent, FaultInjector, FaultPlan};
//! use edgechain_sim::{NodeId, SimTime, Topology, TopologyConfig, Transport,
//!     TransportConfig, Point};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultEvent::Crash { node: NodeId(1), at: SimTime::from_secs(60) },
//!     FaultEvent::Restart { node: NodeId(1), at: SimTime::from_secs(120) },
//! ]);
//! plan.validate(3).unwrap();
//! let mut injector = FaultInjector::new(&plan);
//! let mut topo = Topology::from_positions(vec![
//!     Point::new(0.0, 0.0), Point::new(50.0, 0.0), Point::new(100.0, 0.0),
//! ]);
//! let mut transport = Transport::new(TransportConfig::default());
//! assert_eq!(injector.next_due(), Some(SimTime::from_secs(60)));
//! for action in injector.drain_due(SimTime::from_secs(60)) {
//!     action.apply(&mut topo, &mut transport);
//! }
//! assert!(!topo.is_active(NodeId(1)));
//! ```

use crate::event::SimTime;
use crate::topology::{NodeId, Topology};
use crate::transport::Transport;
use edgechain_telemetry::{self as telemetry, trace_event};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One scheduled fault in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// `node` halts at `at`: its radio goes silent and its storage is
    /// unavailable (but not wiped) until a matching [`FaultEvent::Restart`].
    Crash {
        /// The node that fails.
        node: NodeId,
        /// When it fails.
        at: SimTime,
    },
    /// `node` comes back at `at` with its pre-crash disk contents.
    Restart {
        /// The node that recovers.
        node: NodeId,
        /// When it recovers.
        at: SimTime,
    },
    /// Links between `cut` and the rest of the network are severed during
    /// `[from, until)`.
    Partition {
        /// One side of the split (the rest of the network is the other).
        cut: Vec<NodeId>,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Every message is independently lost with probability `prob` during
    /// `[from, until)`.
    LinkLoss {
        /// Per-message loss probability in `[0, 1]`.
        prob: f64,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Transmission and propagation delays are multiplied by `factor`
    /// during `[from, until)`.
    LatencySpike {
        /// Delay multiplier, `>= 1`.
        factor: f64,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
}

impl FaultEvent {
    /// The instant this event first takes effect.
    pub fn starts_at(&self) -> SimTime {
        match self {
            FaultEvent::Crash { at, .. } | FaultEvent::Restart { at, .. } => *at,
            FaultEvent::Partition { from, .. }
            | FaultEvent::LinkLoss { from, .. }
            | FaultEvent::LatencySpike { from, .. } => *from,
        }
    }
}

/// A complete fault schedule, fixed before the run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
}

/// Parameters for [`FaultPlan::random_churn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Expected crashes per simulated minute across the whole network.
    pub crashes_per_min: f64,
    /// Mean downtime per crash in seconds (exponentially distributed).
    pub mean_downtime_secs: f64,
    /// Don't allow more than this many nodes down at once.
    pub max_concurrent_down: usize,
    /// Schedule horizon: no crash is injected after this time.
    pub horizon: SimTime,
}

impl FaultPlan {
    /// Wraps a list of events as a plan.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan { events }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a seeded random churn schedule: crash arrivals follow a
    /// Poisson process at `cfg.crashes_per_min`, each crashed node restarts
    /// after an exponential downtime, and at most `cfg.max_concurrent_down`
    /// nodes are ever down simultaneously (arrivals that would exceed the
    /// cap are skipped, not deferred). Node choice, arrival times, and
    /// downtimes are all drawn from `rng`, so the schedule is a pure
    /// function of the seed.
    pub fn random_churn<R: Rng + ?Sized>(nodes: usize, cfg: ChurnConfig, rng: &mut R) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(cfg.crashes_per_min >= 0.0, "crash rate must be nonnegative");
        let mut events = Vec::new();
        if cfg.crashes_per_min <= 0.0 {
            return FaultPlan::new(events);
        }
        let rate_per_sec = cfg.crashes_per_min / 60.0;
        // (restart_time, node) for nodes currently scheduled as down.
        let mut down: Vec<(SimTime, NodeId)> = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += SimTime::from_secs_f64(-u.ln() / rate_per_sec);
            if t >= cfg.horizon {
                break;
            }
            down.retain(|&(until, _)| until > t);
            if down.len() >= cfg.max_concurrent_down {
                continue;
            }
            let up: Vec<NodeId> = (0..nodes)
                .map(NodeId)
                .filter(|v| down.iter().all(|&(_, d)| d != *v))
                .collect();
            if up.is_empty() {
                continue;
            }
            let node = up[rng.gen_range(0..up.len())];
            let w: f64 = rng.gen_range(1e-12..1.0);
            let downtime = SimTime::from_secs_f64(-w.ln() * cfg.mean_downtime_secs.max(1.0));
            let restart = t + downtime;
            events.push(FaultEvent::Crash { node, at: t });
            events.push(FaultEvent::Restart { node, at: restart });
            down.push((restart, node));
        }
        FaultPlan::new(events)
    }

    /// Checks the plan against a network of `nodes` nodes: node ids in
    /// range, windows nonempty, probabilities in `[0, 1]`, factors `>= 1`,
    /// crash/restart alternation per node, and no overlapping windows of
    /// the same kind (overlap would make "window end" ambiguous).
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(&self, nodes: usize) -> Result<(), FaultPlanError> {
        let check_node = |v: NodeId| {
            if v.0 >= nodes {
                Err(FaultPlanError::NodeOutOfRange { node: v, nodes })
            } else {
                Ok(())
            }
        };
        let mut loss_windows = Vec::new();
        let mut latency_windows = Vec::new();
        let mut partition_windows = Vec::new();
        for ev in &self.events {
            match ev {
                FaultEvent::Crash { node, .. } | FaultEvent::Restart { node, .. } => {
                    check_node(*node)?;
                }
                FaultEvent::Partition { cut, from, until } => {
                    for &v in cut {
                        check_node(v)?;
                    }
                    if cut.is_empty() || cut.len() >= nodes {
                        return Err(FaultPlanError::DegenerateCut {
                            side: cut.len(),
                            nodes,
                        });
                    }
                    Self::check_window(*from, *until)?;
                    partition_windows.push((*from, *until));
                }
                FaultEvent::LinkLoss { prob, from, until } => {
                    if !(0.0..=1.0).contains(prob) {
                        return Err(FaultPlanError::BadProbability { prob: *prob });
                    }
                    Self::check_window(*from, *until)?;
                    loss_windows.push((*from, *until));
                }
                FaultEvent::LatencySpike {
                    factor,
                    from,
                    until,
                } => {
                    if *factor < 1.0 || !factor.is_finite() {
                        return Err(FaultPlanError::BadFactor { factor: *factor });
                    }
                    Self::check_window(*from, *until)?;
                    latency_windows.push((*from, *until));
                }
            }
        }
        for windows in [
            &mut loss_windows,
            &mut latency_windows,
            &mut partition_windows,
        ] {
            windows.sort();
            for pair in windows.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(FaultPlanError::OverlappingWindows {
                        first_until: pair[0].1,
                        second_from: pair[1].0,
                    });
                }
            }
        }
        // Per-node crash/restart events must alternate, starting crashed.
        for v in 0..nodes {
            let mut marks: Vec<(SimTime, bool)> = self
                .events
                .iter()
                .filter_map(|ev| match ev {
                    FaultEvent::Crash { node, at } if node.0 == v => Some((*at, true)),
                    FaultEvent::Restart { node, at } if node.0 == v => Some((*at, false)),
                    _ => None,
                })
                .collect();
            marks.sort();
            let mut expect_crash = true;
            for &(at, is_crash) in &marks {
                if is_crash != expect_crash {
                    return Err(FaultPlanError::ChurnOutOfOrder {
                        node: NodeId(v),
                        at,
                    });
                }
                expect_crash = !expect_crash;
            }
        }
        Ok(())
    }

    fn check_window(from: SimTime, until: SimTime) -> Result<(), FaultPlanError> {
        if from >= until {
            Err(FaultPlanError::EmptyWindow { from, until })
        } else {
            Ok(())
        }
    }
}

/// Why a [`FaultPlan`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An event names a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Network size.
        nodes: usize,
    },
    /// A partition cut would be empty or the whole network.
    DegenerateCut {
        /// Size of the cut side.
        side: usize,
        /// Network size.
        nodes: usize,
    },
    /// A loss probability outside `[0, 1]`.
    BadProbability {
        /// The offending probability.
        prob: f64,
    },
    /// A latency factor below 1 (or non-finite).
    BadFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A window with `from >= until`.
    EmptyWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Two windows of the same kind overlap.
    OverlappingWindows {
        /// End of the earlier window.
        first_until: SimTime,
        /// Start of the later window.
        second_from: SimTime,
    },
    /// A node restarts while up, or crashes while already down.
    ChurnOutOfOrder {
        /// The offending node.
        node: NodeId,
        /// When the out-of-order event fires.
        at: SimTime,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node, nodes } => {
                write!(f, "{node} out of range for a {nodes}-node network")
            }
            FaultPlanError::DegenerateCut { side, nodes } => {
                write!(f, "partition cut of {side} nodes in a {nodes}-node network")
            }
            FaultPlanError::BadProbability { prob } => {
                write!(f, "loss probability {prob} outside [0, 1]")
            }
            FaultPlanError::BadFactor { factor } => {
                write!(f, "latency factor {factor} below 1")
            }
            FaultPlanError::EmptyWindow { from, until } => {
                write!(f, "empty fault window [{from}, {until})")
            }
            FaultPlanError::OverlappingWindows {
                first_until,
                second_from,
            } => {
                write!(
                    f,
                    "fault window starting {second_from} overlaps one ending {first_until}"
                )
            }
            FaultPlanError::ChurnOutOfOrder { node, at } => {
                write!(f, "crash/restart out of order for {node} at {at}")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A single state change derived from a [`FaultEvent`]: window events
/// expand into a start and an end action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Take a node down.
    Crash(NodeId),
    /// Bring a node back up.
    Restart(NodeId),
    /// Impose a partition cut.
    PartitionStart(Vec<NodeId>),
    /// Lift the partition.
    PartitionEnd,
    /// Start dropping messages with this probability.
    LossStart(f64),
    /// Stop dropping messages.
    LossEnd,
    /// Start multiplying delays by this factor.
    LatencyStart(f64),
    /// Return delays to nominal.
    LatencyEnd,
}

impl FaultAction {
    /// Applies the state change to the simulation substrate. The caller
    /// remains responsible for protocol-level consequences (skipping dead
    /// miners, scheduling repair, …).
    pub fn apply(&self, topo: &mut Topology, transport: &mut Transport) {
        match self {
            FaultAction::Crash(v) => topo.set_active(*v, false),
            FaultAction::Restart(v) => topo.set_active(*v, true),
            FaultAction::PartitionStart(cut) => topo.set_partition(Some(cut)),
            FaultAction::PartitionEnd => topo.set_partition(None),
            FaultAction::LossStart(p) => transport.set_loss_prob(*p),
            FaultAction::LossEnd => transport.set_loss_prob(0.0),
            FaultAction::LatencyStart(f) => transport.set_latency_factor(*f),
            FaultAction::LatencyEnd => transport.set_latency_factor(1.0),
        }
    }
}

/// Linearized fault timeline the event loop consults.
///
/// Construction sorts all actions by fire time (stable: simultaneous
/// actions fire in plan order, with window-ends before window-starts at
/// the same instant so back-to-back windows hand over cleanly).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    timeline: Vec<(SimTime, u8, FaultAction)>,
    next: usize,
    applied: u64,
}

impl FaultInjector {
    /// Builds the timeline from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut timeline: Vec<(SimTime, u8, FaultAction)> = Vec::new();
        for ev in &plan.events {
            match ev {
                FaultEvent::Crash { node, at } => {
                    timeline.push((*at, 1, FaultAction::Crash(*node)));
                }
                FaultEvent::Restart { node, at } => {
                    timeline.push((*at, 0, FaultAction::Restart(*node)));
                }
                FaultEvent::Partition { cut, from, until } => {
                    timeline.push((*from, 1, FaultAction::PartitionStart(cut.clone())));
                    timeline.push((*until, 0, FaultAction::PartitionEnd));
                }
                FaultEvent::LinkLoss { prob, from, until } => {
                    timeline.push((*from, 1, FaultAction::LossStart(*prob)));
                    timeline.push((*until, 0, FaultAction::LossEnd));
                }
                FaultEvent::LatencySpike {
                    factor,
                    from,
                    until,
                } => {
                    timeline.push((*from, 1, FaultAction::LatencyStart(*factor)));
                    timeline.push((*until, 0, FaultAction::LatencyEnd));
                }
            }
        }
        timeline.sort_by_key(|a| (a.0, a.1));
        FaultInjector {
            timeline,
            next: 0,
            applied: 0,
        }
    }

    /// When the next pending action fires, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.timeline.get(self.next).map(|&(t, _, _)| t)
    }

    /// Removes and returns every action due at or before `now`, in firing
    /// order. The caller applies them (and counts them as injected).
    ///
    /// Each drained action also lands in the telemetry trace as a
    /// `fault.injected` event stamped with its *scheduled* time, so the
    /// fault timeline correlates with the retries and repairs it causes.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<FaultAction> {
        let mut due = Vec::new();
        while let Some(&(t, _, ref action)) = self.timeline.get(self.next) {
            if t > now {
                break;
            }
            telemetry::counter_add("fault.injected", 1);
            match action {
                FaultAction::Crash(node) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "crash",
                        node = node.0
                    );
                }
                FaultAction::Restart(node) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "restart",
                        node = node.0
                    );
                }
                FaultAction::PartitionStart(cut) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "partition_start",
                        nodes = cut.len()
                    );
                }
                FaultAction::PartitionEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "partition_end");
                }
                FaultAction::LossStart(prob) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "loss_start",
                        prob = *prob
                    );
                }
                FaultAction::LossEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "loss_end");
                }
                FaultAction::LatencyStart(factor) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "latency_start",
                        factor = *factor
                    );
                }
                FaultAction::LatencyEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "latency_end");
                }
            }
            due.push(action.clone());
            self.next += 1;
        }
        self.applied += due.len() as u64;
        due
    }

    /// Total actions drained so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Whether every scheduled action has been drained.
    pub fn exhausted(&self) -> bool {
        self.next >= self.timeline.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::transport::TransportConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn injector_fires_in_time_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Restart {
                node: NodeId(0),
                at: secs(20),
            },
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.5,
                from: secs(5),
                until: secs(15),
            },
        ]);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_due(), Some(secs(5)));
        assert_eq!(inj.drain_due(secs(4)), vec![]);
        assert_eq!(
            inj.drain_due(secs(10)),
            vec![FaultAction::LossStart(0.5), FaultAction::Crash(NodeId(0)),]
        );
        assert_eq!(
            inj.drain_due(secs(60)),
            vec![FaultAction::LossEnd, FaultAction::Restart(NodeId(0)),]
        );
        assert!(inj.exhausted());
        assert_eq!(inj.applied(), 4);
    }

    #[test]
    fn window_end_precedes_start_at_same_instant() {
        // Back-to-back loss windows hand over without a gap or an
        // end-clobbers-start inversion.
        let plan = FaultPlan::new(vec![
            FaultEvent::LinkLoss {
                prob: 0.2,
                from: secs(0),
                until: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.8,
                from: secs(10),
                until: secs(20),
            },
        ]);
        assert!(plan.validate(4).is_ok());
        let mut inj = FaultInjector::new(&plan);
        inj.drain_due(secs(0));
        let at_ten = inj.drain_due(secs(10));
        assert_eq!(
            at_ten,
            vec![FaultAction::LossEnd, FaultAction::LossStart(0.8)]
        );
    }

    #[test]
    fn actions_mutate_topology_and_transport() {
        let mut topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        FaultAction::Crash(NodeId(2)).apply(&mut topo, &mut tr);
        assert!(!topo.is_active(NodeId(2)));
        FaultAction::PartitionStart(vec![NodeId(0)]).apply(&mut topo, &mut tr);
        assert!(!topo.reachable(NodeId(0), NodeId(1)));
        FaultAction::LossStart(0.25).apply(&mut topo, &mut tr);
        assert_eq!(tr.loss_prob(), 0.25);
        FaultAction::LatencyStart(2.0).apply(&mut topo, &mut tr);
        assert_eq!(tr.latency_factor(), 2.0);
        FaultAction::Restart(NodeId(2)).apply(&mut topo, &mut tr);
        FaultAction::PartitionEnd.apply(&mut topo, &mut tr);
        FaultAction::LossEnd.apply(&mut topo, &mut tr);
        FaultAction::LatencyEnd.apply(&mut topo, &mut tr);
        assert!(topo.is_connected());
        assert_eq!(tr.loss_prob(), 0.0);
        assert_eq!(tr.latency_factor(), 1.0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let n = 4;
        let cases = vec![
            FaultEvent::Crash {
                node: NodeId(9),
                at: secs(1),
            },
            FaultEvent::Partition {
                cut: vec![],
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::Partition {
                cut: (0..n).map(NodeId).collect(),
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LinkLoss {
                prob: 1.5,
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LatencySpike {
                factor: 0.5,
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LinkLoss {
                prob: 0.5,
                from: secs(5),
                until: secs(5),
            },
            FaultEvent::Restart {
                node: NodeId(1),
                at: secs(1),
            },
        ];
        for ev in cases {
            let plan = FaultPlan::new(vec![ev.clone()]);
            assert!(plan.validate(n).is_err(), "accepted {ev:?}");
        }
        let overlapping = FaultPlan::new(vec![
            FaultEvent::LinkLoss {
                prob: 0.1,
                from: secs(0),
                until: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.2,
                from: secs(5),
                until: secs(15),
            },
        ]);
        assert_eq!(
            overlapping.validate(n),
            Err(FaultPlanError::OverlappingWindows {
                first_until: secs(10),
                second_from: secs(5),
            })
        );
        let double_crash = FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(1),
            },
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(2),
            },
        ]);
        assert!(matches!(
            double_crash.validate(n),
            Err(FaultPlanError::ChurnOutOfOrder { .. })
        ));
    }

    #[test]
    fn validate_accepts_a_full_mixed_plan() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(3),
                at: secs(30),
            },
            FaultEvent::Restart {
                node: NodeId(3),
                at: secs(90),
            },
            FaultEvent::Crash {
                node: NodeId(3),
                at: secs(200),
            },
            FaultEvent::Partition {
                cut: vec![NodeId(0), NodeId(1)],
                from: secs(60),
                until: secs(360),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: secs(0),
                until: secs(600),
            },
            FaultEvent::LatencySpike {
                factor: 3.0,
                from: secs(100),
                until: secs(160),
            },
        ]);
        assert!(plan.validate(8).is_ok());
    }

    #[test]
    fn random_churn_is_deterministic_and_valid() {
        let cfg = ChurnConfig {
            crashes_per_min: 2.0,
            mean_downtime_secs: 120.0,
            max_concurrent_down: 3,
            horizon: SimTime::from_secs(1800),
        };
        let gen_plan = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultPlan::random_churn(10, cfg, &mut rng)
        };
        let a = gen_plan(42);
        let b = gen_plan(42);
        assert_eq!(a, b, "same seed must give the same plan");
        assert!(!a.is_empty(), "2 crashes/min over 30 min should fire");
        assert!(a.validate(10).is_ok());
        let c = gen_plan(43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_churn_respects_concurrency_cap() {
        let cfg = ChurnConfig {
            crashes_per_min: 60.0, // aggressive: one per second on average
            mean_downtime_secs: 600.0,
            max_concurrent_down: 2,
            horizon: SimTime::from_secs(600),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let plan = FaultPlan::random_churn(6, cfg, &mut rng);
        // Replay the schedule counting concurrent downtime.
        let mut inj = FaultInjector::new(&plan);
        let mut down = 0usize;
        let mut max_down = 0usize;
        while let Some(t) = inj.next_due() {
            for a in inj.drain_due(t) {
                match a {
                    FaultAction::Crash(_) => down += 1,
                    FaultAction::Restart(_) => down -= 1,
                    _ => unreachable!("churn plans only crash and restart"),
                }
            }
            max_down = max_down.max(down);
        }
        assert!(max_down <= 2, "cap violated: {max_down} down at once");
    }
}
