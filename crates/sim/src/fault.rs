//! Deterministic fault injection: node churn, partitions, lossy links,
//! and latency spikes.
//!
//! A [`FaultPlan`] is a declarative, serializable schedule of
//! [`FaultEvent`]s fixed before the run starts, so a simulation under
//! faults is exactly as reproducible as one without: the same seed and
//! plan give bit-identical traces. The [`FaultInjector`] linearizes the
//! plan into a timeline of [`FaultAction`]s that the event loop applies
//! at the right instants — crashes and restarts mutate the
//! [`Topology`]'s active set, partitions impose a link cut, and
//! loss/latency windows toggle the [`Transport`] knobs.
//!
//! ```
//! use edgechain_sim::fault::{FaultEvent, FaultInjector, FaultPlan};
//! use edgechain_sim::{NodeId, SimTime, Topology, TopologyConfig, Transport,
//!     TransportConfig, Point};
//!
//! let plan = FaultPlan::new(vec![
//!     FaultEvent::Crash { node: NodeId(1), at: SimTime::from_secs(60) },
//!     FaultEvent::Restart { node: NodeId(1), at: SimTime::from_secs(120) },
//! ]);
//! plan.validate(3).unwrap();
//! let mut injector = FaultInjector::new(&plan);
//! let mut topo = Topology::from_positions(vec![
//!     Point::new(0.0, 0.0), Point::new(50.0, 0.0), Point::new(100.0, 0.0),
//! ]);
//! let mut transport = Transport::new(TransportConfig::default());
//! assert_eq!(injector.next_due(), Some(SimTime::from_secs(60)));
//! for action in injector.drain_due(SimTime::from_secs(60)) {
//!     action.apply(&mut topo, &mut transport);
//! }
//! assert!(!topo.is_active(NodeId(1)));
//! ```

use crate::event::SimTime;
use crate::topology::{NodeId, Topology};
use crate::transport::Transport;
use edgechain_telemetry::{self as telemetry, trace_event};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Byzantine misbehavior an adversarial node performs at a scheduled
/// instant. Unlike crash/loss faults these are *protocol-level*: the
/// substrate [`FaultAction::apply`] is a no-op and the network layer
/// interprets the action (sealing conflicting blocks, withholding a
/// private fork, corrupting payloads, …).
///
/// Mining-triggered actions ([`Equivocate`](ByzantineAction::Equivocate),
/// [`Withhold`](ByzantineAction::Withhold),
/// [`TamperSignature`](ByzantineAction::TamperSignature)) arm the node and
/// fire the next time it wins a PoS election; wire-level actions
/// ([`ForgeBlock`](ByzantineAction::ForgeBlock),
/// [`GarbagePayload`](ByzantineAction::GarbagePayload)) execute
/// immediately at the scheduled instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ByzantineAction {
    /// Seal two conflicting blocks at one height and broadcast both
    /// (different receivers see different tips).
    Equivocate,
    /// Broadcast a block claiming a PoS hit the node never earned.
    ForgeBlock,
    /// Mine a private fork of `blocks` blocks, withholding them, then
    /// release the fork once it is longer than the public chain.
    Withhold {
        /// Length of the private fork (>= 1).
        blocks: u64,
    },
    /// Seal a block whose packed metadata carries a corrupted signature.
    TamperSignature,
    /// Broadcast `bytes` of garbage (or a truncated block prefix) that no
    /// receiver can decode.
    GarbagePayload {
        /// Payload size in bytes (>= 1).
        bytes: u64,
    },
}

impl ByzantineAction {
    /// Short stable label used in telemetry traces.
    pub fn kind(&self) -> &'static str {
        match self {
            ByzantineAction::Equivocate => "byz_equivocate",
            ByzantineAction::ForgeBlock => "byz_forge",
            ByzantineAction::Withhold { .. } => "byz_withhold",
            ByzantineAction::TamperSignature => "byz_tamper",
            ByzantineAction::GarbagePayload { .. } => "byz_garbage",
        }
    }
}

/// One scheduled fault in a [`FaultPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// `node` halts at `at`: its radio goes silent and its storage is
    /// unavailable (but not wiped) until a matching [`FaultEvent::Restart`].
    Crash {
        /// The node that fails.
        node: NodeId,
        /// When it fails.
        at: SimTime,
    },
    /// `node` comes back at `at` with its pre-crash disk contents.
    Restart {
        /// The node that recovers.
        node: NodeId,
        /// When it recovers.
        at: SimTime,
    },
    /// Links between `cut` and the rest of the network are severed during
    /// `[from, until)`.
    Partition {
        /// One side of the split (the rest of the network is the other).
        cut: Vec<NodeId>,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Every message is independently lost with probability `prob` during
    /// `[from, until)`.
    LinkLoss {
        /// Per-message loss probability in `[0, 1]`.
        prob: f64,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// Transmission and propagation delays are multiplied by `factor`
    /// during `[from, until)`.
    LatencySpike {
        /// Delay multiplier, `>= 1`.
        factor: f64,
        /// Window start.
        from: SimTime,
        /// Window end (exclusive).
        until: SimTime,
    },
    /// `node` performs a [`ByzantineAction`] at (or armed from) `at`.
    Byzantine {
        /// The adversarial node.
        node: NodeId,
        /// What it does.
        action: ByzantineAction,
        /// When the action fires (wire-level) or is armed
        /// (mining-triggered).
        at: SimTime,
    },
}

impl FaultEvent {
    /// The instant this event first takes effect.
    pub fn starts_at(&self) -> SimTime {
        match self {
            FaultEvent::Crash { at, .. }
            | FaultEvent::Restart { at, .. }
            | FaultEvent::Byzantine { at, .. } => *at,
            FaultEvent::Partition { from, .. }
            | FaultEvent::LinkLoss { from, .. }
            | FaultEvent::LatencySpike { from, .. } => *from,
        }
    }
}

/// A complete fault schedule, fixed before the run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The scheduled events, in no particular order.
    pub events: Vec<FaultEvent>,
    /// Optional seeded role assignment. When set, the network draws
    /// malicious (service-denying) roles from a dedicated RNG seeded here
    /// instead of the deterministic ID-tail placement, so sweeps can vary
    /// adversary placement per seed without perturbing any other stream.
    #[serde(default)]
    pub roles: Option<RoleAssignment>,
}

/// Seeded role placement carried by a [`FaultPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoleAssignment {
    /// Seed for the role-placement RNG (independent of the run seed).
    pub seed: u64,
    /// Fraction of nodes assigned the malicious (denial) role, in
    /// `[0, 1]`. Overrides the network's `malicious_fraction` knob.
    pub malicious_fraction: f64,
}

/// Parameters for [`FaultPlan::random_churn`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnConfig {
    /// Expected crashes per simulated minute across the whole network.
    pub crashes_per_min: f64,
    /// Mean downtime per crash in seconds (exponentially distributed).
    pub mean_downtime_secs: f64,
    /// Don't allow more than this many nodes down at once.
    pub max_concurrent_down: usize,
    /// Schedule horizon: no crash is injected after this time.
    pub horizon: SimTime,
}

/// Parameters for [`FaultPlan::random_byzantine`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ByzantineSweepConfig {
    /// Fraction of nodes given an adversary role, in `[0, 1]` (at least
    /// one node is always drawn).
    pub adversary_fraction: f64,
    /// Byzantine actions scheduled per adversary.
    pub actions_per_adversary: usize,
    /// Schedule horizon: actions land inside `[horizon/10, 4*horizon/5)`.
    pub horizon: SimTime,
}

impl FaultPlan {
    /// Wraps a list of events as a plan.
    pub fn new(events: Vec<FaultEvent>) -> Self {
        FaultPlan {
            events,
            roles: None,
        }
    }

    /// A plan with no faults.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan schedules anything at all.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.roles.is_none()
    }

    /// Returns the plan with a seeded [`RoleAssignment`] attached.
    pub fn with_roles(mut self, roles: RoleAssignment) -> Self {
        self.roles = Some(roles);
        self
    }

    /// Combines this plan with another: the event lists concatenate (the
    /// injector orders them by start time) and a role assignment from
    /// either side carries over — `other`'s wins when both carry one.
    /// Lets a churn schedule and a Byzantine sweep compose into one plan.
    #[must_use]
    pub fn merged(mut self, other: FaultPlan) -> Self {
        self.events.extend(other.events);
        if other.roles.is_some() {
            self.roles = other.roles;
        }
        self
    }

    /// Whether the plan schedules any [`FaultEvent::Byzantine`] action.
    pub fn has_byzantine(&self) -> bool {
        self.events
            .iter()
            .any(|ev| matches!(ev, FaultEvent::Byzantine { .. }))
    }

    /// The set of nodes named by any Byzantine action in the plan.
    pub fn byzantine_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .events
            .iter()
            .filter_map(|ev| match ev {
                FaultEvent::Byzantine { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Generates a seeded random churn schedule: crash arrivals follow a
    /// Poisson process at `cfg.crashes_per_min`, each crashed node restarts
    /// after an exponential downtime, and at most `cfg.max_concurrent_down`
    /// nodes are ever down simultaneously (arrivals that would exceed the
    /// cap are skipped, not deferred). Node choice, arrival times, and
    /// downtimes are all drawn from `rng`, so the schedule is a pure
    /// function of the seed.
    pub fn random_churn<R: Rng + ?Sized>(nodes: usize, cfg: ChurnConfig, rng: &mut R) -> Self {
        assert!(nodes > 0, "need at least one node");
        assert!(cfg.crashes_per_min >= 0.0, "crash rate must be nonnegative");
        let mut events = Vec::new();
        if cfg.crashes_per_min <= 0.0 {
            return FaultPlan::new(events);
        }
        let rate_per_sec = cfg.crashes_per_min / 60.0;
        // (restart_time, node) for nodes currently scheduled as down.
        let mut down: Vec<(SimTime, NodeId)> = Vec::new();
        let mut t = SimTime::ZERO;
        loop {
            let u: f64 = rng.gen_range(1e-12..1.0);
            t += SimTime::from_secs_f64(-u.ln() / rate_per_sec);
            if t >= cfg.horizon {
                break;
            }
            down.retain(|&(until, _)| until > t);
            if down.len() >= cfg.max_concurrent_down {
                continue;
            }
            let up: Vec<NodeId> = (0..nodes)
                .map(NodeId)
                .filter(|v| down.iter().all(|&(_, d)| d != *v))
                .collect();
            if up.is_empty() {
                continue;
            }
            let node = up[rng.gen_range(0..up.len())];
            let w: f64 = rng.gen_range(1e-12..1.0);
            let downtime = SimTime::from_secs_f64(-w.ln() * cfg.mean_downtime_secs.max(1.0));
            let restart = t + downtime;
            events.push(FaultEvent::Crash { node, at: t });
            events.push(FaultEvent::Restart { node, at: restart });
            down.push((restart, node));
        }
        FaultPlan::new(events)
    }

    /// Generates a seeded random Byzantine schedule: `cfg.adversary_fraction`
    /// of the nodes (at least one, drawn without replacement from `rng`)
    /// each perform `cfg.actions_per_adversary` actions at random instants
    /// inside `[cfg.horizon/10, 4*cfg.horizon/5)`, cycling through the
    /// action kinds. At most one [`ByzantineAction::Withhold`] is emitted
    /// per plan (the engine tracks a single private fork at a time), and it
    /// is scheduled early so the release fits the horizon. The schedule is
    /// a pure function of the seed.
    pub fn random_byzantine<R: Rng + ?Sized>(
        nodes: usize,
        cfg: ByzantineSweepConfig,
        rng: &mut R,
    ) -> Self {
        assert!(nodes > 1, "need at least two nodes");
        assert!(
            (0.0..=1.0).contains(&cfg.adversary_fraction),
            "adversary fraction must be in [0, 1]"
        );
        let n_adv = ((nodes as f64 * cfg.adversary_fraction).floor() as usize)
            .clamp(1, nodes.saturating_sub(1));
        let mut pool: Vec<NodeId> = (0..nodes).map(NodeId).collect();
        for i in 0..n_adv {
            let j = rng.gen_range(i..pool.len());
            pool.swap(i, j);
        }
        let adversaries = &pool[..n_adv];
        let lo = cfg.horizon.as_millis() / 10;
        let hi = (cfg.horizon.as_millis() * 4 / 5).max(lo + 1);
        let kinds = [
            ByzantineAction::Equivocate,
            ByzantineAction::GarbagePayload { bytes: 2048 },
            ByzantineAction::TamperSignature,
            ByzantineAction::ForgeBlock,
            ByzantineAction::Withhold { blocks: 2 },
        ];
        let mut events = Vec::new();
        let mut withheld = false;
        let mut k = 0usize;
        for &node in adversaries {
            for _ in 0..cfg.actions_per_adversary {
                let mut action = kinds[k % kinds.len()];
                k += 1;
                let mut at = SimTime::from_millis(rng.gen_range(lo..hi));
                if let ByzantineAction::Withhold { .. } = action {
                    if withheld {
                        action = ByzantineAction::Equivocate;
                    } else {
                        withheld = true;
                        at = SimTime::from_millis(lo);
                    }
                }
                events.push(FaultEvent::Byzantine { node, action, at });
            }
        }
        FaultPlan::new(events)
    }

    /// Checks the plan against a network of `nodes` nodes: node ids in
    /// range, windows nonempty, probabilities in `[0, 1]`, factors `>= 1`,
    /// crash/restart alternation per node, and no overlapping windows of
    /// the same kind (overlap would make "window end" ambiguous).
    ///
    /// # Errors
    ///
    /// Returns the first [`FaultPlanError`] found.
    pub fn validate(&self, nodes: usize) -> Result<(), FaultPlanError> {
        let check_node = |v: NodeId| {
            if v.0 >= nodes {
                Err(FaultPlanError::NodeOutOfRange { node: v, nodes })
            } else {
                Ok(())
            }
        };
        let mut loss_windows = Vec::new();
        let mut latency_windows = Vec::new();
        let mut partition_windows = Vec::new();
        for ev in &self.events {
            match ev {
                FaultEvent::Crash { node, .. } | FaultEvent::Restart { node, .. } => {
                    check_node(*node)?;
                }
                FaultEvent::Partition { cut, from, until } => {
                    for &v in cut {
                        check_node(v)?;
                    }
                    if cut.is_empty() || cut.len() >= nodes {
                        return Err(FaultPlanError::DegenerateCut {
                            side: cut.len(),
                            nodes,
                        });
                    }
                    Self::check_window(*from, *until)?;
                    partition_windows.push((*from, *until));
                }
                FaultEvent::LinkLoss { prob, from, until } => {
                    if !(0.0..=1.0).contains(prob) {
                        return Err(FaultPlanError::BadProbability { prob: *prob });
                    }
                    Self::check_window(*from, *until)?;
                    loss_windows.push((*from, *until));
                }
                FaultEvent::LatencySpike {
                    factor,
                    from,
                    until,
                } => {
                    if *factor < 1.0 || !factor.is_finite() {
                        return Err(FaultPlanError::BadFactor { factor: *factor });
                    }
                    Self::check_window(*from, *until)?;
                    latency_windows.push((*from, *until));
                }
                FaultEvent::Byzantine { node, action, .. } => {
                    check_node(*node)?;
                    let bad = matches!(
                        action,
                        ByzantineAction::Withhold { blocks: 0 }
                            | ByzantineAction::GarbagePayload { bytes: 0 }
                    );
                    if bad {
                        return Err(FaultPlanError::BadByzantineParam { node: *node });
                    }
                }
            }
        }
        if let Some(r) = &self.roles {
            if !r.malicious_fraction.is_finite() || !(0.0..=1.0).contains(&r.malicious_fraction) {
                return Err(FaultPlanError::BadProbability {
                    prob: r.malicious_fraction,
                });
            }
        }
        for windows in [
            &mut loss_windows,
            &mut latency_windows,
            &mut partition_windows,
        ] {
            windows.sort();
            for pair in windows.windows(2) {
                if pair[1].0 < pair[0].1 {
                    return Err(FaultPlanError::OverlappingWindows {
                        first_until: pair[0].1,
                        second_from: pair[1].0,
                    });
                }
            }
        }
        // Per-node crash/restart events must alternate, starting crashed.
        for v in 0..nodes {
            let mut marks: Vec<(SimTime, bool)> = self
                .events
                .iter()
                .filter_map(|ev| match ev {
                    FaultEvent::Crash { node, at } if node.0 == v => Some((*at, true)),
                    FaultEvent::Restart { node, at } if node.0 == v => Some((*at, false)),
                    _ => None,
                })
                .collect();
            marks.sort();
            let mut expect_crash = true;
            for &(at, is_crash) in &marks {
                if is_crash != expect_crash {
                    return Err(FaultPlanError::ChurnOutOfOrder {
                        node: NodeId(v),
                        at,
                    });
                }
                expect_crash = !expect_crash;
            }
        }
        Ok(())
    }

    fn check_window(from: SimTime, until: SimTime) -> Result<(), FaultPlanError> {
        if from >= until {
            Err(FaultPlanError::EmptyWindow { from, until })
        } else {
            Ok(())
        }
    }
}

/// Why a [`FaultPlan`] failed validation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultPlanError {
    /// An event names a node outside `0..nodes`.
    NodeOutOfRange {
        /// The offending node.
        node: NodeId,
        /// Network size.
        nodes: usize,
    },
    /// A partition cut would be empty or the whole network.
    DegenerateCut {
        /// Size of the cut side.
        side: usize,
        /// Network size.
        nodes: usize,
    },
    /// A loss probability outside `[0, 1]`.
    BadProbability {
        /// The offending probability.
        prob: f64,
    },
    /// A latency factor below 1 (or non-finite).
    BadFactor {
        /// The offending factor.
        factor: f64,
    },
    /// A window with `from >= until`.
    EmptyWindow {
        /// Window start.
        from: SimTime,
        /// Window end.
        until: SimTime,
    },
    /// Two windows of the same kind overlap.
    OverlappingWindows {
        /// End of the earlier window.
        first_until: SimTime,
        /// Start of the later window.
        second_from: SimTime,
    },
    /// A node restarts while up, or crashes while already down.
    ChurnOutOfOrder {
        /// The offending node.
        node: NodeId,
        /// When the out-of-order event fires.
        at: SimTime,
    },
    /// A Byzantine action with a zero-sized parameter (empty private fork
    /// or empty garbage payload).
    BadByzantineParam {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::NodeOutOfRange { node, nodes } => {
                write!(f, "{node} out of range for a {nodes}-node network")
            }
            FaultPlanError::DegenerateCut { side, nodes } => {
                write!(f, "partition cut of {side} nodes in a {nodes}-node network")
            }
            FaultPlanError::BadProbability { prob } => {
                write!(f, "loss probability {prob} outside [0, 1]")
            }
            FaultPlanError::BadFactor { factor } => {
                write!(f, "latency factor {factor} below 1")
            }
            FaultPlanError::EmptyWindow { from, until } => {
                write!(f, "empty fault window [{from}, {until})")
            }
            FaultPlanError::OverlappingWindows {
                first_until,
                second_from,
            } => {
                write!(
                    f,
                    "fault window starting {second_from} overlaps one ending {first_until}"
                )
            }
            FaultPlanError::ChurnOutOfOrder { node, at } => {
                write!(f, "crash/restart out of order for {node} at {at}")
            }
            FaultPlanError::BadByzantineParam { node } => {
                write!(f, "byzantine action for {node} has a zero parameter")
            }
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A single state change derived from a [`FaultEvent`]: window events
/// expand into a start and an end action.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Take a node down.
    Crash(NodeId),
    /// Bring a node back up.
    Restart(NodeId),
    /// Impose a partition cut.
    PartitionStart(Vec<NodeId>),
    /// Lift the partition.
    PartitionEnd,
    /// Start dropping messages with this probability.
    LossStart(f64),
    /// Stop dropping messages.
    LossEnd,
    /// Start multiplying delays by this factor.
    LatencyStart(f64),
    /// Return delays to nominal.
    LatencyEnd,
    /// A node performs (or arms) a Byzantine misbehavior. No substrate
    /// effect: the protocol layer interprets it.
    Byzantine(NodeId, ByzantineAction),
}

impl FaultAction {
    /// Applies the state change to the simulation substrate. The caller
    /// remains responsible for protocol-level consequences (skipping dead
    /// miners, scheduling repair, …).
    pub fn apply(&self, topo: &mut Topology, transport: &mut Transport) {
        match self {
            FaultAction::Crash(v) => topo.set_active(*v, false),
            FaultAction::Restart(v) => topo.set_active(*v, true),
            FaultAction::PartitionStart(cut) => topo.set_partition(Some(cut)),
            FaultAction::PartitionEnd => topo.set_partition(None),
            FaultAction::LossStart(p) => transport.set_loss_prob(*p),
            FaultAction::LossEnd => transport.set_loss_prob(0.0),
            FaultAction::LatencyStart(f) => transport.set_latency_factor(*f),
            FaultAction::LatencyEnd => transport.set_latency_factor(1.0),
            FaultAction::Byzantine(..) => {}
        }
    }
}

/// Linearized fault timeline the event loop consults.
///
/// Construction sorts all actions by fire time (stable: simultaneous
/// actions fire in plan order, with window-ends before window-starts at
/// the same instant so back-to-back windows hand over cleanly).
#[derive(Debug, Clone)]
pub struct FaultInjector {
    timeline: Vec<(SimTime, u8, FaultAction)>,
    next: usize,
    applied: u64,
}

impl FaultInjector {
    /// Builds the timeline from a plan.
    pub fn new(plan: &FaultPlan) -> Self {
        let mut timeline: Vec<(SimTime, u8, FaultAction)> = Vec::new();
        for ev in &plan.events {
            match ev {
                FaultEvent::Crash { node, at } => {
                    timeline.push((*at, 1, FaultAction::Crash(*node)));
                }
                FaultEvent::Restart { node, at } => {
                    timeline.push((*at, 0, FaultAction::Restart(*node)));
                }
                FaultEvent::Partition { cut, from, until } => {
                    timeline.push((*from, 1, FaultAction::PartitionStart(cut.clone())));
                    timeline.push((*until, 0, FaultAction::PartitionEnd));
                }
                FaultEvent::LinkLoss { prob, from, until } => {
                    timeline.push((*from, 1, FaultAction::LossStart(*prob)));
                    timeline.push((*until, 0, FaultAction::LossEnd));
                }
                FaultEvent::LatencySpike {
                    factor,
                    from,
                    until,
                } => {
                    timeline.push((*from, 1, FaultAction::LatencyStart(*factor)));
                    timeline.push((*until, 0, FaultAction::LatencyEnd));
                }
                FaultEvent::Byzantine { node, action, at } => {
                    timeline.push((*at, 1, FaultAction::Byzantine(*node, *action)));
                }
            }
        }
        timeline.sort_by_key(|a| (a.0, a.1));
        FaultInjector {
            timeline,
            next: 0,
            applied: 0,
        }
    }

    /// When the next pending action fires, if any.
    pub fn next_due(&self) -> Option<SimTime> {
        self.timeline.get(self.next).map(|&(t, _, _)| t)
    }

    /// Removes and returns every action due at or before `now`, in firing
    /// order. The caller applies them (and counts them as injected).
    ///
    /// Each drained action also lands in the telemetry trace as a
    /// `fault.injected` event stamped with its *scheduled* time, so the
    /// fault timeline correlates with the retries and repairs it causes.
    pub fn drain_due(&mut self, now: SimTime) -> Vec<FaultAction> {
        let mut due = Vec::new();
        while let Some(&(t, _, ref action)) = self.timeline.get(self.next) {
            if t > now {
                break;
            }
            telemetry::counter_add("fault.injected", 1);
            match action {
                FaultAction::Crash(node) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "crash",
                        node = node.0
                    );
                }
                FaultAction::Restart(node) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "restart",
                        node = node.0
                    );
                }
                FaultAction::PartitionStart(cut) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "partition_start",
                        nodes = cut.len()
                    );
                }
                FaultAction::PartitionEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "partition_end");
                }
                FaultAction::LossStart(prob) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "loss_start",
                        prob = *prob
                    );
                }
                FaultAction::LossEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "loss_end");
                }
                FaultAction::LatencyStart(factor) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = "latency_start",
                        factor = *factor
                    );
                }
                FaultAction::LatencyEnd => {
                    trace_event!("fault.injected", t.as_millis(), kind = "latency_end");
                }
                FaultAction::Byzantine(node, action) => {
                    trace_event!(
                        "fault.injected",
                        t.as_millis(),
                        kind = action.kind(),
                        node = node.0
                    );
                }
            }
            due.push(action.clone());
            self.next += 1;
        }
        self.applied += due.len() as u64;
        due
    }

    /// Total actions drained so far.
    pub fn applied(&self) -> u64 {
        self.applied
    }

    /// Whether every scheduled action has been drained.
    pub fn exhausted(&self) -> bool {
        self.next >= self.timeline.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Point;
    use crate::transport::TransportConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn injector_fires_in_time_order() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Restart {
                node: NodeId(0),
                at: secs(20),
            },
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.5,
                from: secs(5),
                until: secs(15),
            },
        ]);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_due(), Some(secs(5)));
        assert_eq!(inj.drain_due(secs(4)), vec![]);
        assert_eq!(
            inj.drain_due(secs(10)),
            vec![FaultAction::LossStart(0.5), FaultAction::Crash(NodeId(0)),]
        );
        assert_eq!(
            inj.drain_due(secs(60)),
            vec![FaultAction::LossEnd, FaultAction::Restart(NodeId(0)),]
        );
        assert!(inj.exhausted());
        assert_eq!(inj.applied(), 4);
    }

    #[test]
    fn window_end_precedes_start_at_same_instant() {
        // Back-to-back loss windows hand over without a gap or an
        // end-clobbers-start inversion.
        let plan = FaultPlan::new(vec![
            FaultEvent::LinkLoss {
                prob: 0.2,
                from: secs(0),
                until: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.8,
                from: secs(10),
                until: secs(20),
            },
        ]);
        assert!(plan.validate(4).is_ok());
        let mut inj = FaultInjector::new(&plan);
        inj.drain_due(secs(0));
        let at_ten = inj.drain_due(secs(10));
        assert_eq!(
            at_ten,
            vec![FaultAction::LossEnd, FaultAction::LossStart(0.8)]
        );
    }

    #[test]
    fn actions_mutate_topology_and_transport() {
        let mut topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        FaultAction::Crash(NodeId(2)).apply(&mut topo, &mut tr);
        assert!(!topo.is_active(NodeId(2)));
        FaultAction::PartitionStart(vec![NodeId(0)]).apply(&mut topo, &mut tr);
        assert!(!topo.reachable(NodeId(0), NodeId(1)));
        FaultAction::LossStart(0.25).apply(&mut topo, &mut tr);
        assert_eq!(tr.loss_prob(), 0.25);
        FaultAction::LatencyStart(2.0).apply(&mut topo, &mut tr);
        assert_eq!(tr.latency_factor(), 2.0);
        FaultAction::Restart(NodeId(2)).apply(&mut topo, &mut tr);
        FaultAction::PartitionEnd.apply(&mut topo, &mut tr);
        FaultAction::LossEnd.apply(&mut topo, &mut tr);
        FaultAction::LatencyEnd.apply(&mut topo, &mut tr);
        assert!(topo.is_connected());
        assert_eq!(tr.loss_prob(), 0.0);
        assert_eq!(tr.latency_factor(), 1.0);
    }

    #[test]
    fn validate_rejects_bad_plans() {
        let n = 4;
        let cases = vec![
            FaultEvent::Crash {
                node: NodeId(9),
                at: secs(1),
            },
            FaultEvent::Partition {
                cut: vec![],
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::Partition {
                cut: (0..n).map(NodeId).collect(),
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LinkLoss {
                prob: 1.5,
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LatencySpike {
                factor: 0.5,
                from: secs(0),
                until: secs(1),
            },
            FaultEvent::LinkLoss {
                prob: 0.5,
                from: secs(5),
                until: secs(5),
            },
            FaultEvent::Restart {
                node: NodeId(1),
                at: secs(1),
            },
        ];
        for ev in cases {
            let plan = FaultPlan::new(vec![ev.clone()]);
            assert!(plan.validate(n).is_err(), "accepted {ev:?}");
        }
        let overlapping = FaultPlan::new(vec![
            FaultEvent::LinkLoss {
                prob: 0.1,
                from: secs(0),
                until: secs(10),
            },
            FaultEvent::LinkLoss {
                prob: 0.2,
                from: secs(5),
                until: secs(15),
            },
        ]);
        assert_eq!(
            overlapping.validate(n),
            Err(FaultPlanError::OverlappingWindows {
                first_until: secs(10),
                second_from: secs(5),
            })
        );
        let double_crash = FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(1),
            },
            FaultEvent::Crash {
                node: NodeId(0),
                at: secs(2),
            },
        ]);
        assert!(matches!(
            double_crash.validate(n),
            Err(FaultPlanError::ChurnOutOfOrder { .. })
        ));
    }

    #[test]
    fn validate_accepts_a_full_mixed_plan() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Crash {
                node: NodeId(3),
                at: secs(30),
            },
            FaultEvent::Restart {
                node: NodeId(3),
                at: secs(90),
            },
            FaultEvent::Crash {
                node: NodeId(3),
                at: secs(200),
            },
            FaultEvent::Partition {
                cut: vec![NodeId(0), NodeId(1)],
                from: secs(60),
                until: secs(360),
            },
            FaultEvent::LinkLoss {
                prob: 0.05,
                from: secs(0),
                until: secs(600),
            },
            FaultEvent::LatencySpike {
                factor: 3.0,
                from: secs(100),
                until: secs(160),
            },
        ]);
        assert!(plan.validate(8).is_ok());
    }

    #[test]
    fn random_churn_is_deterministic_and_valid() {
        let cfg = ChurnConfig {
            crashes_per_min: 2.0,
            mean_downtime_secs: 120.0,
            max_concurrent_down: 3,
            horizon: SimTime::from_secs(1800),
        };
        let gen_plan = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultPlan::random_churn(10, cfg, &mut rng)
        };
        let a = gen_plan(42);
        let b = gen_plan(42);
        assert_eq!(a, b, "same seed must give the same plan");
        assert!(!a.is_empty(), "2 crashes/min over 30 min should fire");
        assert!(a.validate(10).is_ok());
        let c = gen_plan(43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_churn_respects_concurrency_cap() {
        let cfg = ChurnConfig {
            crashes_per_min: 60.0, // aggressive: one per second on average
            mean_downtime_secs: 600.0,
            max_concurrent_down: 2,
            horizon: SimTime::from_secs(600),
        };
        let mut rng = StdRng::seed_from_u64(7);
        let plan = FaultPlan::random_churn(6, cfg, &mut rng);
        // Replay the schedule counting concurrent downtime.
        let mut inj = FaultInjector::new(&plan);
        let mut down = 0usize;
        let mut max_down = 0usize;
        while let Some(t) = inj.next_due() {
            for a in inj.drain_due(t) {
                match a {
                    FaultAction::Crash(_) => down += 1,
                    FaultAction::Restart(_) => down -= 1,
                    _ => unreachable!("churn plans only crash and restart"),
                }
            }
            max_down = max_down.max(down);
        }
        assert!(max_down <= 2, "cap violated: {max_down} down at once");
    }

    #[test]
    fn byzantine_events_linearize_and_apply_as_noops() {
        let plan = FaultPlan::new(vec![
            FaultEvent::Byzantine {
                node: NodeId(2),
                action: ByzantineAction::Equivocate,
                at: secs(30),
            },
            FaultEvent::Byzantine {
                node: NodeId(1),
                action: ByzantineAction::GarbagePayload { bytes: 512 },
                at: secs(10),
            },
        ]);
        assert!(plan.validate(4).is_ok());
        assert!(plan.has_byzantine());
        assert_eq!(plan.byzantine_nodes(), vec![NodeId(1), NodeId(2)]);
        let mut inj = FaultInjector::new(&plan);
        assert_eq!(inj.next_due(), Some(secs(10)));
        let actions = inj.drain_due(secs(60));
        assert_eq!(
            actions,
            vec![
                FaultAction::Byzantine(NodeId(1), ByzantineAction::GarbagePayload { bytes: 512 }),
                FaultAction::Byzantine(NodeId(2), ByzantineAction::Equivocate),
            ]
        );
        // Substrate untouched by Byzantine actions.
        let mut topo = line(4);
        let mut tr = Transport::new(TransportConfig::default());
        for a in &actions {
            a.apply(&mut topo, &mut tr);
        }
        assert!(topo.is_connected());
        assert_eq!(tr.loss_prob(), 0.0);
    }

    #[test]
    fn validate_rejects_zero_parameter_byzantine_actions() {
        for action in [
            ByzantineAction::Withhold { blocks: 0 },
            ByzantineAction::GarbagePayload { bytes: 0 },
        ] {
            let plan = FaultPlan::new(vec![FaultEvent::Byzantine {
                node: NodeId(0),
                action,
                at: secs(1),
            }]);
            assert_eq!(
                plan.validate(4),
                Err(FaultPlanError::BadByzantineParam { node: NodeId(0) })
            );
        }
        let out_of_range = FaultPlan::new(vec![FaultEvent::Byzantine {
            node: NodeId(7),
            action: ByzantineAction::ForgeBlock,
            at: secs(1),
        }]);
        assert!(matches!(
            out_of_range.validate(4),
            Err(FaultPlanError::NodeOutOfRange { .. })
        ));
    }

    #[test]
    fn roles_make_a_plan_nonempty_and_validate_fraction() {
        let plan = FaultPlan::none().with_roles(RoleAssignment {
            seed: 9,
            malicious_fraction: 0.25,
        });
        assert!(!plan.is_empty());
        assert!(plan.validate(8).is_ok());
        let bad = FaultPlan::none().with_roles(RoleAssignment {
            seed: 9,
            malicious_fraction: 1.5,
        });
        assert!(matches!(
            bad.validate(8),
            Err(FaultPlanError::BadProbability { .. })
        ));
    }

    #[test]
    fn random_byzantine_is_deterministic_and_valid() {
        let cfg = ByzantineSweepConfig {
            adversary_fraction: 0.2,
            actions_per_adversary: 3,
            horizon: SimTime::from_secs(1800),
        };
        let gen_plan = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            FaultPlan::random_byzantine(10, cfg, &mut rng)
        };
        let a = gen_plan(5);
        assert_eq!(a, gen_plan(5), "same seed must give the same plan");
        assert_ne!(a, gen_plan(6), "different seeds should differ");
        assert!(a.validate(10).is_ok());
        assert!(a.has_byzantine());
        assert!(a.byzantine_nodes().len() <= 2, "20% of 10 nodes");
        let withholds = a
            .events
            .iter()
            .filter(|ev| {
                matches!(
                    ev,
                    FaultEvent::Byzantine {
                        action: ByzantineAction::Withhold { .. },
                        ..
                    }
                )
            })
            .count();
        assert!(withholds <= 1, "at most one private fork per plan");
    }
}
