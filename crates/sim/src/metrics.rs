//! Evaluation metrics, re-exported from `edgechain-telemetry`.
//!
//! These primitives (`gini`, `RunningStats`, `SampleSet`) lived here
//! originally; they moved to the telemetry crate so its metrics registry —
//! which sits *below* the simulator in the dependency graph — can build on
//! them without a cycle. This module keeps every historical
//! `edgechain_sim::metrics::*` path working.

pub use edgechain_telemetry::metrics::{gini, gini_counts, RunningStats, SampleSet};
