//! Property-based tests for the crypto primitives.

use edgechain_crypto::{
    leaf_hash, sha256, sha256_fixed64, sha256_many, sha256_pair64, KeyPair, MerkleTree, Sha256,
    SharedPrefix32, U256,
};
use proptest::prelude::*;

fn arb_u256() -> impl Strategy<Value = U256> {
    prop::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
}

/// A nonzero U256 used as modulus/divisor.
fn arb_nonzero_u256() -> impl Strategy<Value = U256> {
    arb_u256().prop_map(|v| if v.is_zero() { U256::ONE } else { v })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn add_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b), b.wrapping_add(&a));
    }

    #[test]
    fn add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(
            a.wrapping_add(&b).wrapping_add(&c),
            a.wrapping_add(&b.wrapping_add(&c))
        );
    }

    #[test]
    fn sub_inverts_add(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn mul_commutes(a in arb_u256(), b in arb_u256()) {
        prop_assert_eq!(a.wrapping_mul(&b), b.wrapping_mul(&a));
        let (lo1, hi1) = a.widening_mul(&b);
        let (lo2, hi2) = b.widening_mul(&a);
        prop_assert_eq!(lo1, lo2);
        prop_assert_eq!(hi1, hi2);
    }

    #[test]
    fn mul_distributes_over_add(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
        prop_assert_eq!(
            a.wrapping_mul(&b.wrapping_add(&c)),
            a.wrapping_mul(&b).wrapping_add(&a.wrapping_mul(&c))
        );
    }

    #[test]
    fn div_rem_reconstructs(a in arb_u256(), d in arb_nonzero_u256()) {
        let (q, r) = a.div_rem(&d);
        prop_assert!(r < d);
        // a == q*d + r (all in 256-bit space; q*d cannot overflow since q <= a/d)
        let (qd_lo, qd_hi) = q.widening_mul(&d);
        prop_assert!(qd_hi.is_zero());
        prop_assert_eq!(qd_lo.wrapping_add(&r), a);
    }

    #[test]
    fn rem_is_idempotent(a in arb_u256(), m in arb_nonzero_u256()) {
        let r = a.rem(&m);
        prop_assert_eq!(r.rem(&m), r);
    }

    #[test]
    fn mul_mod_matches_naive_for_small(a in 0u64..1 << 32, b in 0u64..1 << 32, m in 1u64..1 << 32) {
        let got = U256::from_u64(a).mul_mod(&U256::from_u64(b), &U256::from_u64(m));
        let expect = ((a as u128 * b as u128) % m as u128) as u64;
        prop_assert_eq!(got, U256::from_u64(expect));
    }

    #[test]
    fn shl_shr_roundtrip(a in arb_u256(), n in 0u32..256) {
        // Mask off the top n bits first so the shift is lossless.
        let masked = a.shl(n).shr(n);
        prop_assert_eq!(masked.shl(n).shr(n), masked);
    }

    #[test]
    fn be_bytes_roundtrip(a in arb_u256()) {
        prop_assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn hex_roundtrip(a in arb_u256()) {
        let s = format!("{:x}", a);
        prop_assert_eq!(U256::from_hex(&s).unwrap(), a);
    }

    #[test]
    fn sha_incremental_equals_oneshot(data in prop::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        let at = if data.is_empty() { 0 } else { split.index(data.len()) };
        let mut h = Sha256::new();
        h.update(&data[..at]);
        h.update(&data[at..]);
        prop_assert_eq!(h.finalize(), sha256(&data));
    }

    #[test]
    fn sha_distinct_inputs_distinct_digests(a in prop::collection::vec(any::<u8>(), 0..64), b in prop::collection::vec(any::<u8>(), 0..64)) {
        if a != b {
            prop_assert_ne!(sha256(&a), sha256(&b));
        }
    }

    #[test]
    fn sha_midstate_resumes_anywhere(data in prop::collection::vec(any::<u8>(), 0..512), split in any::<prop::sample::Index>()) {
        // Round the split down to a block boundary: midstates exist only
        // there, and resuming from one must equal the one-shot digest.
        let at = if data.is_empty() { 0 } else { split.index(data.len()) } / 64 * 64;
        let mut h = Sha256::new();
        h.update(&data[..at]);
        let m = h.midstate().expect("block-aligned prefix has a midstate");
        prop_assert_eq!(m.bytes_absorbed(), at as u64);
        let mut resumed = Sha256::from_midstate(m);
        resumed.update(&data[at..]);
        prop_assert_eq!(resumed.finalize(), sha256(&data));
    }

    #[test]
    fn sha_fixed64_matches_oneshot(bytes in prop::collection::vec(any::<u8>(), 64usize)) {
        let full: [u8; 64] = bytes.as_slice().try_into().unwrap();
        let a: [u8; 32] = full[..32].try_into().unwrap();
        let b: [u8; 32] = full[32..].try_into().unwrap();
        prop_assert_eq!(sha256_fixed64(&full), sha256(full));
        prop_assert_eq!(sha256_pair64(&a, &b), sha256(full));
        prop_assert_eq!(SharedPrefix32::new(&a).pair(&b), sha256(full));
    }

    #[test]
    fn sha_many_matches_map(inputs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..80), 0..40)) {
        let batched = sha256_many(&inputs);
        let serial: Vec<_> = inputs.iter().map(sha256).collect();
        prop_assert_eq!(batched, serial);
    }

    #[test]
    fn merkle_leaf_hash_identity(leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 0..24)) {
        let direct = MerkleTree::from_leaves(&leaves);
        let prehashed = MerkleTree::from_leaf_hashes(
            leaves.iter().map(|l| leaf_hash(l)).collect()
        );
        prop_assert_eq!(direct.root(), prehashed.root());
    }

    #[test]
    fn merkle_proofs_verify(leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..16), 1..24), pick in any::<prop::sample::Index>()) {
        let tree = MerkleTree::from_leaves(&leaves);
        let i = pick.index(leaves.len());
        let proof = tree.proof(i).unwrap();
        prop_assert!(proof.verify(&leaves[i], &tree.root()));
    }

    #[test]
    fn merkle_root_is_injective_on_leaf_edits(
        leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..8), 2..12),
        pick in any::<prop::sample::Index>()
    ) {
        let i = pick.index(leaves.len());
        let mut edited = leaves.clone();
        edited[i].push(0xAB);
        let t1 = MerkleTree::from_leaves(&leaves);
        let t2 = MerkleTree::from_leaves(&edited);
        prop_assert_ne!(t1.root(), t2.root());
    }
}

proptest! {
    // Signing does modular exponentiation; keep the case count small.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn signatures_verify_and_bind(seed in any::<u64>(), msg in prop::collection::vec(any::<u8>(), 0..64)) {
        let kp = KeyPair::from_seed(seed);
        let sig = kp.sign(&msg);
        prop_assert!(kp.public_key().verify(&msg, &sig));
        let mut other = msg.clone();
        other.push(1);
        prop_assert!(!kp.public_key().verify(&other, &sig));
    }
}
