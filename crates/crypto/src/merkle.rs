//! Binary Merkle trees with inclusion proofs.
//!
//! Blocks commit to their metadata items through a Merkle root so that a
//! single metadata item can be proven to belong to a block without shipping
//! the whole block. Leaves are hashed with a `0x00` domain-separation prefix
//! and interior nodes with `0x01`, preventing second-preimage splices
//! between the two levels. Odd nodes are promoted unchanged (Bitcoin-style
//! duplication is deliberately avoided to rule out CVE-2012-2459-type
//! ambiguity).
//!
//! # Examples
//!
//! ```
//! use edgechain_crypto::MerkleTree;
//!
//! let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b", b"c"]);
//! let proof = tree.proof(2).unwrap();
//! assert!(proof.verify(b"c", &tree.root()));
//! assert!(!proof.verify(b"x", &tree.root()));
//! ```

use crate::sha256::{Digest, Sha256};
use serde::{Deserialize, Serialize};

/// Hashes one leaf with the tree's `0x00` domain-separation prefix.
///
/// Public so callers can hash leaves once, cache the digests, and later
/// rebuild the tree with [`MerkleTree::from_leaf_hashes`] — the identity
/// `from_leaves(L) == from_leaf_hashes(L.map(leaf_hash))` is pinned by
/// tests.
pub fn leaf_hash(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update([0x00u8]);
    h.update(data);
    h.finalize()
}

fn hash_leaf(data: &[u8]) -> Digest {
    leaf_hash(data)
}

fn hash_node(left: &Digest, right: &Digest) -> Digest {
    let mut h = Sha256::new();
    h.update([0x01u8]);
    h.update(left.as_bytes());
    h.update(right.as_bytes());
    h.finalize()
}

/// A fully materialized Merkle tree over a list of byte-string leaves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleTree {
    /// `levels[0]` is the leaf level; the last level holds the single root.
    levels: Vec<Vec<Digest>>,
}

impl MerkleTree {
    /// Builds a tree from leaf byte strings. An empty iterator produces the
    /// canonical empty tree whose root is `SHA-256` of the empty string.
    pub fn from_leaves<I, B>(leaves: I) -> Self
    where
        I: IntoIterator<Item = B>,
        B: AsRef<[u8]>,
    {
        let leaf_hashes: Vec<Digest> = leaves.into_iter().map(|l| hash_leaf(l.as_ref())).collect();
        Self::from_leaf_hashes(leaf_hashes)
    }

    /// Builds a tree from already-hashed leaves.
    pub fn from_leaf_hashes(leaf_hashes: Vec<Digest>) -> Self {
        if leaf_hashes.is_empty() {
            return MerkleTree { levels: Vec::new() };
        }
        let mut levels = vec![leaf_hashes];
        while levels.last().unwrap().len() > 1 {
            let prev = levels.last().unwrap();
            let mut next = Vec::with_capacity(prev.len().div_ceil(2));
            for pair in prev.chunks(2) {
                if pair.len() == 2 {
                    next.push(hash_node(&pair[0], &pair[1]));
                } else {
                    // Odd node: promote unchanged.
                    next.push(pair[0]);
                }
            }
            levels.push(next);
        }
        MerkleTree { levels }
    }

    /// The Merkle root. For an empty tree this is `sha256("")`.
    pub fn root(&self) -> Digest {
        match self.levels.last() {
            Some(level) => level[0],
            None => crate::sha256::sha256(b""),
        }
    }

    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.levels.first().map_or(0, |l| l.len())
    }

    /// Whether the tree has no leaves.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produces an inclusion proof for the leaf at `index`, or `None` if the
    /// index is out of range.
    pub fn proof(&self, index: usize) -> Option<MerkleProof> {
        if index >= self.len() {
            return None;
        }
        let mut path = Vec::new();
        let mut idx = index;
        for level in &self.levels[..self.levels.len() - 1] {
            let sibling = idx ^ 1;
            if sibling < level.len() {
                let side = if idx.is_multiple_of(2) {
                    Side::Right
                } else {
                    Side::Left
                };
                path.push((side, level[sibling]));
            }
            idx /= 2;
        }
        Some(MerkleProof { index, path })
    }
}

/// Which side a sibling hash sits on when recomputing the root.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Side {
    /// Sibling is the left child; the running hash is the right child.
    Left,
    /// Sibling is the right child; the running hash is the left child.
    Right,
}

/// An inclusion proof binding one leaf to a [`MerkleTree`] root.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MerkleProof {
    index: usize,
    path: Vec<(Side, Digest)>,
}

impl MerkleProof {
    /// The index of the proven leaf.
    pub fn leaf_index(&self) -> usize {
        self.index
    }

    /// The number of sibling hashes in the proof.
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// Verifies that `leaf_data` at this proof's index hashes up to `root`.
    pub fn verify(&self, leaf_data: &[u8], root: &Digest) -> bool {
        let mut acc = hash_leaf(leaf_data);
        for (side, sibling) in &self.path {
            acc = match side {
                Side::Left => hash_node(sibling, &acc),
                Side::Right => hash_node(&acc, sibling),
            };
        }
        &acc == root
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_leaf_root_is_leaf_hash() {
        let tree = MerkleTree::from_leaves([b"only"]);
        assert_eq!(tree.root(), hash_leaf(b"only"));
        assert_eq!(tree.len(), 1);
    }

    #[test]
    fn empty_tree() {
        let tree = MerkleTree::from_leaves(Vec::<&[u8]>::new());
        assert!(tree.is_empty());
        assert_eq!(tree.root(), crate::sha256::sha256(b""));
        assert!(tree.proof(0).is_none());
    }

    #[test]
    fn two_leaves() {
        let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let expect = hash_node(&hash_leaf(b"a"), &hash_leaf(b"b"));
        assert_eq!(tree.root(), expect);
    }

    #[test]
    fn proofs_verify_all_sizes() {
        for n in 1..=17usize {
            let leaves: Vec<Vec<u8>> = (0..n).map(|i| format!("leaf-{i}").into_bytes()).collect();
            let tree = MerkleTree::from_leaves(&leaves);
            for (i, leaf) in leaves.iter().enumerate() {
                let proof = tree.proof(i).unwrap();
                assert!(proof.verify(leaf, &tree.root()), "n={n} i={i}");
                assert!(!proof.verify(b"bogus", &tree.root()));
            }
            assert!(tree.proof(n).is_none());
        }
    }

    #[test]
    fn wrong_root_rejected() {
        let tree = MerkleTree::from_leaves([b"a".as_slice(), b"b", b"c"]);
        let other = MerkleTree::from_leaves([b"a".as_slice(), b"b", b"d"]);
        let proof = tree.proof(0).unwrap();
        assert!(!proof.verify(b"a", &other.root()));
    }

    #[test]
    fn order_matters() {
        let t1 = MerkleTree::from_leaves([b"a".as_slice(), b"b"]);
        let t2 = MerkleTree::from_leaves([b"b".as_slice(), b"a"]);
        assert_ne!(t1.root(), t2.root());
    }

    #[test]
    fn leaf_interior_domain_separation() {
        // A leaf equal to the concatenation of two interior hashes must not
        // collide with the parent of those hashes.
        let a = hash_leaf(b"a");
        let b = hash_leaf(b"b");
        let parent = hash_node(&a, &b);
        let mut concat = Vec::new();
        concat.extend_from_slice(a.as_bytes());
        concat.extend_from_slice(b.as_bytes());
        assert_ne!(hash_leaf(&concat), parent);
    }
}
