//! Fixed-width 256-bit unsigned integer arithmetic.
//!
//! [`U256`] backs the signature scheme in [`crate::sig`] and the wide
//! arithmetic needed by the Proof-of-Stake target computations. It is a
//! little-endian array of four `u64` limbs with schoolbook multiplication
//! and Knuth Algorithm D division. All operations are constant-size but
//! **not** constant-time; see the crate-level security note.
//!
//! # Examples
//!
//! ```
//! use edgechain_crypto::U256;
//!
//! let a = U256::from_u64(1 << 40);
//! let b = a.wrapping_mul(&a);
//! assert_eq!(b, U256::from_u64(1).shl(80));
//! ```

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A 256-bit unsigned integer stored as four little-endian 64-bit limbs.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct U256 {
    limbs: [u64; 4],
}

impl U256 {
    /// The additive identity.
    pub const ZERO: U256 = U256 { limbs: [0; 4] };
    /// The multiplicative identity.
    pub const ONE: U256 = U256 {
        limbs: [1, 0, 0, 0],
    };
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256 {
        limbs: [u64::MAX; 4],
    };

    /// Creates a value from a single 64-bit integer.
    pub const fn from_u64(v: u64) -> Self {
        U256 {
            limbs: [v, 0, 0, 0],
        }
    }

    /// Creates a value from a 128-bit integer.
    pub const fn from_u128(v: u128) -> Self {
        U256 {
            limbs: [v as u64, (v >> 64) as u64, 0, 0],
        }
    }

    /// Creates a value from little-endian limbs.
    pub const fn from_limbs(limbs: [u64; 4]) -> Self {
        U256 { limbs }
    }

    /// Returns the little-endian limbs.
    pub const fn limbs(&self) -> [u64; 4] {
        self.limbs
    }

    /// Parses a big-endian hexadecimal string (no `0x` prefix, up to 64 digits).
    ///
    /// # Errors
    ///
    /// Returns [`ParseU256Error`] when the string is empty, longer than 64
    /// characters, or contains a non-hex character.
    pub fn from_hex(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() || s.len() > 64 {
            return Err(ParseU256Error { _priv: () });
        }
        let mut out = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseU256Error { _priv: () })? as u64;
            out = out.shl(4);
            out.limbs[0] |= d;
        }
        Ok(out)
    }

    /// Interprets 32 big-endian bytes as an integer.
    pub fn from_be_bytes(bytes: &[u8; 32]) -> Self {
        let mut limbs = [0u64; 4];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let off = (3 - i) * 8;
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[off..off + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256 { limbs }
    }

    /// Serializes to 32 big-endian bytes.
    pub fn to_be_bytes(&self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for (i, limb) in self.limbs.iter().enumerate() {
            let off = (3 - i) * 8;
            out[off..off + 8].copy_from_slice(&limb.to_be_bytes());
        }
        out
    }

    /// Returns `true` when the value is zero.
    pub fn is_zero(&self) -> bool {
        self.limbs == [0; 4]
    }

    /// Returns the low 64 bits.
    pub fn low_u64(&self) -> u64 {
        self.limbs[0]
    }

    /// Returns the low 128 bits.
    pub fn low_u128(&self) -> u128 {
        (self.limbs[0] as u128) | ((self.limbs[1] as u128) << 64)
    }

    /// Number of significant bits (zero for the value zero).
    pub fn bits(&self) -> u32 {
        for i in (0..4).rev() {
            if self.limbs[i] != 0 {
                return (i as u32) * 64 + (64 - self.limbs[i].leading_zeros());
            }
        }
        0
    }

    /// Returns the bit at position `i` (little-endian indexing).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 256`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < 256, "bit index out of range");
        (self.limbs[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Addition returning the sum and the carry-out flag.
    pub fn overflowing_add(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut carry = 0u64;
        #[allow(clippy::needless_range_loop)] // i indexes three arrays
        for i in 0..4 {
            let (s1, c1) = self.limbs[i].overflowing_add(rhs.limbs[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            out[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        (U256 { limbs: out }, carry != 0)
    }

    /// Wrapping (mod `2^256`) addition.
    pub fn wrapping_add(&self, rhs: &U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Checked addition; `None` on overflow.
    pub fn checked_add(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Subtraction returning the difference and the borrow-out flag.
    pub fn overflowing_sub(&self, rhs: &U256) -> (U256, bool) {
        let mut out = [0u64; 4];
        let mut borrow = 0u64;
        #[allow(clippy::needless_range_loop)] // i indexes three arrays
        for i in 0..4 {
            let (d1, b1) = self.limbs[i].overflowing_sub(rhs.limbs[i]);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out[i] = d2;
            borrow = (b1 as u64) + (b2 as u64);
        }
        (U256 { limbs: out }, borrow != 0)
    }

    /// Wrapping (mod `2^256`) subtraction.
    pub fn wrapping_sub(&self, rhs: &U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Checked subtraction; `None` on underflow.
    pub fn checked_sub(&self, rhs: &U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Full 256×256→512-bit multiplication. Returns `(low, high)` halves.
    pub fn widening_mul(&self, rhs: &U256) -> (U256, U256) {
        let mut prod = [0u64; 8];
        for i in 0..4 {
            let mut carry: u128 = 0;
            for j in 0..4 {
                let cur =
                    prod[i + j] as u128 + (self.limbs[i] as u128) * (rhs.limbs[j] as u128) + carry;
                prod[i + j] = cur as u64;
                carry = cur >> 64;
            }
            prod[i + 4] = carry as u64;
        }
        (
            U256 {
                limbs: [prod[0], prod[1], prod[2], prod[3]],
            },
            U256 {
                limbs: [prod[4], prod[5], prod[6], prod[7]],
            },
        )
    }

    /// Wrapping (mod `2^256`) multiplication.
    pub fn wrapping_mul(&self, rhs: &U256) -> U256 {
        self.widening_mul(rhs).0
    }

    /// Logical left shift by `n` bits (zero when `n >= 256`).
    pub fn shl(&self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        for i in (limb_shift..4).rev() {
            let mut v = self.limbs[i - limb_shift] << bit_shift;
            if bit_shift > 0 && i > limb_shift {
                v |= self.limbs[i - limb_shift - 1] >> (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Logical right shift by `n` bits (zero when `n >= 256`).
    pub fn shr(&self, n: u32) -> U256 {
        if n >= 256 {
            return U256::ZERO;
        }
        let limb_shift = (n / 64) as usize;
        let bit_shift = n % 64;
        let mut out = [0u64; 4];
        #[allow(clippy::needless_range_loop)] // i indexes both arrays with offsets
        for i in 0..4 - limb_shift {
            let mut v = self.limbs[i + limb_shift] >> bit_shift;
            if bit_shift > 0 && i + limb_shift + 1 < 4 {
                v |= self.limbs[i + limb_shift + 1] << (64 - bit_shift);
            }
            out[i] = v;
        }
        U256 { limbs: out }
    }

    /// Quotient and remainder of division by `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn div_rem(&self, divisor: &U256) -> (U256, U256) {
        assert!(!divisor.is_zero(), "division by zero");
        let (q, r) = div_rem_slices(&self.limbs, &divisor.limbs);
        (
            U256 {
                limbs: q[0..4].try_into().unwrap(),
            },
            U256 {
                limbs: r[0..4].try_into().unwrap(),
            },
        )
    }

    /// `self mod m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn rem(&self, m: &U256) -> U256 {
        self.div_rem(m).1
    }

    /// Modular addition `(self + rhs) mod m`; operands must already be `< m`.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero (debug builds also assert the operand ranges).
    pub fn add_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m, "add_mod operands must be reduced");
        let (sum, carry) = self.overflowing_add(rhs);
        if carry || &sum >= m {
            sum.wrapping_sub(m)
        } else {
            sum
        }
    }

    /// Modular subtraction `(self - rhs) mod m`; operands must already be `< m`.
    pub fn sub_mod(&self, rhs: &U256, m: &U256) -> U256 {
        debug_assert!(self < m && rhs < m, "sub_mod operands must be reduced");
        let (diff, borrow) = self.overflowing_sub(rhs);
        if borrow {
            diff.wrapping_add(m)
        } else {
            diff
        }
    }

    /// Modular multiplication `(self * rhs) mod m` via a 512-bit intermediate.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mul_mod(&self, rhs: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        let (lo, hi) = self.widening_mul(rhs);
        let wide = [
            lo.limbs[0],
            lo.limbs[1],
            lo.limbs[2],
            lo.limbs[3],
            hi.limbs[0],
            hi.limbs[1],
            hi.limbs[2],
            hi.limbs[3],
        ];
        let (_, r) = div_rem_slices(&wide, &m.limbs);
        U256 {
            limbs: r[0..4].try_into().unwrap(),
        }
    }

    /// Modular exponentiation `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn pow_mod(&self, exp: &U256, m: &U256) -> U256 {
        assert!(!m.is_zero(), "modulus must be nonzero");
        if m == &U256::ONE {
            return U256::ZERO;
        }
        let mut result = U256::ONE;
        let mut base = self.rem(m);
        let nbits = exp.bits();
        for i in 0..nbits {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            if i + 1 < nbits {
                base = base.mul_mod(&base, m);
            }
        }
        result
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        for i in (0..4).rev() {
            match self.limbs[i].cmp(&other.limbs[i]) {
                Ordering::Equal => continue,
                ord => return ord,
            }
        }
        Ordering::Equal
    }
}

impl From<u64> for U256 {
    fn from(v: u64) -> Self {
        U256::from_u64(v)
    }
}

impl From<u128> for U256 {
    fn from(v: u128) -> Self {
        U256::from_u128(v)
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self)
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:016x}", self.limbs[i])?;
            } else if self.limbs[i] != 0 || i == 0 {
                write!(f, "{:x}", self.limbs[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

impl fmt::UpperHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = format!("{:x}", self);
        write!(f, "{}", s.to_uppercase())
    }
}

impl fmt::Binary for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut started = false;
        for i in (0..4).rev() {
            if started {
                write!(f, "{:064b}", self.limbs[i])?;
            } else if self.limbs[i] != 0 || i == 0 {
                write!(f, "{:b}", self.limbs[i])?;
                started = true;
            }
        }
        Ok(())
    }
}

/// Error returned when parsing a hexadecimal [`U256`] fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseU256Error {
    _priv: (),
}

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid 256-bit hexadecimal literal")
    }
}

impl std::error::Error for ParseU256Error {}

/// Multi-precision division (Knuth TAOCP vol. 2, Algorithm D) on
/// little-endian `u64` limb slices. Returns `(quotient, remainder)`, each
/// with the same length as `u`.
fn div_rem_slices(u: &[u64], v: &[u64]) -> (Vec<u64>, Vec<u64>) {
    let n = significant_len(v);
    assert!(n > 0, "division by zero");
    let m = significant_len(u);
    let mut q = vec![0u64; u.len()];
    let mut r = vec![0u64; u.len()];
    if m < n || (m == n && cmp_slices(&u[..m], &v[..n]) == Ordering::Less) {
        r[..u.len()].copy_from_slice(u);
        return (q, r);
    }
    if n == 1 {
        // Single-limb divisor: simple long division.
        let d = v[0] as u128;
        let mut rem: u128 = 0;
        for i in (0..m).rev() {
            let cur = (rem << 64) | u[i] as u128;
            q[i] = (cur / d) as u64;
            rem = cur % d;
        }
        r[0] = rem as u64;
        return (q, r);
    }

    // Normalize so the divisor's top bit is set.
    let shift = v[n - 1].leading_zeros();
    let mut vn = vec![0u64; n];
    for i in (0..n).rev() {
        let mut x = v[i] << shift;
        if shift > 0 && i > 0 {
            x |= v[i - 1] >> (64 - shift);
        }
        vn[i] = x;
    }
    let mut un = vec![0u64; m + 1];
    un[m] = if shift > 0 {
        u[m - 1] >> (64 - shift)
    } else {
        0
    };
    for i in (0..m).rev() {
        let mut x = u[i] << shift;
        if shift > 0 && i > 0 {
            x |= u[i - 1] >> (64 - shift);
        }
        un[i] = x;
    }

    let b: u128 = 1 << 64;
    for j in (0..=m - n).rev() {
        // Estimate the quotient digit.
        let top = ((un[j + n] as u128) << 64) | un[j + n - 1] as u128;
        let mut qhat = top / vn[n - 1] as u128;
        let mut rhat = top % vn[n - 1] as u128;
        while qhat >= b || qhat * vn[n - 2] as u128 > (rhat << 64) + un[j + n - 2] as u128 {
            qhat -= 1;
            rhat += vn[n - 1] as u128;
            if rhat >= b {
                break;
            }
        }
        // Multiply and subtract.
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = qhat * vn[i] as u128 + carry;
            carry = p >> 64;
            let t = un[j + i] as i128 - (p as u64) as i128 - borrow;
            un[j + i] = t as u64;
            borrow = if t < 0 { 1 } else { 0 };
        }
        let t = un[j + n] as i128 - carry as i128 - borrow;
        un[j + n] = t as u64;
        if t < 0 {
            // Rare correction step: add the divisor back.
            qhat -= 1;
            let mut carry: u128 = 0;
            for i in 0..n {
                let s = un[j + i] as u128 + vn[i] as u128 + carry;
                un[j + i] = s as u64;
                carry = s >> 64;
            }
            un[j + n] = un[j + n].wrapping_add(carry as u64);
        }
        q[j] = qhat as u64;
    }

    // Denormalize the remainder.
    for i in 0..n {
        let mut x = un[i] >> shift;
        if shift > 0 && i + 1 < n + 1 {
            x |= un[i + 1] << (64 - shift);
        }
        r[i] = x;
    }
    (q, r)
}

fn significant_len(s: &[u64]) -> usize {
    s.iter().rposition(|&x| x != 0).map_or(0, |p| p + 1)
}

fn cmp_slices(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            ord => return ord,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_roundtrip() {
        let a = U256::from_u128(0xdead_beef_dead_beef_dead_beef);
        let b = U256::from_u64(0x1234_5678);
        assert_eq!(a.wrapping_add(&b).wrapping_sub(&b), a);
    }

    #[test]
    fn overflow_flags() {
        assert!(U256::MAX.overflowing_add(&U256::ONE).1);
        assert!(U256::ZERO.overflowing_sub(&U256::ONE).1);
        assert_eq!(U256::MAX.wrapping_add(&U256::ONE), U256::ZERO);
    }

    #[test]
    fn checked_ops() {
        assert_eq!(U256::MAX.checked_add(&U256::ONE), None);
        assert_eq!(U256::ZERO.checked_sub(&U256::ONE), None);
        assert_eq!(U256::ONE.checked_add(&U256::ONE), Some(U256::from_u64(2)));
    }

    #[test]
    fn mul_matches_u128() {
        let a = U256::from_u64(0xffff_ffff);
        let b = U256::from_u64(0xffff_ffff);
        let expect = 0xffff_ffffu128 * 0xffff_ffffu128;
        assert_eq!(a.wrapping_mul(&b), U256::from_u128(expect));
    }

    #[test]
    fn widening_mul_max() {
        // (2^256 - 1)^2 = 2^512 - 2^257 + 1
        let (lo, hi) = U256::MAX.widening_mul(&U256::MAX);
        assert_eq!(lo, U256::ONE);
        assert_eq!(hi, U256::MAX.wrapping_sub(&U256::ONE));
    }

    #[test]
    fn shifts() {
        let one = U256::ONE;
        assert_eq!(one.shl(255).shr(255), one);
        assert_eq!(one.shl(256), U256::ZERO);
        assert_eq!(one.shl(64), U256::from_limbs([0, 1, 0, 0]));
        assert_eq!(U256::MAX.shr(192), U256::from_u64(u64::MAX));
    }

    #[test]
    fn div_rem_small() {
        let a = U256::from_u64(1000);
        let b = U256::from_u64(7);
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, U256::from_u64(142));
        assert_eq!(r, U256::from_u64(6));
    }

    #[test]
    fn div_rem_large() {
        let a = U256::MAX;
        let b = U256::from_limbs([0, 0, 1, 0]); // 2^128
        let (q, r) = a.div_rem(&b);
        assert_eq!(q, U256::from_limbs([u64::MAX, u64::MAX, 0, 0]));
        assert_eq!(r, U256::from_limbs([u64::MAX, u64::MAX, 0, 0]));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = U256::ONE.div_rem(&U256::ZERO);
    }

    #[test]
    fn mul_mod_basics() {
        let m = U256::from_u64(97);
        let a = U256::from_u64(95);
        let b = U256::from_u64(96);
        // 95*96 mod 97 = (-2)(-1) mod 97 = 2
        assert_eq!(a.mul_mod(&b, &m), U256::from_u64(2));
    }

    #[test]
    fn pow_mod_fermat() {
        // Fermat: a^(p-1) = 1 mod p for prime p not dividing a.
        let p = U256::from_u64(101);
        let a = U256::from_u64(7);
        assert_eq!(a.pow_mod(&U256::from_u64(100), &p), U256::ONE);
    }

    #[test]
    fn pow_mod_large_prime() {
        // secp256k1 field prime.
        let p = U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .unwrap();
        let a = U256::from_u64(2);
        let pm1 = p.wrapping_sub(&U256::ONE);
        assert_eq!(a.pow_mod(&pm1, &p), U256::ONE);
    }

    #[test]
    fn hex_roundtrip() {
        let a = U256::from_hex("deadbeef00112233").unwrap();
        assert_eq!(format!("{:x}", a), "deadbeef00112233");
        assert_eq!(
            U256::from_hex(&format!("{:x}", U256::MAX)).unwrap(),
            U256::MAX
        );
    }

    #[test]
    fn hex_errors() {
        assert!(U256::from_hex("").is_err());
        assert!(U256::from_hex("xyz").is_err());
        assert!(U256::from_hex(&"f".repeat(65)).is_err());
    }

    #[test]
    fn be_bytes_roundtrip() {
        let a = U256::from_hex("0123456789abcdef0123456789abcdef").unwrap();
        assert_eq!(U256::from_be_bytes(&a.to_be_bytes()), a);
    }

    #[test]
    fn ordering() {
        assert!(U256::ZERO < U256::ONE);
        assert!(
            U256::from_limbs([0, 0, 0, 1]) > U256::from_limbs([u64::MAX, u64::MAX, u64::MAX, 0])
        );
    }

    #[test]
    fn add_mod_wraps() {
        let m = U256::from_u64(10);
        assert_eq!(
            U256::from_u64(7).add_mod(&U256::from_u64(8), &m),
            U256::from_u64(5)
        );
        assert_eq!(
            U256::from_u64(3).sub_mod(&U256::from_u64(8), &m),
            U256::from_u64(5)
        );
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        let v = U256::ONE.shl(100);
        assert!(v.bit(100));
        assert!(!v.bit(99));
    }

    #[test]
    fn display_formats() {
        let v = U256::from_u64(255);
        assert_eq!(format!("{}", v), "0xff");
        assert_eq!(format!("{:x}", v), "ff");
        assert_eq!(format!("{:X}", v), "FF");
        assert_eq!(format!("{:b}", v), "11111111");
        assert_eq!(format!("{:?}", U256::ZERO), "U256(0x0)");
    }
}
