//! Simulation-grade cryptographic primitives for the edgechain workspace.
//!
//! The paper's blockchain needs four primitives, all implemented here from
//! scratch with no external crypto dependencies:
//!
//! * [`Sha256`] / [`sha256()`](fn@sha256) — FIPS 180-4 hashing, used for block hashes,
//!   the PoS `POSHash` chain, and account addresses.
//! * [`hmac_sha256`] — RFC 2104 MACs, used for deterministic signing nonces.
//! * [`MerkleTree`] / [`MerkleProof`] — block bodies commit to metadata
//!   items through a Merkle root.
//! * [`KeyPair`] / [`PublicKey`] / [`Signature`] — Schnorr-style signatures
//!   identifying data producers (paper §III-B.2).
//!
//! [`U256`] provides the 256-bit arithmetic behind the signature scheme.
//!
//! # Security
//!
//! Everything in this crate is written for *reproducible simulation*, not
//! production use: the arithmetic is not constant-time and the signature
//! group parameters are chosen for convenience (see [`sig`] module docs).
//!
//! # Examples
//!
//! ```
//! use edgechain_crypto::{sha256, KeyPair, MerkleTree};
//!
//! // Hash chaining as in the PoS mechanism.
//! let pos_hash = sha256(b"genesis");
//! let next = sha256([pos_hash.as_bytes().as_slice(), b"account"].concat());
//! assert_ne!(pos_hash, next);
//!
//! // Producer signs a metadata payload.
//! let producer = KeyPair::from_seed(7);
//! let sig = producer.sign(b"metadata");
//! assert!(producer.public_key().verify(b"metadata", &sig));
//!
//! // Blocks commit to metadata via a Merkle root.
//! let tree = MerkleTree::from_leaves([b"m0".as_slice(), b"m1"]);
//! assert!(tree.proof(0).unwrap().verify(b"m0", &tree.root()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod hmac;
pub mod merkle;
pub mod sha256;
pub mod sig;
pub mod u256;

pub use hmac::hmac_sha256;
pub use merkle::{leaf_hash, MerkleProof, MerkleTree, Side};
pub use sha256::{
    sha256, sha256_fixed64, sha256_many, sha256_many_fixed64, sha256_many_pair64, sha256_pair,
    sha256_pair64, Digest, Midstate, ParseDigestError, Sha256, SharedPrefix32,
};
pub use sig::{address_for_seed, InvalidKeyError, KeyPair, PublicKey, SecretKey, Signature};
pub use u256::{ParseU256Error, U256};
