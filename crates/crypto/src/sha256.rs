//! SHA-256 (FIPS 180-4) implemented from scratch.
//!
//! Provides both an incremental [`Sha256`] hasher and a one-shot
//! [`sha256`] convenience function. The implementation is validated against
//! the FIPS 180-4 / NIST test vectors in the unit tests and against a
//! `incremental == one-shot` property test.
//!
//! Three fast paths support the consensus hot loop (all bit-identical to
//! the one-shot function, pinned by unit and property tests):
//!
//! - [`Midstate`] captures the compression state at a 64-byte block
//!   boundary so a shared message prefix is compressed once and resumed
//!   per suffix.
//! - [`sha256_fixed64`] hashes exactly-64-byte messages — the PoS shape
//!   `Hash(POSHash_prev ‖ Account_i)`, two 32-byte halves — using a
//!   **compile-time message schedule for the padding block**: a 64-byte
//!   message always pads to the same second block (`0x80`, zeros, bit
//!   length 512), so its 64-entry schedule expansion is a `const`.
//! - [`sha256_many`] / [`sha256_many_fixed64`] hash a batch, fanning out
//!   on [`edgechain_sim::pool`] with index-ordered joins above a size
//!   threshold; output order and bytes are identical to the serial map.
//!
//! # Examples
//!
//! ```
//! use edgechain_crypto::sha256;
//!
//! let digest = sha256(b"abc");
//! assert_eq!(
//!     digest.to_hex(),
//!     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
//! );
//! ```

use serde::{Deserialize, Serialize};
use std::fmt;

/// Initial hash values: first 32 bits of the fractional parts of the square
/// roots of the first 8 primes.
const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Round constants: first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes.
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// A 256-bit message digest.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize, PartialOrd, Ord)]
pub struct Digest(pub [u8; 32]);

impl Digest {
    /// The all-zero digest, used as the genesis "previous hash".
    pub const ZERO: Digest = Digest([0u8; 32]);

    /// Renders the digest as 64 lowercase hex characters.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in &self.0 {
            s.push_str(&format!("{:02x}", b));
        }
        s
    }

    /// Parses a 64-character hex string into a digest.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDigestError`] when the string is not exactly 64 hex
    /// characters.
    pub fn from_hex(s: &str) -> Result<Self, ParseDigestError> {
        if s.len() != 64 {
            return Err(ParseDigestError { _priv: () });
        }
        let mut out = [0u8; 32];
        for (i, chunk) in s.as_bytes().chunks(2).enumerate() {
            let hi = (chunk[0] as char)
                .to_digit(16)
                .ok_or(ParseDigestError { _priv: () })?;
            let lo = (chunk[1] as char)
                .to_digit(16)
                .ok_or(ParseDigestError { _priv: () })?;
            out[i] = ((hi << 4) | lo) as u8;
        }
        Ok(Digest(out))
    }

    /// Returns the raw bytes.
    pub fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Interprets the first 8 bytes as a big-endian `u64`.
    ///
    /// Used by the PoS mechanism to reduce a hash to a *hit* value.
    pub fn to_u64(&self) -> u64 {
        u64::from_be_bytes(self.0[0..8].try_into().unwrap())
    }

    /// Number of leading zero bits, used as PoW difficulty measure.
    pub fn leading_zero_bits(&self) -> u32 {
        let mut n = 0;
        for b in &self.0 {
            if *b == 0 {
                n += 8;
            } else {
                n += b.leading_zeros();
                break;
            }
        }
        n
    }

    /// Whether the digest starts with `n` zero hex digits (PoW criterion,
    /// matching the paper's "4 zeros at the beginning of the block hash").
    pub fn has_leading_zero_hex_digits(&self, n: u32) -> bool {
        self.leading_zero_bits() >= n * 4
    }
}

impl fmt::Debug for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Digest({})", self.to_hex())
    }
}

impl fmt::Display for Digest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<[u8; 32]> for Digest {
    fn from(b: [u8; 32]) -> Self {
        Digest(b)
    }
}

/// Error returned when parsing a [`Digest`] from hex fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseDigestError {
    _priv: (),
}

impl fmt::Display for ParseDigestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid sha-256 digest hex string")
    }
}

impl std::error::Error for ParseDigestError {}

/// Incremental SHA-256 hasher.
///
/// # Examples
///
/// ```
/// use edgechain_crypto::{sha256, Sha256};
///
/// let mut h = Sha256::new();
/// h.update(b"hello ");
/// h.update(b"world");
/// assert_eq!(h.finalize(), sha256(b"hello world"));
/// ```
#[derive(Clone, Debug)]
pub struct Sha256 {
    state: [u32; 8],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Sha256 {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data` into the hash state.
    pub fn update(&mut self, data: impl AsRef<[u8]>) -> &mut Self {
        let mut data = data.as_ref();
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }
        while data.len() >= 64 {
            let block: [u8; 64] = data[..64].try_into().unwrap();
            self.compress(&block);
            data = &data[64..];
        }
        if !data.is_empty() {
            self.buffer[..data.len()].copy_from_slice(data);
            self.buffer_len = data.len();
        }
        self
    }

    /// Completes the hash and returns the digest, consuming buffered input.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80 then zero padding so that length ≡ 56 (mod 64).
        let mut pad = [0u8; 72];
        pad[0] = 0x80;
        let pad_len = if self.buffer_len < 56 {
            56 - self.buffer_len
        } else {
            120 - self.buffer_len
        };
        let mut tail = Vec::with_capacity(pad_len + 8);
        tail.extend_from_slice(&pad[..pad_len]);
        tail.extend_from_slice(&bit_len.to_be_bytes());
        self.update(&tail);
        debug_assert_eq!(self.buffer_len, 0);
        let mut out = [0u8; 32];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        compress_block(&mut self.state, block);
    }

    /// Captures the compression state, provided the hasher sits exactly at
    /// a 64-byte block boundary (no buffered partial block); `None`
    /// otherwise. Resuming the returned [`Midstate`] lets many messages
    /// that share a block-aligned prefix pay for the prefix only once.
    pub fn midstate(&self) -> Option<Midstate> {
        if self.buffer_len != 0 {
            return None;
        }
        Some(Midstate {
            state: self.state,
            bytes: self.total_len,
        })
    }

    /// Rebuilds a hasher from a captured [`Midstate`]; subsequent
    /// [`Sha256::update`]/[`Sha256::finalize`] calls behave exactly as if
    /// the original prefix had been absorbed by this instance.
    pub fn from_midstate(m: Midstate) -> Self {
        Sha256 {
            state: m.state,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: m.bytes,
        }
    }
}

/// The SHA-256 compression state at a 64-byte block boundary, captured
/// with [`Sha256::midstate`] and resumed with [`Sha256::from_midstate`].
///
/// # Examples
///
/// ```
/// use edgechain_crypto::{sha256, Sha256};
///
/// let mut prefix = Sha256::new();
/// prefix.update([7u8; 64]); // one full block
/// let mid = prefix.midstate().expect("block-aligned");
/// let mut resumed = Sha256::from_midstate(mid);
/// resumed.update(b"suffix");
/// let mut oneshot = Vec::from([7u8; 64]);
/// oneshot.extend_from_slice(b"suffix");
/// assert_eq!(resumed.finalize(), sha256(&oneshot));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Midstate {
    state: [u32; 8],
    bytes: u64,
}

impl Midstate {
    /// Number of prefix bytes already absorbed (a multiple of 64).
    pub fn bytes_absorbed(&self) -> u64 {
        self.bytes
    }
}

/// One compression round over the 16-word block `block`, expanding the
/// message schedule on the fly.
fn compress_block(state: &mut [u32; 8], block: &[u8; 64]) {
    let mut w = [0u32; 64];
    for (i, word) in w.iter_mut().take(16).enumerate() {
        *word = u32::from_be_bytes(block[i * 4..i * 4 + 4].try_into().unwrap());
    }
    for i in 16..64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
    }
    compress_scheduled(state, &w);
}

/// The 64 compression rounds over an already-expanded message schedule.
fn compress_scheduled(state: &mut [u32; 8], w: &[u32; 64]) {
    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
    for i in 0..64 {
        let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
        let ch = (e & f) ^ (!e & g);
        let temp1 = h
            .wrapping_add(s1)
            .wrapping_add(ch)
            .wrapping_add(K[i])
            .wrapping_add(w[i]);
        let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
        let maj = (a & b) ^ (a & c) ^ (b & c);
        let temp2 = s0.wrapping_add(maj);
        h = g;
        g = f;
        f = e;
        e = d.wrapping_add(temp1);
        d = c;
        c = b;
        b = a;
        a = temp1.wrapping_add(temp2);
    }
    state[0] = state[0].wrapping_add(a);
    state[1] = state[1].wrapping_add(b);
    state[2] = state[2].wrapping_add(c);
    state[3] = state[3].wrapping_add(d);
    state[4] = state[4].wrapping_add(e);
    state[5] = state[5].wrapping_add(f);
    state[6] = state[6].wrapping_add(g);
    state[7] = state[7].wrapping_add(h);
}

/// Expands a 16-word block into the full 64-entry message schedule at
/// compile time (used for the constant padding block of 64-byte messages).
const fn expand_schedule(first16: [u32; 16]) -> [u32; 64] {
    let mut w = [0u32; 64];
    let mut i = 0;
    while i < 16 {
        w[i] = first16[i];
        i += 1;
    }
    while i < 64 {
        let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
        let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
        w[i] = w[i - 16]
            .wrapping_add(s0)
            .wrapping_add(w[i - 7])
            .wrapping_add(s1);
        i += 1;
    }
    w
}

/// Message schedule of the padding block every 64-byte message shares:
/// `0x80`, 55 zero bytes, then the 64-bit big-endian bit length (512).
/// Precomputing it at compile time removes the schedule expansion — close
/// to half the work — from the second compression of [`sha256_fixed64`].
const PAD64_SCHEDULE: [u32; 64] = {
    let mut first16 = [0u32; 16];
    first16[0] = 0x8000_0000;
    first16[15] = 512;
    expand_schedule(first16)
};

/// One-shot SHA-256 of an exactly-64-byte message: one on-the-fly
/// compression for the message block, one schedule-precomputed compression
/// for the constant padding block. Bit-identical to `sha256(block)`.
pub fn sha256_fixed64(block: &[u8; 64]) -> Digest {
    let mut state = H0;
    compress_block(&mut state, block);
    compress_scheduled(&mut state, &PAD64_SCHEDULE);
    let mut out = [0u8; 32];
    for (i, word) in state.iter().enumerate() {
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
    }
    Digest(out)
}

/// [`sha256_fixed64`] over the concatenation of two 32-byte halves — the
/// PoS hit shape `Hash(POSHash_prev ‖ Account_i)` (paper Eq. 7).
pub fn sha256_pair64(a: &[u8; 32], b: &[u8; 32]) -> Digest {
    let mut block = [0u8; 64];
    block[..32].copy_from_slice(a);
    block[32..].copy_from_slice(b);
    sha256_fixed64(&block)
}

/// Precomputed compression state for 64-byte messages that all share the
/// same 32-byte **prefix** — one PoS round hashes
/// `Hash(POSHash_prev ‖ Account_i)` for every candidate with the same
/// `POSHash_prev`. Round `t` of the message-block compression consumes
/// schedule word `W[t]`, and `W[0..8]` come entirely from the prefix, so
/// the first eight rounds (and the prefix-only parts of the schedule
/// expansion, `W[i−16] + σ₀(W[i−15])` for `i ≤ 22`) are identical across
/// the batch and run once here instead of once per suffix. Bit-identical
/// to [`sha256_pair64`] (pinned by unit and property tests).
#[derive(Debug, Clone, Copy)]
pub struct SharedPrefix32 {
    /// `W[0..8]`: the prefix's schedule words.
    w: [u32; 8],
    /// Working variables `a..h` after round 7 (from the `H0` start).
    vars: [u32; 8],
    /// `W[i−16] + σ₀(W[i−15])` for `i = 16..=22` — the expansion terms
    /// that depend only on the prefix.
    partial: [u32; 7],
}

impl SharedPrefix32 {
    /// Absorbs the shared 32-byte prefix: eight compression rounds plus
    /// the prefix-only schedule partials, done once per batch.
    pub fn new(prefix: &[u8; 32]) -> Self {
        let mut w = [0u32; 8];
        for (i, word) in w.iter_mut().enumerate() {
            *word = u32::from_be_bytes(prefix[i * 4..i * 4 + 4].try_into().unwrap());
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = H0;
        for i in 0..8 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        let mut partial = [0u32; 7];
        for (k, p) in partial.iter_mut().enumerate() {
            let i = k + 16;
            let prev = w[i - 15];
            let s0 = prev.rotate_right(7) ^ prev.rotate_right(18) ^ (prev >> 3);
            *p = w[i - 16].wrapping_add(s0);
        }
        SharedPrefix32 {
            w,
            vars: [a, b, c, d, e, f, g, h],
            partial,
        }
    }

    /// `sha256(prefix ‖ suffix)` resuming from the shared prefix state:
    /// rounds 8–63 of the message block, then the schedule-precomputed
    /// padding block.
    pub fn pair(&self, suffix: &[u8; 32]) -> Digest {
        let mut w = [0u32; 64];
        w[..8].copy_from_slice(&self.w);
        for i in 0..8 {
            w[i + 8] = u32::from_be_bytes(suffix[i * 4..i * 4 + 4].try_into().unwrap());
        }
        for i in 16..64 {
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            let head = if i <= 22 {
                self.partial[i - 16]
            } else {
                let prev = w[i - 15];
                let s0 = prev.rotate_right(7) ^ prev.rotate_right(18) ^ (prev >> 3);
                w[i - 16].wrapping_add(s0)
            };
            w[i] = head.wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.vars;
        for i in 8..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }
        // The message block started from the constant `H0`, so the
        // feed-forward is `H0 + vars`; the padding block then finishes.
        let mut state = H0;
        for (s, v) in state.iter_mut().zip([a, b, c, d, e, f, g, h]) {
            *s = s.wrapping_add(v);
        }
        compress_scheduled(&mut state, &PAD64_SCHEDULE);
        let mut out = [0u8; 32];
        for (i, word) in state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        Digest(out)
    }
}

/// `sha256(prefix ‖ suffix_i)` for every suffix, in order — the
/// whole-round PoS batch: one [`SharedPrefix32`] absorption, then one
/// resumed compression per suffix, fanned out on the worker pool only for
/// batches big enough to amortize thread spawns.
pub fn sha256_many_pair64(prefix: &[u8; 32], suffixes: &[[u8; 32]]) -> Vec<Digest> {
    let shared = SharedPrefix32::new(prefix);
    if suffixes.len() < PARALLEL_MIN_PAIR {
        return suffixes.iter().map(|s| shared.pair(s)).collect();
    }
    edgechain_sim::pool::parallel_map(suffixes, usize::MAX, |s| shared.pair(s))
}

/// Batches below this size are hashed serially: scoped-thread spawning
/// costs more than a few hundred compressions, and the worker pool caps at
/// 8 threads anyway. Above it, [`sha256_many`] fans out on
/// [`edgechain_sim::pool`] with index-ordered joins, so the output is
/// byte-identical either way.
const PARALLEL_MIN: usize = 256;

/// A resumed shared-prefix compression is under half a microsecond, so a
/// pair batch must be far larger than the generic threshold before eight
/// scoped-thread spawns pay for themselves.
const PARALLEL_MIN_PAIR: usize = 2048;

/// SHA-256 of every input, in input order — exactly
/// `inputs.iter().map(sha256).collect()`, computed on the deterministic
/// worker pool when the batch is large enough to amortize thread spawns.
pub fn sha256_many<T: AsRef<[u8]> + Sync>(inputs: &[T]) -> Vec<Digest> {
    if inputs.len() < PARALLEL_MIN {
        return inputs.iter().map(sha256).collect();
    }
    edgechain_sim::pool::parallel_map(inputs, usize::MAX, |d| sha256(d))
}

/// [`sha256_many`] over exactly-64-byte messages, taking the
/// [`sha256_fixed64`] fast path per item.
pub fn sha256_many_fixed64(blocks: &[[u8; 64]]) -> Vec<Digest> {
    if blocks.len() < PARALLEL_MIN {
        return blocks.iter().map(sha256_fixed64).collect();
    }
    edgechain_sim::pool::parallel_map(blocks, usize::MAX, sha256_fixed64)
}

/// One-shot SHA-256 of `data`.
pub fn sha256(data: impl AsRef<[u8]>) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// SHA-256 of the concatenation of two byte strings, a common pattern when
/// chaining hashes (`Hash(prev ‖ account)` in the PoS mechanism).
pub fn sha256_pair(a: impl AsRef<[u8]>, b: impl AsRef<[u8]>) -> Digest {
    let mut h = Sha256::new();
    h.update(a);
    h.update(b);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    // FIPS 180-4 / NIST CAVS vectors.
    #[test]
    fn empty_string() {
        assert_eq!(
            sha256(b"").to_hex(),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            sha256(b"abc").to_hex(),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq").to_hex(),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let data = vec![b'a'; 1_000_000];
        assert_eq!(
            sha256(&data).to_hex(),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn exactly_55_56_63_64_65_bytes() {
        // Padding boundary cases: compare split updates against one-shot.
        for len in [55usize, 56, 63, 64, 65, 119, 120, 127, 128] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let oneshot = sha256(&data);
            let mut inc = Sha256::new();
            for chunk in data.chunks(7) {
                inc.update(chunk);
            }
            assert_eq!(inc.finalize(), oneshot, "length {len}");
        }
    }

    #[test]
    fn digest_hex_roundtrip() {
        let d = sha256(b"roundtrip");
        assert_eq!(Digest::from_hex(&d.to_hex()).unwrap(), d);
        assert!(Digest::from_hex("abc").is_err());
        assert!(Digest::from_hex(&"g".repeat(64)).is_err());
    }

    #[test]
    fn leading_zero_bits() {
        let mut raw = [0xffu8; 32];
        raw[0] = 0x0f;
        let d = Digest(raw);
        assert_eq!(d.leading_zero_bits(), 4);
        assert!(d.has_leading_zero_hex_digits(1));
        assert!(!d.has_leading_zero_hex_digits(2));
        assert_eq!(Digest::ZERO.leading_zero_bits(), 256);
    }

    #[test]
    fn to_u64_is_big_endian_prefix() {
        let mut raw = [0u8; 32];
        raw[7] = 1;
        assert_eq!(Digest(raw).to_u64(), 1);
        raw[0] = 0x80;
        assert!(Digest(raw).to_u64() >= 1 << 63);
    }

    #[test]
    fn sha256_pair_equals_concat() {
        assert_eq!(sha256_pair(b"foo", b"bar"), sha256(b"foobar"));
    }

    // Fixed vector for the 64-byte fast shape (cross-checked against
    // hashlib): sha256("a" × 64).
    #[test]
    fn fixed64_known_vector() {
        let block = [b'a'; 64];
        assert_eq!(
            sha256_fixed64(&block).to_hex(),
            "ffe054fe7ae0cb6dc65c3af9b61d5209f439851db43d0ba5997337df154668eb"
        );
    }

    #[test]
    fn fixed64_matches_oneshot() {
        let mut block = [0u8; 64];
        for (i, b) in block.iter_mut().enumerate() {
            *b = i as u8;
        }
        assert_eq!(sha256_fixed64(&block), sha256(block));
        assert_eq!(
            sha256_fixed64(&block).to_hex(),
            "fdeab9acf3710362bd2658cdc9a29e8f9c757fcf9811603a8c447cd1d9151108"
        );
    }

    #[test]
    fn pair64_matches_pair() {
        let a = sha256(b"prev").0;
        let b = sha256(b"account").0;
        assert_eq!(sha256_pair64(&a, &b), sha256_pair(a, b));
    }

    #[test]
    fn midstate_resumes_exactly() {
        let prefix = [0x42u8; 128]; // two full blocks
        for suffix_len in [0usize, 1, 55, 64, 200] {
            let suffix: Vec<u8> = (0..suffix_len).map(|i| i as u8).collect();
            let mut h = Sha256::new();
            h.update(prefix);
            let mid = h.midstate().expect("aligned after full blocks");
            assert_eq!(mid.bytes_absorbed(), 128);
            let mut resumed = Sha256::from_midstate(mid);
            resumed.update(&suffix);
            let mut full = prefix.to_vec();
            full.extend_from_slice(&suffix);
            assert_eq!(resumed.finalize(), sha256(&full), "suffix {suffix_len}");
        }
    }

    #[test]
    fn midstate_unavailable_mid_block() {
        let mut h = Sha256::new();
        h.update(b"partial");
        assert!(h.midstate().is_none());
        h.update(vec![0u8; 57]); // tops the buffer up to one full block
        assert!(h.midstate().is_some());
    }

    #[test]
    fn shared_prefix_matches_pair64() {
        let prefixes = [
            sha256(b"prev-a").0,
            sha256(b"prev-b").0,
            [0u8; 32],
            [0xFF; 32],
        ];
        for prefix in &prefixes {
            let shared = SharedPrefix32::new(prefix);
            for seed in 0..16u8 {
                let suffix = sha256([seed]).0;
                assert_eq!(shared.pair(&suffix), sha256_pair64(prefix, &suffix));
            }
        }
    }

    #[test]
    fn many_pair64_matches_serial_on_both_sides_of_threshold() {
        let prefix = sha256(b"height").0;
        for n in [0usize, 1, 7, PARALLEL_MIN_PAIR - 1, PARALLEL_MIN_PAIR + 3] {
            let suffixes: Vec<[u8; 32]> = (0..n).map(|i| sha256(i.to_le_bytes()).0).collect();
            let expect: Vec<Digest> = suffixes.iter().map(|s| sha256_pair64(&prefix, s)).collect();
            assert_eq!(sha256_many_pair64(&prefix, &suffixes), expect, "n={n}");
        }
    }

    #[test]
    fn many_matches_serial_on_both_sides_of_threshold() {
        for n in [
            0usize,
            1,
            7,
            PARALLEL_MIN - 1,
            PARALLEL_MIN,
            2 * PARALLEL_MIN + 3,
        ] {
            let inputs: Vec<Vec<u8>> = (0..n)
                .map(|i| format!("msg-{i}").repeat(i % 5 + 1).into_bytes())
                .collect();
            let expect: Vec<Digest> = inputs.iter().map(|d| sha256(d)).collect();
            assert_eq!(sha256_many(&inputs), expect, "n={n}");
            let blocks: Vec<[u8; 64]> = (0..n).map(|i| [i as u8; 64]).collect();
            let expect64: Vec<Digest> = blocks.iter().map(|b| sha256(b)).collect();
            assert_eq!(sha256_many_fixed64(&blocks), expect64, "n={n}");
        }
    }
}
