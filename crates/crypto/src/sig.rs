//! Schnorr-style signatures over the multiplicative group `Z_p^*`.
//!
//! Every edge node holds a [`KeyPair`]; its [`PublicKey`] hashes to the
//! node's account address, and metadata items are signed so that consumers
//! can verify data integrity (paper §III-B.2).
//!
//! The scheme is textbook Schnorr instantiated over `Z_p^*` with the
//! secp256k1 *field* prime `p` and generator `g = 7`, with exponents reduced
//! modulo `p − 1`:
//!
//! * sign: `k = HMAC(x, m)`, `r = g^k`, `e = H(r ‖ m) mod (p−1)`,
//!   `s = k − x·e mod (p−1)`; signature is `(e, s)`.
//! * verify: recompute `r' = g^s · y^e mod p` and accept iff
//!   `H(r' ‖ m) mod (p−1) = e`.
//!
//! Correctness: `g^s·y^e = g^(k−xe)·g^(xe) = g^k = r`, independent of the
//! (unpublished) factorization of `p − 1`, because `g^(p−1) = 1` for any
//! `g` coprime to `p` (Fermat).
//!
//! **Security note.** This implementation is *simulation-grade*: nonce
//! derivation is deterministic (good), but the arithmetic is not
//! constant-time, `g` is not checked to generate a prime-order subgroup, and
//! no side-channel hardening is attempted. It must not be used to protect
//! real assets. The reproduction only requires signatures to be
//! deterministic, collision-free in practice, and verifiable.
//!
//! # Examples
//!
//! ```
//! use edgechain_crypto::KeyPair;
//!
//! let kp = KeyPair::from_seed(42);
//! let sig = kp.sign(b"sensor reading: pm2.5 = 17");
//! assert!(kp.public_key().verify(b"sensor reading: pm2.5 = 17", &sig));
//! assert!(!kp.public_key().verify(b"tampered", &sig));
//! ```

use crate::hmac::hmac_sha256;
use crate::sha256::{Digest, Sha256};
use crate::u256::U256;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::OnceLock;

/// The secp256k1 field prime `p = 2^256 − 2^32 − 977`.
fn prime_p() -> &'static U256 {
    static P: OnceLock<U256> = OnceLock::new();
    P.get_or_init(|| {
        U256::from_hex("fffffffffffffffffffffffffffffffffffffffffffffffffffffffefffffc2f")
            .expect("constant prime parses")
    })
}

/// The exponent modulus `p − 1`.
fn order_q() -> &'static U256 {
    static Q: OnceLock<U256> = OnceLock::new();
    Q.get_or_init(|| prime_p().wrapping_sub(&U256::ONE))
}

/// Group generator (a small element of `Z_p^*`).
const GENERATOR: U256 = U256::from_u64(7);

/// A private signing key (a secret exponent).
#[derive(Clone, PartialEq, Eq)]
pub struct SecretKey {
    x: U256,
}

impl fmt::Debug for SecretKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print key material.
        write!(f, "SecretKey(..)")
    }
}

/// A public verification key `y = g^x mod p`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PublicKey {
    y: U256,
}

impl fmt::Debug for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PublicKey({:.16})", format!("{:x}", self.y))
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.y)
    }
}

impl PublicKey {
    /// The 32-byte big-endian encoding of the key.
    pub fn to_bytes(&self) -> [u8; 32] {
        self.y.to_be_bytes()
    }

    /// Reconstructs a key from its encoding.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidKeyError`] when the encoding is zero or not below
    /// the group modulus.
    pub fn from_bytes(bytes: &[u8; 32]) -> Result<Self, InvalidKeyError> {
        let y = U256::from_be_bytes(bytes);
        if y.is_zero() || &y >= prime_p() {
            return Err(InvalidKeyError { _priv: () });
        }
        Ok(PublicKey { y })
    }

    /// Verifies `signature` over `message`.
    pub fn verify(&self, message: &[u8], signature: &Signature) -> bool {
        let p = prime_p();
        let q = order_q();
        if signature.e.is_zero() && signature.s.is_zero() {
            return false;
        }
        if &signature.e >= q || &signature.s >= q {
            return false;
        }
        let r = GENERATOR
            .pow_mod(&signature.s, p)
            .mul_mod(&self.y.pow_mod(&signature.e, p), p);
        challenge(&r, message) == signature.e
    }

    /// Hashes the public key into a 32-byte account address (paper §III-A:
    /// "the account address can be generated from public keys but not in
    /// reverse").
    pub fn address(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"edgechain-account-v1");
        h.update(self.to_bytes());
        h.finalize()
    }
}

/// A Schnorr signature `(e, s)`.
#[derive(Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Signature {
    e: U256,
    s: U256,
}

impl Signature {
    /// Serializes to 64 bytes (`e ‖ s`, big-endian).
    pub fn to_bytes(&self) -> [u8; 64] {
        let mut out = [0u8; 64];
        out[..32].copy_from_slice(&self.e.to_be_bytes());
        out[32..].copy_from_slice(&self.s.to_be_bytes());
        out
    }

    /// Reconstructs a signature from its 64-byte encoding.
    pub fn from_bytes(bytes: &[u8; 64]) -> Self {
        Signature {
            e: U256::from_be_bytes(bytes[..32].try_into().unwrap()),
            s: U256::from_be_bytes(bytes[32..].try_into().unwrap()),
        }
    }
}

impl fmt::Debug for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Signature(e={:.12}.., s={:.12}..)",
            format!("{:x}", self.e),
            format!("{:x}", self.s)
        )
    }
}

/// A signing/verification key pair.
#[derive(Clone, Debug)]
pub struct KeyPair {
    secret: SecretKey,
    public: PublicKey,
}

impl KeyPair {
    /// Derives a key pair deterministically from a 64-bit seed.
    ///
    /// Simulations create thousands of nodes; seeding keys from the node id
    /// keeps runs reproducible.
    pub fn from_seed(seed: u64) -> Self {
        let d = sha256_seed(seed);
        Self::from_secret_scalar(U256::from_be_bytes(d.as_bytes()))
    }

    /// Generates a key pair from a random number generator.
    pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let mut bytes = [0u8; 32];
        rng.fill(&mut bytes);
        Self::from_secret_scalar(U256::from_be_bytes(&bytes))
    }

    fn from_secret_scalar(raw: U256) -> Self {
        let q = order_q();
        let mut x = raw.rem(q);
        if x.is_zero() {
            x = U256::ONE;
        }
        let y = GENERATOR.pow_mod(&x, prime_p());
        KeyPair {
            secret: SecretKey { x },
            public: PublicKey { y },
        }
    }

    /// The public half.
    pub fn public_key(&self) -> PublicKey {
        self.public
    }

    /// The account address derived from the public key.
    pub fn address(&self) -> Digest {
        self.public.address()
    }

    /// Signs `message` with a deterministic (RFC 6979-style) nonce.
    pub fn sign(&self, message: &[u8]) -> Signature {
        let p = prime_p();
        let q = order_q();
        // Deterministic nonce: HMAC over the message keyed by the secret.
        let mut nonce_key = self.secret.x.to_be_bytes().to_vec();
        nonce_key.extend_from_slice(b"edgechain-nonce");
        let mut k = U256::from_be_bytes(hmac_sha256(&nonce_key, message).as_bytes()).rem(q);
        if k.is_zero() {
            k = U256::ONE;
        }
        let r = GENERATOR.pow_mod(&k, p);
        let e = challenge(&r, message);
        let xe = self.secret.x.mul_mod(&e, q);
        let s = k.sub_mod(&xe, q);
        Signature { e, s }
    }
}

/// `H(r ‖ m) mod (p−1)` — the Fiat–Shamir challenge.
fn challenge(r: &U256, message: &[u8]) -> U256 {
    let mut h = Sha256::new();
    h.update(r.to_be_bytes());
    h.update(message);
    U256::from_be_bytes(h.finalize().as_bytes()).rem(order_q())
}

fn sha256_seed(seed: u64) -> Digest {
    let mut h = Sha256::new();
    h.update(b"edgechain-keyseed-v1");
    h.update(seed.to_be_bytes());
    h.finalize()
}

/// Error returned when decoding an invalid [`PublicKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InvalidKeyError {
    _priv: (),
}

impl fmt::Display for InvalidKeyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "public key encoding is not a valid group element")
    }
}

impl std::error::Error for InvalidKeyError {}

/// One-shot convenience: derive the account address for a seed without
/// keeping the key pair.
pub fn address_for_seed(seed: u64) -> Digest {
    KeyPair::from_seed(seed).address()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let kp = KeyPair::from_seed(1);
        let msg = b"hello edge";
        let sig = kp.sign(msg);
        assert!(kp.public_key().verify(msg, &sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let kp = KeyPair::from_seed(2);
        let sig = kp.sign(b"original");
        assert!(!kp.public_key().verify(b"tampered", &sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let kp1 = KeyPair::from_seed(3);
        let kp2 = KeyPair::from_seed(4);
        let sig = kp1.sign(b"msg");
        assert!(!kp2.public_key().verify(b"msg", &sig));
    }

    #[test]
    fn deterministic_signing() {
        let kp = KeyPair::from_seed(5);
        assert_eq!(kp.sign(b"m").to_bytes(), kp.sign(b"m").to_bytes());
        assert_ne!(kp.sign(b"m1").to_bytes(), kp.sign(b"m2").to_bytes());
    }

    #[test]
    fn seeds_give_distinct_keys() {
        let a = KeyPair::from_seed(10);
        let b = KeyPair::from_seed(11);
        assert_ne!(a.public_key(), b.public_key());
        assert_ne!(a.address(), b.address());
    }

    #[test]
    fn public_key_bytes_roundtrip() {
        let kp = KeyPair::from_seed(6);
        let bytes = kp.public_key().to_bytes();
        assert_eq!(PublicKey::from_bytes(&bytes).unwrap(), kp.public_key());
    }

    #[test]
    fn invalid_public_key_rejected() {
        assert!(PublicKey::from_bytes(&[0u8; 32]).is_err());
        assert!(PublicKey::from_bytes(&[0xffu8; 32]).is_err());
    }

    #[test]
    fn signature_bytes_roundtrip() {
        let kp = KeyPair::from_seed(7);
        let sig = kp.sign(b"roundtrip");
        let back = Signature::from_bytes(&sig.to_bytes());
        assert_eq!(back, sig);
        assert!(kp.public_key().verify(b"roundtrip", &back));
    }

    #[test]
    fn zero_signature_rejected() {
        let kp = KeyPair::from_seed(8);
        let zero = Signature {
            e: U256::ZERO,
            s: U256::ZERO,
        };
        assert!(!kp.public_key().verify(b"m", &zero));
    }

    #[test]
    fn rng_generation_works() {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(99);
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"rng");
        assert!(kp.public_key().verify(b"rng", &sig));
    }

    #[test]
    fn address_is_stable() {
        let kp = KeyPair::from_seed(12);
        assert_eq!(kp.address(), kp.public_key().address());
        assert_eq!(address_for_seed(12), kp.address());
    }
}
