//! Offered-load sweep: the open-workload engine driving item arrivals at a
//! ladder of rates — from well under to several times over a fixed,
//! protected capacity — measuring what overload does to tail latency.
//!
//! Every point keeps the same 20-node network and the same protection
//! stack (admission bucket at 30 items/min, 30-item mempool bound, fetch
//! bucket, retry budget); only the offered rate climbs. Each point records
//! offered/admitted/shed rates, p50/p95/p99 inclusion and fetch latency of
//! the *admitted* traffic, availability, peak queue depth, and the deepest
//! degradation rung, all landing in `BENCH_load.json`.
//!
//! The shape under test: below capacity nothing sheds and latency is flat;
//! past capacity shedding engages and climbs with load, while the admitted
//! p99 inclusion latency stays bounded by the mempool cap (the queue can
//! never hold more than one block interval of work) instead of growing
//! without bound as an unprotected open queue would.
//!
//! `cargo run --release -p edgechain-bench --bin load` (default 30
//! simulated minutes per point; `--small` drops to 10 for CI smoke runs;
//! `--minutes N` as usual). The final health line asserts the overload
//! point: shedding engaged, admitted p99 inclusion within the SLO bar,
//! availability ≥ 0.9.

use edgechain_bench::{parse_options, print_table, FigureOptions};
use edgechain_core::network::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain_core::{ArrivalProcess, OpenArrivals, OverloadConfig, SloThresholds, WorkloadConfig};
use edgechain_telemetry as telemetry;
use std::time::Instant;

/// The protected capacity every ladder point runs against (items/min).
const CAPACITY_ITEMS_PER_MIN: f64 = 30.0;

/// Offered item rates, per minute: 1/6× to ~2.7× capacity.
const OFFERED_ITEMS_PER_MIN: &[f64] = &[5.0, 10.0, 20.0, 40.0, 80.0];

/// Nodes per point (small enough that the sweep costs seconds).
const NODES: usize = 20;

/// One ladder point.
struct LoadPoint {
    offered_per_min: f64,
    wall_secs: f64,
    report: RunReport,
    registry: telemetry::Registry,
}

fn load_config(offered_per_min: f64, minutes: u64) -> NetworkConfig {
    NetworkConfig {
        nodes: NODES,
        sim_minutes: minutes,
        request_interval_secs: 60,
        // Ride out mobility disconnections (chaos-suite tuning): 4 s …
        // 64 s of backoff spans over two minutes.
        fetch_retries: 5,
        retry_backoff_ms: 4_000,
        retry_backoff_max_ms: 64_000,
        seed: 0x10AD_0000 + (offered_per_min * 10.0) as u64,
        workload: WorkloadConfig {
            enabled: true,
            arrivals: OpenArrivals {
                process: ArrivalProcess::Poisson {
                    rate_per_min: offered_per_min,
                },
                burst: None,
            },
            // Open fetch pressure scales with the item rate (readers chase
            // writers), Zipf-skewed toward fresh content.
            fetches: Some(OpenArrivals {
                process: ArrivalProcess::Poisson {
                    rate_per_min: offered_per_min * 2.5,
                },
                burst: None,
            }),
            zipf_exponent: 0.9,
        },
        overload: OverloadConfig {
            admission_items_per_min: Some(CAPACITY_ITEMS_PER_MIN),
            admission_fetches_per_min: Some(CAPACITY_ITEMS_PER_MIN * 2.0),
            max_pending_items: Some(30),
            max_inflight_per_node: Some(8),
            retry_budget_per_min: Some(240.0),
            ..OverloadConfig::default()
        },
        ..NetworkConfig::default()
    }
}

fn run_point(offered_per_min: f64, minutes: u64) -> LoadPoint {
    telemetry::enable();
    let start = Instant::now();
    let report = EdgeNetwork::new(load_config(offered_per_min, minutes))
        .expect("connected topology")
        .run();
    let wall_secs = start.elapsed().as_secs_f64();
    let session = telemetry::finish().unwrap_or_default();
    let o = &report.overload;
    println!(
        "offered {offered_per_min:>5.1}/min: {:.1}s wall, {} blocks, items {}/{} admitted, \
         fetches {}/{} admitted, p99 incl {}, availability {:.3}, degrade L{}",
        wall_secs,
        report.blocks_mined,
        o.admitted_items,
        o.offered_items,
        o.admitted_fetches,
        o.offered_fetches,
        fmt_opt_secs(report.inclusion_latency.p99),
        report.availability,
        o.max_degrade_level,
    );
    LoadPoint {
        offered_per_min,
        wall_secs,
        report,
        registry: session.registry,
    }
}

fn fmt_opt_secs(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.1}s"),
        None => "-".into(),
    }
}

/// JSON value for an optional latency percentile.
fn json_opt(v: Option<f64>) -> String {
    match v {
        Some(s) => format!("{s:.3}"),
        None => "null".into(),
    }
}

/// The health bar for the overload end of the ladder: shedding must have
/// engaged, and the *admitted* traffic must still be healthy.
fn assert_overload_health(p: &LoadPoint) {
    let o = &p.report.overload;
    assert!(
        o.engaged() && o.shed_items > 0,
        "load smoke: top of the ladder never shed (offered {}/min)",
        p.offered_per_min
    );
    let slo_bar = SloThresholds::default().inclusion_p99_max_secs;
    let p99 = p
        .report
        .inclusion_latency
        .p99
        .expect("overload point packed enough items for a p99");
    assert!(
        p99 <= slo_bar,
        "load smoke: admitted p99 inclusion {p99:.1}s breaches the {slo_bar:.0}s SLO"
    );
    assert!(
        p.report.availability >= 0.9,
        "load smoke: availability {:.3} < 0.9 under overload",
        p.report.availability
    );
    assert!(p.report.blocks_mined > 0, "load smoke: mining stalled");
}

fn main() {
    let mut opts = parse_options(30, 1);
    let small = std::env::args().any(|a| a == "--small");
    if small {
        opts.minutes = opts.minutes.min(10);
    }
    println!(
        "Offered-load sweep — {} min simulated per point, {NODES} nodes, \
         capacity {CAPACITY_ITEMS_PER_MIN}/min, offered ∈ {OFFERED_ITEMS_PER_MIN:?}",
        opts.minutes
    );

    let points: Vec<LoadPoint> = OFFERED_ITEMS_PER_MIN
        .iter()
        .map(|&r| run_point(r, opts.minutes))
        .collect();

    let mut registry = telemetry::Registry::new();
    for p in &points {
        registry.merge(&p.registry);
    }

    let minutes = opts.minutes.max(1) as f64;
    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            let o = &p.report.overload;
            vec![
                o.admitted_items as f64 / minutes,
                o.shed_items as f64 / minutes,
                p.report.inclusion_latency.p50.unwrap_or(f64::NAN),
                p.report.inclusion_latency.p99.unwrap_or(f64::NAN),
                p.report.fetch_latency.p99.unwrap_or(f64::NAN),
                p.report.availability,
                o.peak_pending_items as f64,
                o.max_degrade_level as f64,
            ]
        })
        .collect();
    print_table(
        "Offered load vs admitted tail latency",
        "offered/min",
        OFFERED_ITEMS_PER_MIN,
        &[
            "adm/min",
            "shed/min",
            "incl p50 s",
            "incl p99 s",
            "fetch p99 s",
            "avail",
            "peak queue",
            "max rung",
        ],
        &rows,
        2,
    );

    write_load_json(&opts, &points, &mut registry);

    let top = points.last().expect("ladder is non-empty");
    assert_overload_health(top);
    let o = &top.report.overload;
    println!(
        "load smoke OK: offered {}/min vs capacity {CAPACITY_ITEMS_PER_MIN}/min, \
         {} shed, p99 inclusion {}, availability {:.3}",
        top.offered_per_min,
        o.shed_items,
        fmt_opt_secs(top.report.inclusion_latency.p99),
        top.report.availability,
    );
}

/// `BENCH_load.json`: the full ladder with latency percentiles and
/// admitted/shed accounting per point, plus the merged registry dump.
fn write_load_json(opts: &FigureOptions, points: &[LoadPoint], registry: &mut telemetry::Registry) {
    let minutes = opts.minutes.max(1) as f64;
    let mut out = String::from("{\n  \"bench\": \"load\",\n");
    out.push_str(&format!("  \"minutes\": {},\n", opts.minutes));
    out.push_str(&format!("  \"nodes\": {NODES},\n"));
    out.push_str(&format!(
        "  \"capacity_items_per_min\": {CAPACITY_ITEMS_PER_MIN},\n"
    ));
    out.push_str("  \"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let r = &p.report;
        let o = &r.overload;
        out.push_str(&format!(
            "\n    {{\"offered_items_per_min\": {}, \"wall_secs\": {:.6}, \"blocks\": {}, \
             \"offered_items\": {}, \"admitted_items\": {}, \"shed_items\": {}, \
             \"alloc_rejected\": {}, \"admitted_items_per_min\": {:.3}, \"shed_items_per_min\": {:.3}, \
             \"offered_fetches\": {}, \"admitted_fetches\": {}, \"shed_fetches\": {}, \
             \"fetch_exhausted\": {}, \"retries_denied\": {}, \
             \"deferred_replications\": {}, \"deferred_repairs\": {}, \
             \"peak_pending_items\": {}, \"max_degrade_level\": {}, \
             \"availability\": {:.4}, \
             \"inclusion_p50_secs\": {}, \"inclusion_p95_secs\": {}, \"inclusion_p99_secs\": {}, \
             \"fetch_p50_secs\": {}, \"fetch_p95_secs\": {}, \"fetch_p99_secs\": {}}}",
            p.offered_per_min,
            p.wall_secs,
            r.blocks_mined,
            o.offered_items,
            o.admitted_items,
            o.shed_items,
            o.alloc_rejected,
            o.admitted_items as f64 / minutes,
            o.shed_items as f64 / minutes,
            o.offered_fetches,
            o.admitted_fetches,
            o.shed_fetches,
            o.fetch_exhausted,
            o.retries_denied,
            o.deferred_replications,
            o.deferred_repairs,
            o.peak_pending_items,
            o.max_degrade_level,
            r.availability,
            json_opt(r.inclusion_latency.p50),
            json_opt(r.inclusion_latency.p95),
            json_opt(r.inclusion_latency.p99),
            json_opt(r.fetch_latency.p50),
            json_opt(r.fetch_latency.p95),
            json_opt(r.fetch_latency.p99),
        ));
    }
    out.push_str("\n  ],\n");
    let registry_json = registry.to_json();
    out.push_str("  \"registry\": ");
    for (i, line) in registry_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    let path = "BENCH_load.json";
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
