//! Allocation fast-path benchmark: cached [`AllocationContext`] vs the
//! one-shot per-call solver.
//!
//! For each node count the same seeded simulation is run twice — once with
//! `allocation_cache: true` (the default fast path) and once with it off —
//! and the run reports are compared field-for-field: the fast path must be
//! observationally identical, only cheaper. Per-run wall time and the
//! summed `ufl.*_ns` solver profile go to `BENCH_perf.json`.
//!
//! The parameter points are independent, so they fan out on the worker
//! pool with one thread-local telemetry session per (point, mode) run,
//! merged in index order afterwards.
//!
//! `cargo run --release -p edgechain-bench --bin perf` (default: n ∈
//! {50, 100, 200} at 20 simulated minutes; `--small` keeps only the first
//! point for CI smoke runs; `--minutes N` / `--seeds N` as usual).
//!
//! [`AllocationContext`]: edgechain_core::AllocationContext

use edgechain_bench::{parse_options, print_table, FigureOptions};
use edgechain_core::network::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain_sim::pool;
use edgechain_telemetry as telemetry;
use std::time::Instant;

/// One (node count, cache mode) measurement.
struct PointResult {
    nodes: usize,
    cached: bool,
    wall_secs: f64,
    blocks: u64,
    /// Summed `ufl.*_ns` wall time across the run's solver activity.
    ufl_ns: f64,
    report: RunReport,
    registry: telemetry::Registry,
}

fn run_point(nodes: usize, cached: bool, opts: &FigureOptions, seed_index: u64) -> PointResult {
    telemetry::enable();
    let cfg = NetworkConfig {
        nodes,
        data_items_per_min: 3.0,
        sim_minutes: opts.minutes,
        allocation_cache: cached,
        seed: 0x9EBF_0000 + seed_index * 1000 + nodes as u64,
        ..NetworkConfig::default()
    };
    let start = Instant::now();
    let report = EdgeNetwork::new(cfg).expect("connected topology").run();
    let wall_secs = start.elapsed().as_secs_f64();
    let session = telemetry::finish().unwrap_or_default();
    let ufl_ns: f64 = session
        .registry
        .wall_ns_entries()
        .filter(|(name, _)| name.starts_with("ufl."))
        .map(|(_, stats)| stats.sum())
        .sum();
    PointResult {
        nodes,
        cached,
        wall_secs,
        blocks: report.blocks_mined,
        ufl_ns,
        report,
        registry: session.registry,
    }
}

fn main() {
    let mut opts = parse_options(20, 1);
    let small = std::env::args().any(|a| a == "--small");
    let node_counts: &[usize] = if small { &[50] } else { &[50, 100, 200] };
    if small {
        opts.minutes = opts.minutes.min(10);
    }
    println!(
        "Allocation fast-path benchmark — {} min simulated, n ∈ {node_counts:?}",
        opts.minutes
    );

    // One work item per (point, mode): both modes of a point are
    // independent runs of the same seed, so they parallelize too.
    let work: Vec<(usize, bool)> = node_counts
        .iter()
        .flat_map(|&n| [(n, true), (n, false)])
        .collect();
    let opts_ref = &opts;
    let results = pool::parallel_map(&work, usize::MAX, |&(n, cached)| {
        run_point(n, cached, opts_ref, 0)
    });

    let mut registry = telemetry::Registry::new();
    for r in &results {
        registry.merge(&r.registry);
    }

    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for pair in results.chunks(2) {
        let [fast, base] = pair else { unreachable!() };
        assert!(fast.cached && !base.cached, "work list order");
        // The telemetry snapshots legitimately differ (the fast path counts
        // cache hits instead of repeated solver calls); every simulation
        // outcome must match exactly.
        let mut fast_report = fast.report.clone();
        let mut base_report = base.report.clone();
        fast_report.telemetry = None;
        base_report.telemetry = None;
        assert_eq!(
            fast_report, base_report,
            "n={}: cached run diverged from the one-shot path",
            fast.nodes
        );
        let per_block = |r: &PointResult| r.ufl_ns / r.blocks.max(1) as f64;
        let speedup = per_block(base) / per_block(fast).max(1.0);
        speedups.push((fast.nodes, speedup));
        rows.push(vec![
            fast.blocks as f64,
            fast.blocks as f64 / fast.wall_secs.max(1e-9),
            per_block(fast) / 1e6,
            per_block(base) / 1e6,
            speedup,
        ]);
    }

    print_table(
        "Allocation fast path (per node count; reports verified identical)",
        "nodes",
        node_counts,
        &[
            "blocks",
            "blocks/sec",
            "ufl ms/blk fast",
            "ufl ms/blk base",
            "speedup",
        ],
        &rows,
        2,
    );

    write_perf_json(&opts, node_counts, &results, &speedups, &mut registry);

    for &(n, speedup) in &speedups {
        println!("n={n}: ufl wall time per block {speedup:.2}× faster with the allocation cache");
    }
}

/// `BENCH_perf.json`: per-point wall/solver timings for both modes plus the
/// merged registry dump.
fn write_perf_json(
    opts: &FigureOptions,
    node_counts: &[usize],
    results: &[PointResult],
    speedups: &[(usize, f64)],
    registry: &mut telemetry::Registry,
) {
    let mut out = String::from("{\n  \"bench\": \"perf\",\n");
    out.push_str(&format!("  \"minutes\": {},\n", opts.minutes));
    out.push_str(&format!("  \"node_counts\": {node_counts:?},\n"));
    out.push_str("  \"points\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"nodes\": {}, \"cached\": {}, \"wall_secs\": {:.6}, \"blocks\": {}, \"blocks_per_sec\": {:.3}, \"ufl_ns\": {:.0}, \"ufl_ns_per_block\": {:.0}}}",
            r.nodes,
            r.cached,
            r.wall_secs,
            r.blocks,
            r.blocks as f64 / r.wall_secs.max(1e-9),
            r.ufl_ns,
            r.ufl_ns / r.blocks.max(1) as f64,
        ));
    }
    out.push_str("\n  ],\n  \"speedup_per_block\": {");
    for (i, (n, s)) in speedups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{n}\": {s:.3}"));
    }
    out.push_str("},\n");
    let registry_json = registry.to_json();
    out.push_str("  \"registry\": ");
    for (i, line) in registry_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    let path = "BENCH_perf.json";
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
