//! Fast-path benchmark: the cached allocation, PoS, and block-encoding
//! routes vs their one-shot reference paths.
//!
//! For each node count the same seeded simulation is run twice — once with
//! every cache on (`allocation_cache`, `pos_hit_cache`,
//! `block_seal_cache`: the defaults) and once with all of them off — and
//! the run reports are compared field-for-field: the fast paths must be
//! observationally identical, only cheaper. Per-run wall time, the summed
//! `ufl.*_ns` solver profile, and the consensus/propagation profile
//! (`pos.round_ns`, `block.assemble_ns`, `block.verify_ns`,
//! `codec.encode_ns`, `codec.block_encodes`) go to `BENCH_perf.json`.
//!
//! The parameter points run serially — the whole sweep costs seconds,
//! and concurrent simulations would contend for cores and contaminate
//! each other's wall-clock phase timings — each under its own telemetry
//! session, merged in order afterwards.
//!
//! A second sweep measures the ISSUE 9 scale path: for n ∈ {400, 1000,
//! 4000, 10000} a 10-sim-minute constant-density run (field side grows as
//! `300·sqrt(n/400)`, holding average degree at the n = 400 level) in
//! *sparse* mode (`sparse_routes` + `region_alloc`) against the *dense*
//! reference (capped at n = 1000, above which the n² tables stop being
//! worth building). Each scale point records wall time, blocks,
//! availability, peak tracking entries, the topology's allocated-bytes
//! estimate, and the process RSS high-water mark; the table lands in
//! `BENCH_perf.json` as `scale_points`.
//!
//! `cargo run --release -p edgechain-bench --bin perf` (default: n ∈
//! {50, 100, 200, 400} at 30 simulated minutes; `--small` keeps only the
//! first point for CI smoke runs; `--scale-smoke` runs only the n =
//! 10,000 sparse point plus the n = 400 pair and asserts its health;
//! `--minutes N` / `--seeds N` as usual).

use edgechain_bench::{parse_options, print_table, FigureOptions};
use edgechain_core::network::{EdgeNetwork, NetworkConfig, RunReport};
use edgechain_sim::{Field, TopologyConfig};
use edgechain_telemetry as telemetry;
use std::time::Instant;

/// Node count at and below which the dense reference column is measured
/// (and at which `tests/scale_equivalence.rs` pins sparse ≡ dense).
const DENSE_EQUIVALENCE_THRESHOLD: usize = 1000;

/// Simulated minutes per scale point (the acceptance bar is a completed
/// ≥ 10-minute n = 10,000 run).
const SCALE_MINUTES: u64 = 10;

/// One (node count, cache mode) measurement.
struct PointResult {
    nodes: usize,
    cached: bool,
    wall_secs: f64,
    blocks: u64,
    /// Summed `ufl.*_ns` wall time across the run's solver activity.
    ufl_ns: f64,
    /// Summed `pos.round_ns` across every PoS round.
    pos_ns: f64,
    /// Summed `block.assemble_ns` (sealing, incl. Merkle leaf hashing).
    assemble_ns: f64,
    /// Summed `block.verify_ns` (tip validation at push time).
    verify_ns: f64,
    /// Summed `codec.encode_ns` across every block serialization.
    encode_ns: f64,
    /// Number of `encode_block` invocations.
    encodes: u64,
    report: RunReport,
    registry: telemetry::Registry,
}

impl PointResult {
    /// Consensus + propagation work per mined block: PoS rounds, block
    /// assembly, tip verification, and every block serialization.
    fn consensus_ns_per_block(&self) -> f64 {
        (self.pos_ns + self.assemble_ns + self.verify_ns + self.encode_ns)
            / self.blocks.max(1) as f64
    }
}

fn run_point(nodes: usize, cached: bool, opts: &FigureOptions, seed_index: u64) -> PointResult {
    telemetry::enable();
    let cfg = NetworkConfig {
        nodes,
        data_items_per_min: 3.0,
        sim_minutes: opts.minutes,
        allocation_cache: cached,
        pos_hit_cache: cached,
        block_seal_cache: cached,
        seed: 0x9EBF_0000 + seed_index * 1000 + nodes as u64,
        ..NetworkConfig::default()
    };
    let start = Instant::now();
    let report = EdgeNetwork::new(cfg).expect("connected topology").run();
    let wall_secs = start.elapsed().as_secs_f64();
    let mut session = telemetry::finish().unwrap_or_default();
    let sum_ns = |session: &telemetry::Session, which: &str| -> f64 {
        session
            .registry
            .wall_ns_entries()
            .filter(|(name, _)| name.starts_with(which))
            .map(|(_, stats)| stats.sum())
            .sum()
    };
    let ufl_ns = sum_ns(&session, "ufl.");
    let pos_ns = sum_ns(&session, "pos.round_ns");
    let assemble_ns = sum_ns(&session, "block.assemble_ns");
    let verify_ns = sum_ns(&session, "block.verify_ns");
    let encode_ns = sum_ns(&session, "codec.encode_ns");
    let encodes = session
        .registry
        .snapshot()
        .counter("codec.block_encodes")
        .unwrap_or(0);
    PointResult {
        nodes,
        cached,
        wall_secs,
        blocks: report.blocks_mined,
        ufl_ns,
        pos_ns,
        assemble_ns,
        verify_ns,
        encode_ns,
        encodes,
        report,
        registry: session.registry,
    }
}

/// One row of the scale sweep.
struct ScalePoint {
    nodes: usize,
    sparse: bool,
    wall_secs: f64,
    report: RunReport,
    /// Topology adjacency + route-state bytes at the end of the run.
    topo_bytes: usize,
    /// Process RSS high-water mark (kB) after the point, from
    /// `/proc/self/status` `VmHWM`. Monotone across the process, so read
    /// it off the cheapest-first run order.
    rss_peak_kb: u64,
}

/// `VmHWM` from `/proc/self/status` in kB; 0 where unavailable.
fn rss_peak_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find(|l| l.starts_with("VmHWM:")).and_then(|l| {
                l.split_whitespace()
                    .nth(1)
                    .and_then(|v| v.parse::<u64>().ok())
            })
        })
        .unwrap_or(0)
}

/// Constant-density scale configuration: the field side grows as
/// `300·sqrt(n/400)` so average radio degree stays at the n = 400 level
/// instead of the graph itself becoming the bottleneck.
fn scale_config(nodes: usize, sparse: bool) -> NetworkConfig {
    let side = 300.0 * ((nodes as f64) / 400.0).sqrt();
    NetworkConfig {
        nodes,
        data_items_per_min: 3.0,
        sim_minutes: SCALE_MINUTES,
        topology: TopologyConfig {
            field: Field::new(side, side),
            sparse_routes: sparse,
            ..TopologyConfig::default()
        },
        region_alloc: sparse,
        seed: 0x5CA1_E000 + nodes as u64,
        ..NetworkConfig::default()
    }
}

fn run_scale_point(nodes: usize, sparse: bool) -> ScalePoint {
    let cfg = scale_config(nodes, sparse);
    let start = Instant::now();
    let (report, topo_bytes) = EdgeNetwork::new(cfg)
        .expect("connected topology")
        .run_with_memory();
    let wall_secs = start.elapsed().as_secs_f64();
    println!(
        "scale n={nodes} {}: {:.1}s wall, {} blocks, availability {:.3}, topo {:.1} MB, rss peak {:.0} MB",
        if sparse { "sparse" } else { "dense" },
        wall_secs,
        report.blocks_mined,
        report.availability,
        topo_bytes as f64 / 1e6,
        rss_peak_kb() as f64 / 1e3,
    );
    ScalePoint {
        nodes,
        sparse,
        wall_secs,
        report,
        topo_bytes,
        rss_peak_kb: rss_peak_kb(),
    }
}

/// The `--scale-smoke` health bar: the shortened n = 10,000 sparse run
/// must actually behave like a working network.
fn assert_scale_health(p: &ScalePoint) {
    assert!(p.report.blocks_mined > 0, "scale smoke: no blocks mined");
    assert!(
        p.report.availability >= 0.9,
        "scale smoke: availability {:.3} < 0.9",
        p.report.availability
    );
    assert_eq!(
        p.report.invariant_violations, 0,
        "scale smoke: invariant violations"
    );
    assert!(
        p.report.peak_tracking_entries <= 100_000,
        "scale smoke: unbounded tracking state ({} entries)",
        p.report.peak_tracking_entries
    );
}

fn main() {
    let mut opts = parse_options(30, 1);
    let small = std::env::args().any(|a| a == "--small");
    let scale_smoke = std::env::args().any(|a| a == "--scale-smoke");
    let node_counts: &[usize] = if small || scale_smoke {
        &[50]
    } else {
        &[50, 100, 200, 400]
    };
    if small || scale_smoke {
        opts.minutes = opts.minutes.min(10);
    }
    println!(
        "Fast-path benchmark — {} min simulated, n ∈ {node_counts:?}",
        opts.minutes
    );

    // The points run serially on purpose: the whole sweep costs seconds,
    // and concurrent simulations would contend for cores and contaminate
    // each other's wall-clock phase timings.
    let work: Vec<(usize, bool)> = node_counts
        .iter()
        .flat_map(|&n| [(n, true), (n, false)])
        .collect();
    let results: Vec<PointResult> = work
        .iter()
        .map(|&(n, cached)| run_point(n, cached, &opts, 0))
        .collect();

    let mut registry = telemetry::Registry::new();
    for r in &results {
        registry.merge(&r.registry);
    }

    let mut rows = Vec::new();
    let mut ufl_speedups = Vec::new();
    let mut consensus_speedups = Vec::new();
    for pair in results.chunks(2) {
        let [fast, base] = pair else { unreachable!() };
        assert!(fast.cached && !base.cached, "work list order");
        // The telemetry snapshots legitimately differ (the fast paths count
        // cache hits instead of repeated hashing/encoding); every simulation
        // outcome must match exactly.
        let mut fast_report = fast.report.clone();
        let mut base_report = base.report.clone();
        fast_report.telemetry = None;
        base_report.telemetry = None;
        assert_eq!(
            fast_report, base_report,
            "n={}: cached run diverged from the reference path",
            fast.nodes
        );
        println!("n={}: reports identical across cache modes", fast.nodes);
        let ufl_per_block = |r: &PointResult| r.ufl_ns / r.blocks.max(1) as f64;
        let ufl_speedup = ufl_per_block(base) / ufl_per_block(fast).max(1.0);
        let cons_speedup = base.consensus_ns_per_block() / fast.consensus_ns_per_block().max(1.0);
        ufl_speedups.push((fast.nodes, ufl_speedup));
        consensus_speedups.push((fast.nodes, cons_speedup));
        rows.push(vec![
            fast.blocks as f64,
            ufl_speedup,
            fast.pos_ns / fast.blocks.max(1) as f64 / 1e3,
            base.pos_ns / base.blocks.max(1) as f64 / 1e3,
            fast.consensus_ns_per_block() / 1e3,
            base.consensus_ns_per_block() / 1e3,
            cons_speedup,
        ]);
    }

    print_table(
        "Fast paths (per node count; reports verified identical)",
        "nodes",
        node_counts,
        &[
            "blocks",
            "ufl speedup",
            "pos µs/blk fast",
            "pos µs/blk base",
            "cons µs/blk fast",
            "cons µs/blk base",
            "cons speedup",
        ],
        &rows,
        2,
    );

    // Scale sweep (ISSUE 9): sparse scale path vs dense reference,
    // cheapest first so the RSS high-water column stays meaningful.
    let scale_counts: &[usize] = if small {
        &[400]
    } else if scale_smoke {
        &[400, 10_000]
    } else {
        &[400, 1000, 4000, 10_000]
    };
    println!(
        "\nScale sweep — {SCALE_MINUTES} min simulated, constant density, n ∈ {scale_counts:?}"
    );
    let mut scale_points = Vec::new();
    for &n in scale_counts {
        if n <= DENSE_EQUIVALENCE_THRESHOLD {
            scale_points.push(run_scale_point(n, false));
        }
        scale_points.push(run_scale_point(n, true));
    }
    if scale_smoke {
        let big = scale_points
            .iter()
            .filter(|p| p.sparse)
            .max_by_key(|p| p.nodes)
            .expect("sparse point exists");
        assert_scale_health(big);
        println!(
            "scale smoke OK: n={} sparse, {} blocks, availability {:.3}",
            big.nodes, big.report.blocks_mined, big.report.availability
        );
    }

    write_perf_json(
        &opts,
        node_counts,
        &results,
        &ufl_speedups,
        &consensus_speedups,
        &scale_points,
        &mut registry,
    );

    for (&(n, ufl), &(_, cons)) in ufl_speedups.iter().zip(&consensus_speedups) {
        println!(
            "n={n}: ufl {ufl:.2}× faster, consensus+propagation {cons:.2}× faster with caches on"
        );
    }
}

/// `BENCH_perf.json`: per-point wall/solver/consensus timings for both
/// modes plus the merged registry dump.
#[allow(clippy::too_many_arguments)]
fn write_perf_json(
    opts: &FigureOptions,
    node_counts: &[usize],
    results: &[PointResult],
    ufl_speedups: &[(usize, f64)],
    consensus_speedups: &[(usize, f64)],
    scale_points: &[ScalePoint],
    registry: &mut telemetry::Registry,
) {
    let mut out = String::from("{\n  \"bench\": \"perf\",\n");
    out.push_str(&format!("  \"minutes\": {},\n", opts.minutes));
    out.push_str(&format!("  \"node_counts\": {node_counts:?},\n"));
    out.push_str("  \"points\": [");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"nodes\": {}, \"cached\": {}, \"wall_secs\": {:.6}, \"blocks\": {}, \"blocks_per_sec\": {:.3}, \"ufl_ns\": {:.0}, \"ufl_ns_per_block\": {:.0}, \"pos_round_ns\": {:.0}, \"block_assemble_ns\": {:.0}, \"block_verify_ns\": {:.0}, \"codec_encode_ns\": {:.0}, \"block_encodes\": {}, \"consensus_ns_per_block\": {:.0}}}",
            r.nodes,
            r.cached,
            r.wall_secs,
            r.blocks,
            r.blocks as f64 / r.wall_secs.max(1e-9),
            r.ufl_ns,
            r.ufl_ns / r.blocks.max(1) as f64,
            r.pos_ns,
            r.assemble_ns,
            r.verify_ns,
            r.encode_ns,
            r.encodes,
            r.consensus_ns_per_block(),
        ));
    }
    out.push_str("\n  ],\n  \"speedup_per_block\": {");
    for (i, (n, s)) in ufl_speedups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{n}\": {s:.3}"));
    }
    out.push_str("},\n  \"consensus_speedup_per_block\": {");
    for (i, (n, s)) in consensus_speedups.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{n}\": {s:.3}"));
    }
    out.push_str("},\n");
    out.push_str(&format!(
        "  \"scale_minutes\": {SCALE_MINUTES},\n  \"dense_equivalence_threshold\": {DENSE_EQUIVALENCE_THRESHOLD},\n"
    ));
    out.push_str("  \"scale_points\": [");
    for (i, p) in scale_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"nodes\": {}, \"mode\": \"{}\", \"wall_secs\": {:.6}, \"blocks\": {}, \"blocks_per_sec\": {:.3}, \"availability\": {:.4}, \"peak_tracking_entries\": {}, \"topo_bytes\": {}, \"rss_peak_kb\": {}}}",
            p.nodes,
            if p.sparse { "sparse" } else { "dense" },
            p.wall_secs,
            p.report.blocks_mined,
            p.report.blocks_mined as f64 / p.wall_secs.max(1e-9),
            p.report.availability,
            p.report.peak_tracking_entries,
            p.topo_bytes,
            p.rss_peak_kb,
        ));
    }
    out.push_str("\n  ],\n");
    let registry_json = registry.to_json();
    out.push_str("  \"registry\": ");
    for (i, line) in registry_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    let path = "BENCH_perf.json";
    if let Err(e) = std::fs::write(path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}
