//! Reproduces **Fig. 4** — overall performance under different data
//! amounts and node counts.
//!
//! Paper setting: 300 m × 300 m field, 70 m range, 30 m mobility, 250-slot
//! stores, 1 MB data items, t0 = 60 s, 500-minute runs; node count swept
//! over 10–50 and network-wide data rate over 1–3 items/minute; data
//! requested by 10 % of nodes; results averaged over seeds.
//!
//! Prints three tables matching the figure's three panels:
//! (a) average per-node transmission overhead in MB,
//! (b) Gini coefficient of storage usage,
//! (c) average data delivery time in seconds.
//!
//! `cargo run --release -p edgechain-bench --bin fig4` (add `--full` for
//! the 500-minute paper-scale runs; default is 120 minutes).

use edgechain_bench::{mean, parse_options, print_table, write_bench_json, write_csv};
use edgechain_core::network::{EdgeNetwork, NetworkConfig};
use edgechain_sim::pool;
use edgechain_telemetry as telemetry;

fn main() {
    let opts = parse_options(120, 2);
    let node_counts = [10usize, 20, 30, 40, 50];
    let rates = [1.0f64, 2.0, 3.0];
    println!(
        "Fig. 4 reproduction — {} min simulated, {} seeds per cell",
        opts.minutes, opts.seeds
    );

    // The (nodes, rate) cells are independent simulations, so the sweep
    // fans them out on the worker pool. Telemetry sessions are
    // thread-local: each cell records into its own session, and the
    // per-cell registries are merged in index order below — counter totals
    // are identical to a serial sweep, and the cell means are bit-identical
    // (each is a pure function of its configs and seeds).
    let cells: Vec<(usize, f64)> = node_counts
        .iter()
        .flat_map(|&n| rates.iter().map(move |&rate| (n, rate)))
        .collect();
    let opts_ref = &opts;
    let results = pool::parallel_map(&cells, usize::MAX, |&(n, rate)| {
        telemetry::enable();
        let mut o = Vec::new();
        let mut g = Vec::new();
        let mut d = Vec::new();
        for seed in 0..opts_ref.seeds {
            let cfg = NetworkConfig {
                nodes: n,
                data_items_per_min: rate,
                sim_minutes: opts_ref.minutes,
                seed: 0xF160_0000 + seed * 1000 + n as u64,
                ..NetworkConfig::default()
            };
            let r = EdgeNetwork::new(cfg).expect("connected topology").run();
            o.push(r.mean_node_overhead_mb);
            g.push(r.storage_gini);
            d.push(r.delivery.mean());
        }
        let session = telemetry::finish().unwrap_or_default();
        (mean(&o), mean(&g), mean(&d), session.registry)
    });
    eprintln!("  … all {} cells done", cells.len());

    let mut registry = telemetry::Registry::new();
    let mut overhead = Vec::new();
    let mut gini = Vec::new();
    let mut delivery = Vec::new();
    for rows in results.chunks(rates.len()) {
        let mut row_o = Vec::new();
        let mut row_g = Vec::new();
        let mut row_d = Vec::new();
        for (o, g, d, cell_registry) in rows {
            row_o.push(*o);
            row_g.push(*g);
            row_d.push(*d);
            registry.merge(cell_registry);
        }
        overhead.push(row_o);
        gini.push(row_g);
        delivery.push(row_d);
    }

    let cols = ["1 item/min", "2 items/min", "3 items/min"];
    print_table(
        "Fig. 4(a) — average transmission overhead per node [MB]",
        "nodes",
        &node_counts,
        &cols,
        &overhead,
        1,
    );
    print_table(
        "Fig. 4(b) — Gini coefficient of storage usage (paper: < 0.15)",
        "nodes",
        &node_counts,
        &cols,
        &gini,
        4,
    );
    print_table(
        "Fig. 4(c) — average data delivery time [s] (paper: ≤ ~4 s)",
        "nodes",
        &node_counts,
        &cols,
        &delivery,
        3,
    );

    if let Some(dir) = &opts.csv_dir {
        write_csv(
            dir,
            "fig4a_overhead_mb",
            "nodes",
            &node_counts,
            &cols,
            &overhead,
        );
        write_csv(dir, "fig4b_gini", "nodes", &node_counts, &cols, &gini);
        write_csv(
            dir,
            "fig4c_delivery_s",
            "nodes",
            &node_counts,
            &cols,
            &delivery,
        );
        eprintln!("csv written to {dir}/");
    }
    let max_gini = gini.iter().flatten().cloned().fold(0.0, f64::max);
    let max_delivery = delivery.iter().flatten().cloned().fold(0.0, f64::max);
    println!("\nsummary: max gini {max_gini:.4} (paper bound 0.15), max delivery {max_delivery:.2} s (paper ≈4 s)");
    write_bench_json("fig4", &opts, &mut registry);
}
