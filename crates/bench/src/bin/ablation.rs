//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! 1. **FDC weight `A`** — the paper fixes `A = 1000` "after some tests".
//!    Sweeping `A` exposes the fairness ↔ access-latency trade-off the
//!    weight buys.
//! 2. **UFL solver variants** — greedy vs greedy + local search vs exact
//!    (small instances): cost gap and runtime.
//! 3. **Recent-block allocation** — §IV-C on vs off: how much the grown
//!    caches speed up missing-block recovery under churn.
//! 4. **PoS `Q` term** — with vs without the stored-items factor in
//!    `R_i = S_i·Q_i·t·B`: does storage contribution actually buy mining
//!    share?
//! 7. **Fault sweep** — availability and repair traffic vs. node crash
//!    rate under random churn, with the UFL replica-repair sweep on/off.
//!
//! `cargo run --release -p edgechain-bench --bin ablation`

use edgechain_bench::{mean, parse_options, print_table, write_bench_json};
use edgechain_core::network::{EdgeNetwork, NetworkConfig};
use edgechain_core::pos::{run_round, Candidate};
use edgechain_core::Identity;
use edgechain_crypto::sha256;
use edgechain_facility::{improve, solve_exact, solve_greedy, UflInstance};
use edgechain_sim::{
    ChurnConfig, FaultPlan, NodeId, SimTime, Topology, TopologyConfig, Transport, TransportConfig,
};
use edgechain_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn ablate_fdc_weight(minutes: u64, seeds: u64) {
    let weights = [1.0f64, 10.0, 100.0, 1000.0, 10000.0];
    let mut rows = Vec::new();
    for &a in &weights {
        let mut gini = Vec::new();
        let mut delivery = Vec::new();
        let mut replicas = Vec::new();
        for seed in 0..seeds {
            let cfg = NetworkConfig {
                nodes: 25,
                sim_minutes: minutes,
                data_items_per_min: 2.0,
                request_interval_secs: 120,
                fdc_scale: a,
                seed: 0xAB1A + seed,
                ..NetworkConfig::default()
            };
            let r = EdgeNetwork::new(cfg).unwrap().run();
            gini.push(r.storage_gini);
            delivery.push(r.delivery.mean());
            replicas.push(r.mean_replicas);
        }
        rows.push(vec![mean(&gini), mean(&delivery), mean(&replicas)]);
    }
    print_table(
        "Ablation 1 — FDC weight A (paper: 1000). Fairness vs access cost.",
        "A",
        &weights,
        &["storage gini", "delivery [s]", "replicas/item"],
        &rows,
        3,
    );
}

fn ablate_solver(seeds: u64) {
    println!("\nAblation 2 — UFL solver variants (random FDC/RDC-shaped instances)");
    println!(
        "{:<10}{:>16}{:>16}{:>14}{:>16}{:>16}",
        "size", "greedy cost", "greedy+LS cost", "exact cost", "greedy µs", "LS µs"
    );
    let mut state = 0x5EED_u64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) as f64) / (u32::MAX as f64)
    };
    for &n in &[10usize, 12, 25, 50] {
        let mut g_cost = Vec::new();
        let mut ls_cost = Vec::new();
        let mut ex_cost = Vec::new();
        let mut g_time = Vec::new();
        let mut ls_time = Vec::new();
        for _ in 0..seeds.max(3) {
            let fdcs: Vec<f64> = (0..n).map(|_| next() * 0.05).collect();
            let costs: Vec<Vec<f64>> = (0..n)
                .map(|i| {
                    (0..n)
                        .map(|j| {
                            if i == j {
                                0.0
                            } else {
                                1.0 + (next() * 4.0).floor() + 2.0 * (30.0 / 70.0)
                            }
                        })
                        .collect()
                })
                .collect();
            let inst = UflInstance::from_costs(&fdcs, |i, j| costs[i][j]);
            let t0 = Instant::now();
            let mut sol = solve_greedy(&inst).unwrap();
            g_time.push(t0.elapsed().as_micros() as f64);
            g_cost.push(sol.cost);
            let t1 = Instant::now();
            improve(&inst, &mut sol);
            ls_time.push(t1.elapsed().as_micros() as f64);
            ls_cost.push(sol.cost);
            if n <= 12 {
                ex_cost.push(solve_exact(&inst).unwrap().cost);
            }
        }
        let exact_str = if ex_cost.is_empty() {
            "—".to_string()
        } else {
            format!("{:.2}", mean(&ex_cost))
        };
        println!(
            "{:<10}{:>16.2}{:>16.2}{:>14}{:>16.0}{:>16.0}",
            n,
            mean(&g_cost),
            mean(&ls_cost),
            exact_str,
            mean(&g_time),
            mean(&ls_time)
        );
    }
}

fn ablate_recent_blocks(minutes: u64, seeds: u64) {
    let mut rows = Vec::new();
    for &enabled in &[true, false] {
        let mut recoveries = Vec::new();
        let mut latency = Vec::new();
        let mut hops = Vec::new();
        for seed in 0..seeds {
            let cfg = NetworkConfig {
                nodes: 20,
                sim_minutes: minutes,
                topology: TopologyConfig {
                    mobility_range: 70.0, // heavy churn to force recoveries
                    ..TopologyConfig::default()
                },
                mobility_interval_secs: 30,
                recent_block_allocation: enabled,
                seed: 0xCAC4E + seed,
                ..NetworkConfig::default()
            };
            let r = EdgeNetwork::new(cfg).unwrap().run();
            recoveries.push(r.recoveries as f64);
            latency.push(r.recovery.mean());
            hops.push(r.recovery_hops.mean());
        }
        rows.push(vec![mean(&recoveries), mean(&latency), mean(&hops)]);
    }
    print_table(
        "Ablation 3 — recent-block allocation (§IV-C) under heavy churn",
        "allocation",
        &["enabled", "disabled"],
        &["recoveries", "mean latency [s]", "hops to holder"],
        &rows,
        3,
    );
}

fn ablate_pos_q_term() {
    // 10 nodes; nodes 0-4 store 20 items, nodes 5-9 store 1. Equal tokens.
    // With the Q term, heavy storers should win most blocks; without it,
    // wins should be uniform.
    let rounds = 600;
    let mut rows = Vec::new();
    for &use_q in &[true, false] {
        let candidates: Vec<Candidate> = (0..10)
            .map(|i| Candidate {
                account: Identity::from_seed(i).account(),
                tokens: 1,
                stored_items: if use_q && i < 5 { 20 } else { 1 },
            })
            .collect();
        let mut prev = sha256(b"ablation-q");
        let mut heavy_wins = 0u64;
        let mut interval = 0u64;
        for _ in 0..rounds {
            let out = run_round(&prev, &candidates, 60);
            if out.winner < 5 {
                heavy_wins += 1;
            }
            interval += out.delay_secs;
            prev = out.new_pos_hash;
        }
        rows.push(vec![
            100.0 * heavy_wins as f64 / rounds as f64,
            interval as f64 / rounds as f64,
        ]);
    }
    print_table(
        "Ablation 4 — PoS storage term Q_i (heavy storers = nodes 0–4)",
        "R_i formula",
        &["S·Q·t·B", "S·t·B (no Q)"],
        &["heavy-storer win %", "mean interval [s]"],
        &rows,
        1,
    );
}

fn ablate_raft_overhead(minutes: u64) {
    // The paper's §VII: raft for general consensus "transmits a large
    // number of heartbeat messages". Quantify the extra traffic it adds to
    // an otherwise identical run.
    println!("\nAblation 5 — raft general-information consensus overhead");
    let mut rows = Vec::new();
    for &enabled in &[false, true] {
        let cfg = NetworkConfig {
            nodes: 15,
            sim_minutes: minutes.min(60),
            raft_consensus: enabled,
            seed: 0x4A57,
            ..NetworkConfig::default()
        };
        let r = EdgeNetwork::new(cfg).unwrap().run();
        rows.push((enabled, r));
    }
    let (_, off) = &rows[0];
    let (_, on) = &rows[1];
    println!(
        "  raft off: {:.1} MB/node total transfer",
        off.mean_node_overhead_mb
    );
    println!(
        "  raft on : {:.1} MB/node total transfer; {} raft messages \
         ({} heartbeats = {:.0}%), {:.2} MB raft bytes",
        on.mean_node_overhead_mb,
        on.raft_messages,
        on.raft_heartbeats,
        100.0 * on.raft_heartbeats as f64 / on.raft_messages.max(1) as f64,
        on.raft_bytes as f64 / 1e6,
    );
    println!(
        "  raft adds {:+.1}% per-node overhead — the cost the paper's \
         conclusion flags",
        100.0 * (on.mean_node_overhead_mb - off.mean_node_overhead_mb) / off.mean_node_overhead_mb
    );
}

fn ablate_probabilistic_flooding() {
    // Block dissemination uses flooding; gossip-style probabilistic
    // rebroadcast is the classic broadcast-storm mitigation. Sweep the
    // rebroadcast probability and measure reach vs transmissions.
    println!("\nAblation 6 — probabilistic flooding (broadcast storm mitigation)");
    println!(
        "{:<8}{:>14}{:>18}{:>18}",
        "p", "reach %", "transmissions", "vs flood tx %"
    );
    let mut rng = StdRng::seed_from_u64(0xF100D);
    let trials = 20;
    // Baseline: full flooding.
    let mut flood_tx = 0u64;
    let mut topos = Vec::new();
    for _ in 0..trials {
        let topo = Topology::random_connected(30, TopologyConfig::default(), &mut rng).unwrap();
        let mut tr = Transport::new(TransportConfig::default());
        tr.broadcast(&topo, NodeId(0), 1000, SimTime::ZERO);
        flood_tx += tr.stats().total_sent() / 1000;
        topos.push(topo);
    }
    for p in [1.0f64, 0.9, 0.7, 0.5, 0.3] {
        let mut reached = 0u64;
        let mut tx = 0u64;
        for topo in &topos {
            let mut tr = Transport::new(TransportConfig::default());
            let out = tr.broadcast_probabilistic(topo, NodeId(0), 1000, SimTime::ZERO, p, &mut rng);
            reached += out.len() as u64;
            tx += tr.stats().total_sent() / 1000;
        }
        println!(
            "{:<8.1}{:>13.1}%{:>18}{:>17.1}%",
            p,
            100.0 * reached as f64 / (trials as f64 * 29.0),
            tx,
            100.0 * tx as f64 / flood_tx as f64
        );
    }
}

fn ablate_fault_sweep(minutes: u64, seeds: u64) {
    // Degradation curve: random node churn at increasing crash rates.
    // Availability should stay high while the UFL repair sweep keeps
    // replacing lost replicas; turning repair off shows what it buys.
    let minutes = minutes.min(30);
    let rates = [0.0f64, 0.25, 0.5, 1.0];
    println!("\nAblation 7 — fault sweep: availability & repair traffic vs crash rate");
    println!(
        "{:<14}{:>14}{:>16}{:>12}{:>14}{:>16}",
        "crashes/min", "avail (rep)", "avail (norep)", "repairs", "retries", "under-repl [s]"
    );
    for &rate in &rates {
        let mut avail_rep = Vec::new();
        let mut avail_norep = Vec::new();
        let mut repairs = Vec::new();
        let mut retries = Vec::new();
        let mut under = Vec::new();
        for seed in 0..seeds {
            let plan = |s: u64| {
                FaultPlan::random_churn(
                    16,
                    ChurnConfig {
                        crashes_per_min: rate,
                        mean_downtime_secs: 240.0,
                        max_concurrent_down: 5,
                        horizon: SimTime::from_secs(minutes * 60),
                    },
                    &mut StdRng::seed_from_u64(0xFA17 + s),
                )
            };
            let base = NetworkConfig {
                nodes: 16,
                sim_minutes: minutes,
                data_items_per_min: 2.0,
                request_interval_secs: 60,
                fetch_retries: 5,
                retry_backoff_ms: 4_000,
                seed: 0xFA17 + seed,
                ..NetworkConfig::default()
            };
            let with_repair = NetworkConfig {
                fault_plan: plan(seed),
                ..base.clone()
            };
            let without_repair = NetworkConfig {
                fault_plan: plan(seed),
                replica_repair: false,
                ..base
            };
            let r = EdgeNetwork::new(with_repair).unwrap().run();
            let n = EdgeNetwork::new(without_repair).unwrap().run();
            avail_rep.push(r.availability);
            avail_norep.push(n.availability);
            repairs.push(r.repairs_triggered as f64);
            retries.push(r.retries as f64);
            under.push(r.under_replicated_item_seconds);
        }
        println!(
            "{:<14.2}{:>14.3}{:>16.3}{:>12.1}{:>14.1}{:>16.1}",
            rate,
            mean(&avail_rep),
            mean(&avail_norep),
            mean(&repairs),
            mean(&retries),
            mean(&under)
        );
    }
}

fn main() {
    let opts = parse_options(60, 2);
    telemetry::enable();
    println!(
        "Design ablations — {} min per network run, {} seeds",
        opts.minutes, opts.seeds
    );
    ablate_fdc_weight(opts.minutes, opts.seeds);
    ablate_solver(opts.seeds);
    ablate_recent_blocks(opts.minutes, opts.seeds);
    ablate_pos_q_term();
    ablate_raft_overhead(opts.minutes);
    ablate_probabilistic_flooding();
    ablate_fault_sweep(opts.minutes, opts.seeds);
    let mut session = telemetry::finish().unwrap_or_default();
    write_bench_json("ablation", &opts, &mut session.registry);
}
