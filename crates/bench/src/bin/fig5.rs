//! Reproduces **Fig. 5** — performance under different placement
//! strategies.
//!
//! The paper compares the proposed optimal (UFL) data placement against a
//! baseline at 1 data item/minute across node counts. The figure caption
//! names the baseline "no proactive store"; the text describes a random
//! placement "with the same number of replicas". We run all three:
//!
//! * `optimal`      — the paper's allocation (FDC + RDC via UFL),
//! * `random`       — same replica count, uniformly random storers,
//! * `no-proactive` — nothing stored proactively; consumers fetch from the
//!   producer.
//!
//! Prints the figure's two panels: (a) average data delivery time and
//! (b) average per-node transmission overhead.
//!
//! `cargo run --release -p edgechain-bench --bin fig5` (add `--full` for
//! 500-minute runs; default 120 minutes, 3 seeds).

use edgechain_bench::{mean, parse_options, print_table, write_bench_json, write_csv};
use edgechain_core::alloc::Placement;
use edgechain_core::network::{EdgeNetwork, NetworkConfig};
use edgechain_telemetry as telemetry;

fn main() {
    let opts = parse_options(120, 3);
    telemetry::enable();
    let node_counts = [10usize, 20, 30, 40, 50];
    let strategies = [
        Placement::Optimal,
        Placement::Random,
        Placement::NoProactive,
    ];
    println!(
        "Fig. 5 reproduction — {} min simulated, {} seeds per cell, 1 item/min",
        opts.minutes, opts.seeds
    );

    let mut delivery = Vec::new();
    let mut overhead = Vec::new();
    for &n in &node_counts {
        let mut row_d = Vec::new();
        let mut row_o = Vec::new();
        for &placement in &strategies {
            let mut d = Vec::new();
            let mut o = Vec::new();
            for seed in 0..opts.seeds {
                let cfg = NetworkConfig {
                    nodes: n,
                    data_items_per_min: 1.0,
                    sim_minutes: opts.minutes,
                    request_interval_secs: 120,
                    placement,
                    seed: 0xF150_0000 + seed * 1000 + n as u64,
                    ..NetworkConfig::default()
                };
                let r = EdgeNetwork::new(cfg).expect("connected topology").run();
                d.push(r.delivery.mean());
                o.push(r.mean_node_overhead_mb);
            }
            row_d.push(mean(&d));
            row_o.push(mean(&o));
        }
        delivery.push(row_d);
        overhead.push(row_o);
        eprintln!("  … {n} nodes done");
    }

    let cols = ["optimal", "random", "no-proactive"];
    print_table(
        "Fig. 5(a) — average data delivery time [s]",
        "nodes",
        &node_counts,
        &cols,
        &delivery,
        3,
    );
    print_table(
        "Fig. 5(b) — average transmission overhead per node [MB]",
        "nodes",
        &node_counts,
        &cols,
        &overhead,
        1,
    );

    if let Some(dir) = &opts.csv_dir {
        write_csv(
            dir,
            "fig5a_delivery_s",
            "nodes",
            &node_counts,
            &cols,
            &delivery,
        );
        write_csv(
            dir,
            "fig5b_overhead_mb",
            "nodes",
            &node_counts,
            &cols,
            &overhead,
        );
        eprintln!("csv written to {dir}/");
    }

    // Headline ratios.
    let opt: Vec<f64> = delivery.iter().map(|r| r[0]).collect();
    let rnd: Vec<f64> = delivery.iter().map(|r| r[1]).collect();
    let nop: Vec<f64> = delivery.iter().map(|r| r[2]).collect();
    println!(
        "\nsummary: optimal vs random delivery {:+.1}%, optimal vs no-proactive {:+.1}%",
        100.0 * (mean(&opt) - mean(&rnd)) / mean(&rnd),
        100.0 * (mean(&opt) - mean(&nop)) / mean(&nop),
    );
    let o_opt: Vec<f64> = overhead.iter().map(|r| r[0]).collect();
    let o_rnd: Vec<f64> = overhead.iter().map(|r| r[1]).collect();
    println!(
        "         optimal vs random overhead {:+.1}% (paper: 'almost the same')",
        100.0 * (mean(&o_opt) - mean(&o_rnd)) / mean(&o_rnd),
    );
    let mut session = telemetry::finish().unwrap_or_default();
    write_bench_json("fig5", &opts, &mut session.registry);
}
