//! Reproduces **Fig. 6** — remaining battery vs. blocks mined, PoW vs PoS.
//!
//! Paper setting: a Samsung Galaxy S8 mines blocks for 84 minutes with PoW
//! at difficulty "4 zeros at the beginning of the block hash" (~25 s per
//! block) and separately with the proposed PoS tuned to the same 25 s
//! average block time. The paper reports PoW consuming >50 % battery over
//! 84 minutes (~4 blocks per 1 %) and PoS ~11 blocks per 1 % — the "64 %
//! less battery" headline.
//!
//! We substitute the phone with the calibrated Galaxy-S8 energy model
//! (`edgechain-energy`): PoW really searches SHA-256 nonces and charges
//! per evaluated hash; PoS charges one target check per second. The
//! printed series is the figure's two curves.
//!
//! `cargo run --release -p edgechain-bench --bin fig6`
//! (`--minutes N` to change the 84-minute horizon).

use edgechain_bench::{parse_options, write_bench_json};
use edgechain_core::pos::{run_round, Candidate};
use edgechain_core::pow::{mine, Difficulty};
use edgechain_core::Identity;
use edgechain_crypto::sha256;
use edgechain_energy::{Battery, DeviceProfile};
use edgechain_telemetry as telemetry;

struct Sample {
    blocks: u64,
    battery_percent: f64,
}

/// PoW run: actually search nonces at the paper's difficulty 4 (expected
/// 65536 hashes ≈ 25 s of phone hashing), charging per real attempt.
fn run_pow(minutes: u64, profile: &DeviceProfile) -> Vec<Sample> {
    let mut battery = Battery::full(profile);
    let mut samples = vec![Sample {
        blocks: 0,
        battery_percent: 100.0,
    }];
    let mut prev = sha256(b"fig6-pow-genesis");
    let mut elapsed_secs = 0.0;
    let mut blocks: u64 = 0;
    while elapsed_secs < (minutes * 60) as f64 && !battery.is_empty() {
        let header = [prev.as_bytes().as_slice(), &blocks.to_be_bytes()].concat();
        let sol = mine(&header, Difficulty::PAPER, 0, 1 << 24)
            .expect("difficulty 4 found within 16M attempts whp");
        battery.consume(profile.pow_hash_energy * sol.attempts as f64);
        // The paper's observed pace: ~25 s per block at this difficulty.
        elapsed_secs += 25.0 * sol.attempts as f64 / Difficulty::PAPER.expected_attempts() as f64;
        blocks += 1;
        prev = sol.hash;
        samples.push(Sample {
            blocks,
            battery_percent: battery.percent(),
        });
    }
    samples
}

/// PoS run: same 25 s expected block time, one target check per second.
fn run_pos(minutes: u64, profile: &DeviceProfile) -> Vec<Sample> {
    let mut battery = Battery::full(profile);
    let mut samples = vec![Sample {
        blocks: 0,
        battery_percent: 100.0,
    }];
    let candidates: Vec<Candidate> = (0..8)
        .map(|i| Candidate {
            account: Identity::from_seed(i).account(),
            tokens: 2,
            stored_items: 5,
        })
        .collect();
    let mut prev = sha256(b"fig6-pos-genesis");
    let mut elapsed_secs = 0u64;
    let mut blocks = 0;
    while elapsed_secs < minutes * 60 && !battery.is_empty() {
        let out = run_round(&prev, &candidates, 25);
        battery.consume(profile.pos_check_energy * out.delay_secs as f64);
        elapsed_secs += out.delay_secs;
        blocks += 1;
        prev = out.new_pos_hash;
        samples.push(Sample {
            blocks,
            battery_percent: battery.percent(),
        });
    }
    samples
}

fn print_series(name: &str, samples: &[Sample]) {
    println!("\n{name}: blocks mined → remaining battery [%]");
    // Print every ~10th sample to keep the series readable.
    let step = (samples.len() / 20).max(1);
    for s in samples.iter().step_by(step) {
        let bar = "#".repeat((s.battery_percent / 2.0) as usize);
        println!(
            "  {:>4} blocks  {:>6.2}%  {bar}",
            s.blocks, s.battery_percent
        );
    }
    let last = samples.last().unwrap();
    println!(
        "  final: {} blocks, {:.2}% remaining",
        last.blocks, last.battery_percent
    );
}

fn main() {
    let opts = parse_options(84, 1);
    telemetry::enable();
    let profile = DeviceProfile::galaxy_s8();
    println!(
        "Fig. 6 reproduction — {} on a {}-minute horizon, 25 s target block time",
        profile.name, opts.minutes
    );

    let pow = run_pow(opts.minutes, &profile);
    let pos = run_pos(opts.minutes, &profile);
    print_series("PoW (difficulty: 4 hex zeros, real nonce search)", &pow);
    print_series("PoS (proposed, once-per-second target checks)", &pos);

    let pow_last = pow.last().unwrap();
    let pos_last = pos.last().unwrap();
    let pow_per_pct = pow_last.blocks as f64 / (100.0 - pow_last.battery_percent);
    let pos_per_pct = pos_last.blocks as f64 / (100.0 - pos_last.battery_percent);
    println!("\nsummary:");
    println!("  PoW: {pow_per_pct:.1} blocks per 1% battery (paper ≈ 4)");
    println!("  PoS: {pos_per_pct:.1} blocks per 1% battery (paper ≈ 11)");
    let pow_per_block = (100.0 - pow_last.battery_percent) / pow_last.blocks as f64;
    let pos_per_block = (100.0 - pos_last.battery_percent) / pos_last.blocks as f64;
    println!(
        "  energy per block: PoS uses {:.0}% less than PoW (paper headline: 64% less)",
        100.0 * (1.0 - pos_per_block / pow_per_block)
    );
    let mut session = telemetry::finish().unwrap_or_default();
    write_bench_json("fig6", &opts, &mut session.registry);
}
