//! Shared helpers for the figure-regeneration binaries.
//!
//! Every table and figure in the paper's evaluation (§VI) has a dedicated
//! binary in `src/bin`:
//!
//! | Binary | Reproduces | Series |
//! |---|---|---|
//! | `fig4` | Fig. 4(a)(b)(c) | overhead / Gini / delivery vs node count × data rate |
//! | `fig5` | Fig. 5(a)(b) | delivery / overhead vs node count × placement strategy |
//! | `fig6` | Fig. 6 | remaining battery vs blocks mined, PoW vs PoS |
//! | `ablation` | design-choice ablations | FDC weight `A`, solver variants, recent-cache, PoS `Q` term |
//! | `perf` | allocation fast-path benchmark | cached vs one-shot solver, speedup per block |
//!
//! Binaries accept `--full` for the paper-scale 500-minute runs and
//! default to shorter, shape-preserving runs (see each binary's header).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;

/// Options shared by the figure binaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FigureOptions {
    /// Simulated minutes per run.
    pub minutes: u64,
    /// Seeds averaged per cell (the paper averages 2 simulations).
    pub seeds: u64,
    /// Directory to also write each table as a CSV file (`--csv DIR`).
    pub csv_dir: Option<String>,
}

/// Parses command-line options: `--full` selects the paper-scale 500-minute
/// runs; `--minutes N` and `--seeds N` override individually.
pub fn parse_options(default_minutes: u64, default_seeds: u64) -> FigureOptions {
    let args: Vec<String> = std::env::args().collect();
    let mut opts = FigureOptions {
        minutes: default_minutes,
        seeds: default_seeds,
        csv_dir: None,
    };
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => {
                opts.minutes = 500;
                opts.seeds = default_seeds.max(2);
            }
            "--minutes" => {
                i += 1;
                opts.minutes = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.minutes);
            }
            "--seeds" => {
                i += 1;
                opts.seeds = args
                    .get(i)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(opts.seeds);
            }
            "--csv" => {
                i += 1;
                opts.csv_dir = args.get(i).cloned();
            }
            _ => {}
        }
        i += 1;
    }
    opts
}

/// Prints a table: one row per `row_labels` entry, one column per
/// `col_labels` entry.
pub fn print_table<R: Display, C: Display>(
    title: &str,
    row_header: &str,
    row_labels: &[R],
    col_labels: &[C],
    cells: &[Vec<f64>],
    precision: usize,
) {
    println!("\n{title}");
    print!("{:<14}", row_header);
    for c in col_labels {
        print!("{:>18}", format!("{c}"));
    }
    println!();
    for (r, row) in row_labels.iter().zip(cells) {
        print!("{:<14}", format!("{r}"));
        for v in row {
            print!("{:>18}", format!("{v:.precision$}"));
        }
        println!();
    }
}

/// Writes a table as `dir/name.csv` (row label in the first column).
/// Errors are reported to stderr and swallowed — a failed CSV write must
/// not abort a long figure run.
pub fn write_csv<R: Display, C: Display>(
    dir: &str,
    name: &str,
    row_header: &str,
    row_labels: &[R],
    col_labels: &[C],
    cells: &[Vec<f64>],
) {
    let mut out = String::new();
    out.push_str(row_header);
    for c in col_labels {
        out.push(',');
        out.push_str(&format!("{c}"));
    }
    out.push('\n');
    for (r, row) in row_labels.iter().zip(cells) {
        out.push_str(&format!("{r}"));
        for v in row {
            out.push_str(&format!(",{v}"));
        }
        out.push('\n');
    }
    let path = std::path::Path::new(dir).join(format!("{name}.csv"));
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|_| std::fs::write(&path, out)) {
        eprintln!("warning: could not write {}: {e}", path.display());
    }
}

/// Writes `BENCH_<name>.json`: run parameters plus the full telemetry
/// registry dump (deterministic counters/gauges/histograms and the
/// wall-clock `*_ns` profile), so the perf trajectory of every figure
/// binary is machine-readable from this PR onward. Errors are reported to
/// stderr and swallowed, like [`write_csv`].
pub fn write_bench_json(
    name: &str,
    opts: &FigureOptions,
    registry: &mut edgechain_telemetry::Registry,
) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"bench\": \"{name}\",\n"));
    out.push_str(&format!("  \"minutes\": {},\n", opts.minutes));
    out.push_str(&format!("  \"seeds\": {},\n", opts.seeds));
    out.push_str(&format!(
        "  \"sim_ms_per_run\": {},\n",
        opts.minutes * 60_000
    ));
    // The registry dump is itself a JSON object; indent it one level.
    let registry_json = registry.to_json();
    out.push_str("  \"registry\": ");
    for (i, line) in registry_json.trim_end().lines().enumerate() {
        if i > 0 {
            out.push_str("\n  ");
        }
        out.push_str(line);
    }
    out.push_str("\n}\n");
    let path = format!("BENCH_{name}.json");
    if let Err(e) = std::fs::write(&path, out) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        println!("\nwrote {path}");
    }
}

/// Mean of a slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn default_options() {
        let opts = parse_options(100, 2);
        assert_eq!(opts.minutes, 100);
        assert_eq!(opts.seeds, 2);
        assert_eq!(opts.csv_dir, None);
    }

    #[test]
    fn csv_writer_roundtrip() {
        let dir = std::env::temp_dir().join("edgechain-bench-csv-test");
        let dir = dir.to_str().unwrap();
        write_csv(
            dir,
            "unit",
            "nodes",
            &[10, 20],
            &["a", "b"],
            &[vec![1.5, 2.5], vec![3.0, 4.0]],
        );
        let content = std::fs::read_to_string(format!("{dir}/unit.csv")).unwrap();
        assert_eq!(content, "nodes,a,b\n10,1.5,2.5\n20,3,4\n");
        let _ = std::fs::remove_dir_all(dir);
    }
}
