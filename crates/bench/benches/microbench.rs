//! Criterion microbenchmarks for the hot operations of every subsystem:
//! hashing, signing, Merkle commitment, UFL solving at evaluation sizes,
//! PoS round execution, PoW mining steps, Gini computation, and the
//! end-to-end per-block allocation path.
//!
//! `cargo bench -p edgechain-bench`

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use edgechain_core::alloc::{select_storers, Placement};
use edgechain_core::pos::{run_round, Candidate};
use edgechain_core::pow::{mine, Difficulty};
use edgechain_core::storage::NodeStorage;
use edgechain_core::Identity;
use edgechain_crypto::{sha256, KeyPair, MerkleTree};
use edgechain_facility::{solve, solve_greedy, UflInstance};
use edgechain_sim::{gini, Topology, TopologyConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_sha256(c: &mut Criterion) {
    let mut group = c.benchmark_group("crypto/sha256");
    for size in [64usize, 1024, 65536] {
        let data = vec![0xABu8; size];
        group.throughput(Throughput::Bytes(size as u64));
        group.bench_function(format!("{size}B"), |b| {
            b.iter(|| sha256(std::hint::black_box(&data)))
        });
    }
    group.finish();
}

fn bench_signatures(c: &mut Criterion) {
    let kp = KeyPair::from_seed(1);
    let msg = b"metadata payload for signing benchmarks";
    let sig = kp.sign(msg);
    c.bench_function("crypto/sign", |b| {
        b.iter(|| kp.sign(std::hint::black_box(msg)))
    });
    c.bench_function("crypto/verify", |b| {
        b.iter(|| kp.public_key().verify(std::hint::black_box(msg), &sig))
    });
}

fn bench_merkle(c: &mut Criterion) {
    let leaves: Vec<Vec<u8>> = (0..256u32).map(|i| i.to_be_bytes().to_vec()).collect();
    c.bench_function("crypto/merkle_256_leaves", |b| {
        b.iter(|| MerkleTree::from_leaves(std::hint::black_box(&leaves)))
    });
}

fn random_instance(n: usize, seed: u64) -> UflInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let fdcs: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 0.05).collect();
    let costs: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            (0..n)
                .map(|j| {
                    if i == j {
                        0.0
                    } else {
                        1.0 + rng.gen_range(0..5) as f64
                    }
                })
                .collect()
        })
        .collect();
    UflInstance::from_costs(&fdcs, |i, j| costs[i][j])
}

fn bench_ufl(c: &mut Criterion) {
    let mut group = c.benchmark_group("facility/solve");
    for n in [10usize, 25, 50] {
        let inst = random_instance(n, n as u64);
        group.bench_function(format!("greedy_n{n}"), |b| {
            b.iter(|| solve_greedy(std::hint::black_box(&inst)))
        });
        group.bench_function(format!("greedy+ls_n{n}"), |b| {
            b.iter(|| solve(std::hint::black_box(&inst)))
        });
    }
    group.finish();
}

fn bench_pos_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("core/pos_round");
    for n in [10usize, 50] {
        let candidates: Vec<Candidate> = (0..n)
            .map(|i| Candidate {
                account: Identity::from_seed(i as u64).account(),
                tokens: 1 + (i as u64 % 7),
                stored_items: 1 + (i as u64 % 30),
            })
            .collect();
        let prev = sha256(b"bench");
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| run_round(std::hint::black_box(&prev), &candidates, 60))
        });
    }
    group.finish();
}

fn bench_pow(c: &mut Criterion) {
    // One expected block at difficulty 2 ≈ 256 hashes.
    c.bench_function("core/pow_block_difficulty2", |b| {
        let mut round = 0u64;
        b.iter_batched(
            || {
                round += 1;
                round
            },
            |r| mine(&r.to_be_bytes(), Difficulty::new(2), 0, 1 << 20),
            BatchSize::SmallInput,
        )
    });
}

fn bench_allocation_path(c: &mut Criterion) {
    // The per-item allocation a miner runs: build + solve on live state.
    let mut group = c.benchmark_group("core/select_storers");
    for n in [10usize, 25, 50] {
        let mut rng = StdRng::seed_from_u64(7);
        let topo = Topology::random_connected(n, TopologyConfig::default(), &mut rng).unwrap();
        let mut storage = vec![NodeStorage::paper_default(); n];
        // Partially filled stores, as mid-simulation.
        for (i, s) in storage.iter_mut().enumerate() {
            for k in 0..(i % 40) as u64 {
                s.store_data(edgechain_core::DataId(i as u64 * 1000 + k));
            }
        }
        group.bench_function(format!("n{n}"), |b| {
            b.iter(|| {
                select_storers(
                    Placement::Optimal,
                    std::hint::black_box(&topo),
                    &storage,
                    &mut rng,
                )
            })
        });
    }
    group.finish();
}

fn bench_gini(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let values: Vec<f64> = (0..10_000).map(|_| rng.gen::<f64>() * 250.0).collect();
    c.bench_function("sim/gini_10k", |b| {
        b.iter(|| gini(std::hint::black_box(&values)))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_signatures,
    bench_merkle,
    bench_ufl,
    bench_pos_round,
    bench_pow,
    bench_allocation_path,
    bench_gini,
);
criterion_main!(benches);
