//! Typed metrics registry: counters, gauges, and histograms under
//! hierarchical dotted names (`ufl.open_facilities`, `transport.retries`).
//!
//! The registry keeps two strictly separated namespaces:
//!
//! * **Deterministic metrics** — counters/gauges/histograms fed only from
//!   sim-clock-derived quantities. These appear in [`RegistrySnapshot`]
//!   (and hence in `RunReport.telemetry`) and are bit-identical across
//!   reruns of the same seed.
//! * **Wall-clock profile** — `*_ns` timings recorded via
//!   [`Registry::record_wall_ns`] (e.g. `ufl.solve_ns`). These answer
//!   "where did the *host* time go", vary run to run by nature, and are
//!   exported only through [`Registry::to_json`] (the `BENCH_*.json`
//!   dumps), never through the deterministic snapshot.
//!
//! All maps are `BTreeMap`s so every export iterates in sorted-name order.

use crate::json::{write_f64, write_str};
use crate::metrics::{RunningStats, SampleSet};
use std::collections::BTreeMap;

/// A histogram metric: Welford summary stats plus the exact sample set for
/// quantiles and bucketed views.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    stats: RunningStats,
    samples: SampleSet,
}

impl Histogram {
    /// Records one observation into both views.
    pub fn record(&mut self, value: f64) {
        self.stats.record(value);
        self.samples.record(value);
    }

    /// Summary statistics (count/mean/stddev/min/max).
    pub fn stats(&self) -> &RunningStats {
        &self.stats
    }

    /// Exact samples (quantiles, `histogram(edges)` buckets).
    pub fn samples_mut(&mut self) -> &mut SampleSet {
        &mut self.samples
    }

    /// Folds another histogram's observations into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.stats.merge(&other.stats);
        self.samples.merge(&other.samples);
    }

    fn summary(&mut self) -> MetricSummary {
        MetricSummary::Histogram {
            count: self.stats.count(),
            mean: self.stats.mean(),
            stddev: self.stats.stddev(),
            min: self.stats.min().unwrap_or(0.0),
            max: self.stats.max().unwrap_or(0.0),
            p50: self.samples.p50().unwrap_or(0.0),
            p95: self.samples.p95().unwrap_or(0.0),
            p99: self.samples.p99().unwrap_or(0.0),
        }
    }
}

/// The metric registry backing a telemetry session.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    wall_ns: BTreeMap<&'static str, RunningStats>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Adds `n` to counter `name` (creating it at zero).
    pub fn counter_add(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    /// Sets gauge `name` to `value`.
    pub fn gauge_set(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    /// Adds `delta` to gauge `name` (creating it at zero).
    pub fn gauge_add(&mut self, name: &'static str, delta: f64) {
        *self.gauges.entry(name).or_insert(0.0) += delta;
    }

    /// Records one observation into histogram `name`.
    pub fn record(&mut self, name: &'static str, value: f64) {
        self.histograms.entry(name).or_default().record(value);
    }

    /// Records a wall-clock duration (nanoseconds) under `name`. By
    /// convention `name` ends in `_ns`. Kept out of deterministic exports.
    pub fn record_wall_ns(&mut self, name: &'static str, ns: u64) {
        self.wall_ns.entry(name).or_default().record(ns as f64);
    }

    /// Current value of counter `name`, or 0 if never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Histogram `name`, if any observation was recorded.
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// Wall-clock stats recorded under `name`, if any.
    pub fn wall_ns(&self, name: &str) -> Option<&RunningStats> {
        self.wall_ns.get(name)
    }

    /// Iterates every wall-clock `*_ns` entry in sorted-name order. Lets
    /// bench binaries aggregate profile families (e.g. sum all `ufl.*_ns`
    /// time) without reaching into the JSON dump.
    pub fn wall_ns_entries(&self) -> impl Iterator<Item = (&'static str, &RunningStats)> + '_ {
        self.wall_ns.iter().map(|(&name, stats)| (name, stats))
    }

    /// Folds `other` into this registry: counters add, gauges take
    /// `other`'s value when present (last-merge-wins, deterministic in
    /// merge order), histograms and wall-clock stats merge their
    /// observations.
    ///
    /// This is how parallel bench sweeps combine per-worker telemetry
    /// sessions: each worker records into its own thread-local registry,
    /// and the driver merges them **in index order** so counter totals are
    /// identical to a serial run. (Histogram mean/stddev come from a
    /// Welford merge, whose floating-point results depend on merge
    /// grouping — deterministic for a fixed worker count, but not
    /// bit-identical to the serial accumulation.)
    pub fn merge(&mut self, other: &Registry) {
        for (&name, &v) in &other.counters {
            self.counter_add(name, v);
        }
        for (&name, &v) in &other.gauges {
            self.gauge_set(name, v);
        }
        for (&name, hist) in &other.histograms {
            self.histograms.entry(name).or_default().merge(hist);
        }
        for (&name, stats) in &other.wall_ns {
            self.wall_ns.entry(name).or_default().merge(stats);
        }
    }

    /// Deterministic snapshot: every counter, gauge, and histogram summary
    /// in sorted-name order. Wall-clock `*_ns` stats are deliberately
    /// excluded so the snapshot is bit-identical across seeded reruns.
    pub fn snapshot(&mut self) -> RegistrySnapshot {
        let mut entries = Vec::new();
        for (&name, &v) in &self.counters {
            entries.push((name.to_string(), MetricSummary::Counter(v)));
        }
        for (&name, &v) in &self.gauges {
            entries.push((name.to_string(), MetricSummary::Gauge(v)));
        }
        for (&name, hist) in self.histograms.iter_mut() {
            entries.push((name.to_string(), hist.summary()));
        }
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        RegistrySnapshot { entries }
    }

    /// Full JSON dump — deterministic metrics *plus* the wall-clock `*_ns`
    /// profile — for `BENCH_<name>.json` files. Sorted-name order
    /// throughout; only the `wall_ns` section varies across reruns.
    pub fn to_json(&mut self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        let mut first = true;
        for (&name, &v) in &self.counters {
            push_sep(&mut out, &mut first);
            write_str(&mut out, name);
            out.push_str(&format!(": {v}"));
        }
        out.push_str("},\n  \"gauges\": {");
        let mut first = true;
        for (&name, &v) in &self.gauges {
            push_sep(&mut out, &mut first);
            write_str(&mut out, name);
            out.push_str(": ");
            write_f64(&mut out, v);
        }
        out.push_str("},\n  \"histograms\": {");
        let mut first = true;
        let names: Vec<&'static str> = self.histograms.keys().copied().collect();
        for name in names {
            let summary = self.histograms.get_mut(name).unwrap().summary();
            push_sep(&mut out, &mut first);
            write_str(&mut out, name);
            out.push_str(": ");
            summary.write_json(&mut out);
        }
        out.push_str("},\n  \"wall_ns\": {");
        let mut first = true;
        for (&name, stats) in &self.wall_ns {
            push_sep(&mut out, &mut first);
            write_str(&mut out, name);
            out.push_str(&format!(": {{\"count\": {}, \"sum\": ", stats.count()));
            write_f64(&mut out, stats.sum());
            out.push_str(", \"mean\": ");
            write_f64(&mut out, stats.mean());
            out.push_str(", \"min\": ");
            write_f64(&mut out, stats.min().unwrap_or(0.0));
            out.push_str(", \"max\": ");
            write_f64(&mut out, stats.max().unwrap_or(0.0));
            out.push('}');
        }
        out.push_str("}\n}\n");
        out
    }
}

fn push_sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(", ");
    }
}

/// One metric's summarized value in a [`RegistrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSummary {
    /// Monotonic event count.
    Counter(u64),
    /// Last-set (or accumulated) level.
    Gauge(f64),
    /// Distribution summary from a [`Histogram`].
    Histogram {
        count: u64,
        mean: f64,
        stddev: f64,
        min: f64,
        max: f64,
        p50: f64,
        p95: f64,
        p99: f64,
    },
}

impl MetricSummary {
    fn write_json(&self, out: &mut String) {
        match self {
            MetricSummary::Counter(v) => out.push_str(&format!("{v}")),
            MetricSummary::Gauge(v) => write_f64(out, *v),
            MetricSummary::Histogram {
                count,
                mean,
                stddev,
                min,
                max,
                p50,
                p95,
                p99,
            } => {
                out.push_str(&format!("{{\"count\": {count}"));
                for (key, v) in [
                    ("mean", mean),
                    ("stddev", stddev),
                    ("min", min),
                    ("max", max),
                    ("p50", p50),
                    ("p95", p95),
                    ("p99", p99),
                ] {
                    out.push_str(&format!(", \"{key}\": "));
                    write_f64(out, *v);
                }
                out.push('}');
            }
        }
    }
}

/// Deterministic, ordered summary of a [`Registry`] — what lands in
/// `RunReport.telemetry`. Sorted by metric name; never includes wall-clock
/// timings, so it is equal across reruns of the same seed.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RegistrySnapshot {
    /// `(name, summary)` pairs, sorted by name.
    pub entries: Vec<(String, MetricSummary)>,
}

impl RegistrySnapshot {
    /// Looks up a metric by exact name.
    pub fn get(&self, name: &str) -> Option<&MetricSummary> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// Counter value by name, or `None` if absent or not a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)? {
            MetricSummary::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Renders the snapshot as JSON (one sorted object, histogram
    /// summaries inline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, summary) in &self.entries {
            push_sep(&mut out, &mut first);
            write_str(&mut out, name);
            out.push_str(": ");
            summary.write_json(&mut out);
        }
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_histograms() {
        let mut r = Registry::new();
        r.counter_add("a.hits", 2);
        r.counter_add("a.hits", 3);
        r.gauge_set("b.level", 1.5);
        r.gauge_add("b.level", 0.5);
        r.record("c.lat", 10.0);
        r.record("c.lat", 30.0);
        assert_eq!(r.counter("a.hits"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauge("b.level"), Some(2.0));
        let snap = r.snapshot();
        assert_eq!(snap.counter("a.hits"), Some(5));
        assert_eq!(snap.get("b.level"), Some(&MetricSummary::Gauge(2.0)));
        match snap.get("c.lat").unwrap() {
            MetricSummary::Histogram {
                count,
                mean,
                min,
                max,
                p50,
                ..
            } => {
                assert_eq!(*count, 2);
                assert_eq!(*mean, 20.0);
                assert_eq!(*min, 10.0);
                assert_eq!(*max, 30.0);
                assert_eq!(*p50, 10.0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_is_sorted_and_stable() {
        let mut r = Registry::new();
        r.counter_add("z.last", 1);
        r.record("m.mid", 1.0);
        r.gauge_set("a.first", 0.0);
        r.record_wall_ns("x.solve_ns", 123);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.mid", "z.last"]);
        // Wall-clock stats never leak into the deterministic snapshot.
        assert!(snap.get("x.solve_ns").is_none());
        // Identical registries produce identical snapshots and JSON.
        assert_eq!(snap, r.snapshot());
        assert_eq!(snap.to_json(), r.snapshot().to_json());
    }

    #[test]
    fn merge_combines_all_namespaces() {
        let mut a = Registry::new();
        a.counter_add("hits", 2);
        a.gauge_set("level", 1.0);
        a.record("lat", 10.0);
        a.record_wall_ns("solve_ns", 100);
        let mut b = Registry::new();
        b.counter_add("hits", 3);
        b.counter_add("misses", 1);
        b.gauge_set("level", 4.0);
        b.record("lat", 30.0);
        b.record_wall_ns("solve_ns", 300);
        a.merge(&b);
        assert_eq!(a.counter("hits"), 5);
        assert_eq!(a.counter("misses"), 1);
        assert_eq!(a.gauge("level"), Some(4.0));
        let snap = a.snapshot();
        match snap.get("lat").unwrap() {
            MetricSummary::Histogram {
                count, mean, max, ..
            } => {
                assert_eq!(*count, 2);
                assert_eq!(*mean, 20.0);
                assert_eq!(*max, 30.0);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        let solve = a.wall_ns("solve_ns").unwrap();
        assert_eq!(solve.count(), 2);
        assert_eq!(solve.sum(), 400.0);
        let names: Vec<&str> = a.wall_ns_entries().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["solve_ns"]);
    }

    #[test]
    fn merge_into_empty_equals_clone() {
        let mut src = Registry::new();
        src.counter_add("x", 9);
        src.record("h", 1.0);
        src.record("h", 2.0);
        let mut dst = Registry::new();
        dst.merge(&src);
        assert_eq!(dst.snapshot(), src.snapshot());
    }

    #[test]
    fn full_json_includes_wall_ns() {
        let mut r = Registry::new();
        r.counter_add("pos.rounds", 7);
        r.record_wall_ns("ufl.solve_ns", 1000);
        r.record_wall_ns("ufl.solve_ns", 3000);
        let json = r.to_json();
        assert!(json.contains("\"pos.rounds\": 7"));
        assert!(json.contains("\"ufl.solve_ns\""));
        assert!(json.contains("\"mean\": 2000"));
        // Sanity: sections all present.
        for section in ["counters", "gauges", "histograms", "wall_ns"] {
            assert!(
                json.contains(&format!("\"{section}\"")),
                "missing {section}"
            );
        }
    }
}
