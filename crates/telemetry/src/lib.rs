//! Deterministic observability for the edgechain workspace.
//!
//! Three pieces, layered below the simulator so every crate can emit into
//! the same stream:
//!
//! 1. **Structured tracer** ([`trace_event!`], [`enable`], [`finish`]) —
//!    thread-local, zero-cost when disabled, timestamped with the
//!    **sim-clock** (milliseconds) so traces of seeded runs are
//!    byte-identical across reruns.
//! 2. **Typed metrics registry** ([`Registry`]) — counters, gauges, and
//!    histograms (built on [`RunningStats`]/[`SampleSet`]) under dotted
//!    names like `ufl.open_facilities` or `transport.retries`, plus a
//!    strictly separated wall-clock `*_ns` profile namespace.
//! 3. **JSONL export** ([`Session::trace_jsonl`], [`Registry::to_json`])
//!    — hand-rolled deterministic JSON (the vendored serde is a no-op
//!    stub), consumed by the `trace-report` CLI.
//!
//! Determinism rules (see DESIGN.md §7): no wall-clock in trace events, no
//! `HashMap` iteration order in any export, and telemetry never feeds back
//! into simulation state — a run computes identical results with the
//! tracer on or off.
//!
//! # Example
//!
//! ```
//! use edgechain_telemetry as telemetry;
//! use edgechain_telemetry::trace_event;
//!
//! telemetry::enable();
//! trace_event!("transport.send", 1500, src = 0_u64, dst = 3_u64, bytes = 2048_u64);
//! telemetry::counter_add("transport.sends", 1);
//! telemetry::record("transport.hops", 2.0);
//! let session = telemetry::finish().unwrap();
//! assert_eq!(session.events().len(), 1);
//! assert_eq!(session.registry.counter("transport.sends"), 1);
//! ```

pub mod json;
pub mod metrics;
pub mod registry;
pub mod span;
pub mod trace;

pub use metrics::{gini, gini_counts, RunningStats, SampleSet};
pub use registry::{Histogram, MetricSummary, Registry, RegistrySnapshot};
pub use span::{
    enable_spans, span_end, span_end_all, span_field, span_follows, span_start, spans_enabled,
    spans_from_events, SpanId, SpanIndex, SpanRec,
};
pub use trace::{
    counter_add, emit, enable, finish, gauge_add, gauge_set, is_enabled, record, record_wall_ns,
    registry_snapshot, time_wall, Session, TraceEvent, Value,
};
