//! Minimal deterministic JSON writing and flat-object parsing.
//!
//! The vendored `serde` is a no-op stub (marker traits only), so trace and
//! registry exports hand-roll their JSON. Everything here is deterministic
//! by construction: callers iterate `Vec`s or `BTreeMap`s (never a
//! `HashMap`), and float formatting uses Rust's shortest-roundtrip `{}`
//! display, which is stable across runs and platforms.

/// Appends `s` to `out` as a JSON string literal (with quotes).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `v` to `out` as a JSON number, or `null` when not finite.
///
/// Uses the shortest-roundtrip display (`1.5` → `1.5`, `2.0` → `2`), which
/// is deterministic and re-parses to the identical `f64`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        out.push_str(&format!("{v}"));
    } else {
        out.push_str("null");
    }
}

/// A parsed scalar from a flat JSON object.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
}

impl JsonValue {
    /// Numeric view (also accepts booleans as 0/1), `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(v) => Some(*v),
            JsonValue::Bool(b) => Some(*b as u8 as f64),
            _ => None,
        }
    }

    /// String view, `None` for non-strings.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one *flat* JSON object (`{"k": scalar, ...}`) into key/value
/// pairs in document order. Nested objects/arrays are rejected — trace
/// lines are flat by construction, so hitting one means the input is not a
/// trace file.
pub fn parse_flat_object(line: &str) -> Result<Vec<(String, JsonValue)>, String> {
    let mut p = Parser {
        bytes: line.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    p.expect(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if p.peek() == Some(b'}') {
        p.next();
    } else {
        loop {
            p.skip_ws();
            let key = p.parse_string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.parse_scalar()?;
            fields.push((key, value));
            p.skip_ws();
            match p.next() {
                Some(b',') => continue,
                Some(b'}') => break,
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing garbage after object".into());
    }
    Ok(fields)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: u8) -> Result<(), String> {
        match self.next() {
            Some(b) if b == want => Ok(()),
            other => Err(format!("expected {:?}, got {other:?}", want as char)),
        }
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next() {
                None => return Err("unterminated string".into()),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.next() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let code = self.parse_hex4()?;
                        let code = match code {
                            // High surrogate: must pair with a following
                            // \uDC00..\uDFFF low surrogate.
                            0xD800..=0xDBFF => {
                                if self.next() != Some(b'\\') || self.next() != Some(b'u') {
                                    return Err("high surrogate without \\u pair".into());
                                }
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(format!("bad low surrogate \\u{low:04x}"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            }
                            0xDC00..=0xDFFF => {
                                return Err(format!("unpaired low surrogate \\u{code:04x}"))
                            }
                            code => code,
                        };
                        out.push(char::from_u32(code).ok_or("invalid \\u codepoint")?);
                    }
                    other => return Err(format!("bad escape {other:?}")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(_) => {
                    // Multi-byte UTF-8: re-decode from the byte slice.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..]).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, String> {
        let mut code = 0u32;
        for _ in 0..4 {
            let d = self.next().ok_or("truncated \\u escape")?;
            code = code * 16 + (d as char).to_digit(16).ok_or("bad hex in \\u escape")?;
        }
        Ok(code)
    }

    fn parse_scalar(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_lit("null", JsonValue::Null),
            Some(b'{' | b'[') => Err("nested values not supported in flat objects".into()),
            Some(_) => {
                let start = self.pos;
                while matches!(
                    self.peek(),
                    Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
                ) {
                    self.pos += 1;
                }
                let text =
                    std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("bad number {text:?}"))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected literal {lit}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_str_escapes() {
        let mut out = String::new();
        write_str(&mut out, "a\"b\\c\nd");
        assert_eq!(out, r#""a\"b\\c\nd""#);
    }

    #[test]
    fn write_f64_roundtrip_and_nonfinite() {
        let mut out = String::new();
        write_f64(&mut out, 2.5);
        out.push(' ');
        write_f64(&mut out, 3.0);
        out.push(' ');
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "2.5 3 null");
    }

    #[test]
    fn parse_flat_object_roundtrip() {
        let fields =
            parse_flat_object(r#"{"t_ms":120,"kind":"transport.send","ok":true,"x":-1.5}"#)
                .unwrap();
        assert_eq!(fields[0], ("t_ms".into(), JsonValue::Num(120.0)));
        assert_eq!(fields[1].1.as_str(), Some("transport.send"));
        assert_eq!(fields[2].1, JsonValue::Bool(true));
        assert_eq!(fields[3].1.as_f64(), Some(-1.5));
    }

    #[test]
    fn parse_rejects_nested_and_garbage() {
        assert!(parse_flat_object(r#"{"a":{"b":1}}"#).is_err());
        assert!(parse_flat_object(r#"{"a":1} trailing"#).is_err());
        assert!(parse_flat_object("not json").is_err());
    }

    #[test]
    fn parse_handles_escapes_and_empty() {
        assert_eq!(parse_flat_object("{}").unwrap(), vec![]);
        let fields = parse_flat_object(r#"{"k":"line\nbreak A"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some("line\nbreak A"));
    }

    #[test]
    fn parse_escaped_quotes_and_backslashes_in_fields() {
        // A field value that is itself quoted JSON-ish text.
        let fields = parse_flat_object(r#"{"msg":"said \"hi\" to node 3"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some(r#"said "hi" to node 3"#));
        // Windows-style path: every backslash doubled.
        let fields = parse_flat_object(r#"{"path":"C:\\data\\trace.jsonl"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some(r"C:\data\trace.jsonl"));
        // Adjacent escapes: backslash immediately before a closing quote.
        let fields = parse_flat_object(r#"{"k":"tail\\"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some("tail\\"));
        // Escaped quote in a *key*.
        let fields = parse_flat_object(r#"{"a\"b":1}"#).unwrap();
        assert_eq!(fields[0].0, "a\"b");
    }

    #[test]
    fn parse_rejects_malformed_escapes() {
        assert!(parse_flat_object(r#"{"k":"dangling\"#).is_err());
        assert!(parse_flat_object(r#"{"k":"bad\qescape"}"#).is_err());
        assert!(parse_flat_object(r#"{"k":"trunc\u12"}"#).is_err());
        assert!(parse_flat_object(r#"{"k":"nothex\uZZZZ"}"#).is_err());
        assert!(parse_flat_object(r#"{"k":"unterminated"#).is_err());
    }

    #[test]
    fn parse_unicode_escapes_and_surrogate_pairs() {
        let fields = parse_flat_object(r#"{"k":"nul\u0000end"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some("nul\u{0}end"));
        // Astral codepoint via a surrogate pair.
        let fields = parse_flat_object(r#"{"k":"\ud83d\ude00"}"#).unwrap();
        assert_eq!(fields[0].1.as_str(), Some("\u{1f600}"));
        // Lone surrogates are invalid JSON text.
        assert!(parse_flat_object(r#"{"k":"\ud83d"}"#).is_err());
        assert!(parse_flat_object(r#"{"k":"\ud83dx"}"#).is_err());
        assert!(parse_flat_object(r#"{"k":"\ude00"}"#).is_err());
    }

    #[test]
    fn write_parse_roundtrip_hostile_strings() {
        let hostile = [
            r#"quote " backslash \ both \" end"#,
            "tabs\tand\r\nnewlines",
            "ctrl\u{1}\u{1f}chars",
            "unicode ✓ 中文 \u{1f600}",
            r"\\\\",
            r#"\"\"\""#,
        ];
        for s in hostile {
            let mut line = String::new();
            line.push_str("{\"k\": ");
            write_str(&mut line, s);
            line.push('}');
            let fields = parse_flat_object(&line)
                .unwrap_or_else(|e| panic!("roundtrip of {s:?} failed: {e}"));
            assert_eq!(fields[0].1.as_str(), Some(s), "roundtrip of {s:?}");
        }
    }

    #[test]
    fn trace_event_with_hostile_fields_roundtrips() {
        use crate::trace::{TraceEvent, Value};
        let ev = TraceEvent {
            t_ms: 42,
            kind: "test.escape",
            fields: vec![("msg", Value::Str(r#"a "b" \c\ d"#.to_string()))],
        };
        let mut line = String::new();
        ev.write_jsonl(&mut line);
        let fields = parse_flat_object(&line).unwrap();
        let msg = fields.iter().find(|(k, _)| k == "msg").unwrap();
        assert_eq!(msg.1.as_str(), Some(r#"a "b" \c\ d"#));
    }
}
