//! Structured sim-clock event tracer with a zero-cost disabled mode.
//!
//! A telemetry *session* is thread-local: [`enable`] arms it, instrumented
//! code emits events/metrics through the free functions (or the
//! [`trace_event!`] macro), and [`finish`] disarms it and hands back the
//! collected [`Session`]. When no session is armed every entry point is a
//! single `Cell<bool>` load and the `trace_event!` macro does not even
//! evaluate its field expressions — simulation results are bit-identical
//! with telemetry on or off because nothing here feeds back into the run.
//!
//! Event timestamps are **sim-clock milliseconds** (the caller passes
//! them), never wall-clock, so a trace of a seeded run is byte-identical
//! across reruns. Wall-clock profiling goes through [`time_wall`], which
//! lands in the registry's separate `*_ns` namespace.

use crate::registry::{Registry, RegistrySnapshot};
use std::cell::{Cell, RefCell};
use std::fmt;

/// A typed field value attached to a trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&format!("{v}")),
            Value::I64(v) => out.push_str(&format!("{v}")),
            Value::F64(v) => crate::json::write_f64(out, *v),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => crate::json::write_str(out, s),
        }
    }
}

macro_rules! value_from_uint {
    ($($t:ty),*) => {
        $(impl From<$t> for Value {
            fn from(v: $t) -> Value {
                Value::U64(v as u64)
            }
        })*
    };
}
value_from_uint!(u8, u16, u32, u64, usize);

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Value {
        Value::I64(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}

/// One structured trace event: a sim-clock timestamp, a dotted event kind
/// (`transport.send`, `fault.injected`, …), and ordered typed fields.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sim-clock milliseconds at which the event occurred.
    pub t_ms: u64,
    /// Dotted event kind; the prefix before the first `.` is the phase.
    pub kind: &'static str,
    /// Ordered `(key, value)` fields, as passed at the emit site.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Appends this event as one JSONL line (without trailing newline).
    /// Field order is emit-site order; `t_ms` and `kind` always lead, so
    /// the line layout is deterministic.
    pub fn write_jsonl(&self, out: &mut String) {
        out.push_str(&format!("{{\"t_ms\": {}, \"kind\": ", self.t_ms));
        crate::json::write_str(out, self.kind);
        for (key, value) in &self.fields {
            out.push_str(", ");
            crate::json::write_str(out, key);
            out.push_str(": ");
            value.write_json(out);
        }
        out.push('}');
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut line = String::new();
        self.write_jsonl(&mut line);
        f.write_str(&line)
    }
}

/// A completed telemetry session: the ordered event trace plus the metric
/// registry, as returned by [`finish`].
#[derive(Debug, Clone, Default)]
pub struct Session {
    pub(crate) events: Vec<TraceEvent>,
    /// Causal-span bookkeeping (see [`crate::span`]); dormant unless
    /// [`crate::span::enable_spans`] armed it after [`enable`].
    pub(crate) spans: crate::span::SpanBook,
    /// Metric registry accumulated over the session.
    pub registry: Registry,
}

impl Session {
    /// The ordered event trace.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Serializes the whole trace as JSONL (one event per line, emit
    /// order). Byte-identical across reruns of the same seeded run.
    pub fn trace_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            event.write_jsonl(&mut out);
            out.push('\n');
        }
        out
    }
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Session> = RefCell::new(Session::default());
}

/// Crate-internal access to the live session (used by the span layer).
pub(crate) fn with_session<R>(f: impl FnOnce(&mut Session) -> R) -> R {
    SESSION.with(|s| f(&mut s.borrow_mut()))
}

/// Arms telemetry on this thread, discarding any previous session state.
pub fn enable() {
    SESSION.with(|s| *s.borrow_mut() = Session::default());
    ENABLED.with(|e| e.set(true));
}

/// Whether a telemetry session is armed on this thread. This is the only
/// cost instrumented code pays when telemetry is off.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Disarms telemetry and returns the collected session, or `None` if
/// telemetry was never enabled.
pub fn finish() -> Option<Session> {
    if !is_enabled() {
        return None;
    }
    ENABLED.with(|e| e.set(false));
    Some(SESSION.with(|s| std::mem::take(&mut *s.borrow_mut())))
}

/// Emits a structured event (no-op when disabled). Prefer the
/// [`trace_event!`] macro, which also skips field construction.
pub fn emit(kind: &'static str, t_ms: u64, fields: Vec<(&'static str, Value)>) {
    if !is_enabled() {
        return;
    }
    SESSION.with(|s| {
        s.borrow_mut()
            .events
            .push(TraceEvent { t_ms, kind, fields });
    });
}

/// Adds `n` to counter `name` (no-op when disabled).
pub fn counter_add(name: &'static str, n: u64) {
    if is_enabled() {
        SESSION.with(|s| s.borrow_mut().registry.counter_add(name, n));
    }
}

/// Sets gauge `name` (no-op when disabled).
pub fn gauge_set(name: &'static str, value: f64) {
    if is_enabled() {
        SESSION.with(|s| s.borrow_mut().registry.gauge_set(name, value));
    }
}

/// Adds `delta` to gauge `name` (no-op when disabled).
pub fn gauge_add(name: &'static str, delta: f64) {
    if is_enabled() {
        SESSION.with(|s| s.borrow_mut().registry.gauge_add(name, delta));
    }
}

/// Records one histogram observation (no-op when disabled).
pub fn record(name: &'static str, value: f64) {
    if is_enabled() {
        SESSION.with(|s| s.borrow_mut().registry.record(name, value));
    }
}

/// Records a wall-clock duration in nanoseconds (no-op when disabled).
/// Lands in the registry's non-deterministic `*_ns` namespace.
pub fn record_wall_ns(name: &'static str, ns: u64) {
    if is_enabled() {
        SESSION.with(|s| s.borrow_mut().registry.record_wall_ns(name, ns));
    }
}

/// Runs `f`, recording its wall-clock duration under `name` when
/// telemetry is enabled. When disabled this is exactly `f()` — no clock
/// read, no branch in the hot loop beyond the enabled check.
pub fn time_wall<R>(name: &'static str, f: impl FnOnce() -> R) -> R {
    if !is_enabled() {
        return f();
    }
    let start = std::time::Instant::now();
    let out = f();
    record_wall_ns(name, start.elapsed().as_nanos() as u64);
    out
}

/// Deterministic snapshot of the live registry, or `None` when disabled.
/// Non-consuming: the session keeps collecting afterwards.
pub fn registry_snapshot() -> Option<RegistrySnapshot> {
    if !is_enabled() {
        return None;
    }
    Some(SESSION.with(|s| s.borrow_mut().registry.snapshot()))
}

/// Emits a structured trace event when telemetry is enabled; compiles to a
/// single enabled-flag check (field expressions are **not evaluated**)
/// otherwise.
///
/// ```
/// use edgechain_telemetry as telemetry;
/// use edgechain_telemetry::trace_event;
///
/// telemetry::enable();
/// trace_event!("block.mined", 1200, block = 3_u64, miner = 7_u64, hit = true);
/// let session = telemetry::finish().unwrap();
/// assert_eq!(session.events().len(), 1);
/// assert_eq!(session.events()[0].kind, "block.mined");
/// ```
#[macro_export]
macro_rules! trace_event {
    ($kind:expr, $t_ms:expr $(, $key:ident = $val:expr)* $(,)?) => {
        if $crate::is_enabled() {
            $crate::emit(
                $kind,
                $t_ms,
                vec![$((stringify!($key), $crate::Value::from($val))),*],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_mode_is_truly_noop() {
        assert!(!is_enabled());
        // Field expressions must not run when disabled.
        let mut evaluated = false;
        trace_event!(
            "x.y",
            1,
            v = {
                evaluated = true;
                1_u64
            }
        );
        assert!(!evaluated, "disabled trace_event! must not evaluate fields");
        counter_add("x.c", 1);
        record("x.h", 1.0);
        gauge_set("x.g", 1.0);
        record_wall_ns("x.ns", 1);
        assert!(registry_snapshot().is_none());
        assert!(finish().is_none());
        // Nothing leaked into a later session.
        enable();
        let session = finish().unwrap();
        assert!(session.events().is_empty());
        assert_eq!(session.registry.counter("x.c"), 0);
    }

    #[test]
    fn enabled_session_collects_events_and_metrics() {
        enable();
        trace_event!(
            "transport.send",
            100,
            src = 1_u64,
            dst = 2_u64,
            bytes = 512_u64
        );
        trace_event!("fault.injected", 600_000, kind = "crash", node = 4_u64);
        counter_add("transport.sends", 1);
        record("pos.delay_secs", 12.5);
        let snap = registry_snapshot().expect("snapshot while enabled");
        assert_eq!(snap.counter("transport.sends"), Some(1));
        let session = finish().unwrap();
        assert_eq!(session.events().len(), 2);
        assert_eq!(session.events()[0].kind, "transport.send");
        assert_eq!(session.events()[0].t_ms, 100);
        assert_eq!(session.events()[0].fields[0], ("src", Value::U64(1)));
        assert!(!is_enabled(), "finish() disarms");
    }

    #[test]
    fn jsonl_layout_is_stable() {
        enable();
        trace_event!(
            "block.mined",
            1200,
            block = 3_u64,
            delay_secs = 9.5,
            hit = true
        );
        let session = finish().unwrap();
        assert_eq!(
            session.trace_jsonl(),
            "{\"t_ms\": 1200, \"kind\": \"block.mined\", \"block\": 3, \"delay_secs\": 9.5, \"hit\": true}\n"
        );
    }

    #[test]
    fn enable_resets_previous_state() {
        enable();
        counter_add("stale.counter", 9);
        enable();
        let session = finish().unwrap();
        assert_eq!(session.registry.counter("stale.counter"), 0);
    }

    #[test]
    fn time_wall_records_only_when_enabled() {
        let out = time_wall("t.solve_ns", || 41 + 1);
        assert_eq!(out, 42);
        enable();
        let out = time_wall("t.solve_ns", || 2 * 21);
        assert_eq!(out, 42);
        let mut session = finish().unwrap();
        let json = session.registry.to_json();
        assert!(json.contains("\"t.solve_ns\": {\"count\": 1"));
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3_usize), Value::U64(3));
        assert_eq!(Value::from(-2_i32), Value::I64(-2));
        assert_eq!(Value::from("s"), Value::Str("s".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
    }
}
