//! Deterministic causal spans over the sim clock.
//!
//! A *span* is a named interval of sim time with an optional parent (strict
//! containment, e.g. `block.verify` inside `block.lifecycle`) and an
//! optional *follows-from* link (causal but not containing, e.g. a repair
//! re-replication triggered long after the item's lifecycle root closed).
//! Span IDs are assigned by a per-session counter in sim-clock order —
//! the event loop hands out IDs as it processes events, so for a seeded
//! run the ID sequence, and therefore the serialized trace, is
//! byte-identical across reruns.
//!
//! Spans ride the existing event stream: closing a span appends one
//! ordinary [`TraceEvent`] whose kind is the span kind and whose leading
//! fields are `span`, `parent` (roots omit it), `follows` (optional),
//! `t0_ms`, and `dur_ms`, followed by any user fields attached while the
//! span was open. Everything that already works on traces — JSONL export,
//! byte-identity tests, `trace-report` — works on spans with no second
//! file format.
//!
//! Two layers of gating keep spans **zero-cost when disabled**: every
//! entry point first checks the session-enabled flag (one `Cell<bool>`
//! load, same as `trace_event!`), and spans additionally require
//! [`enable_spans`] after [`crate::enable`] — so a metrics-only session
//! pays nothing for the span machinery and its trace stays bit-identical
//! to a pre-span session. Cross-node links work by carrying a [`SpanId`]
//! alongside a simulated message and passing it as `parent` at the
//! receiver's instrumentation point; the IDs never touch simulation
//! state, so results are bit-identical with spans on or off.

use crate::json::JsonValue;
use crate::trace::{with_session, TraceEvent, Value};
use std::collections::BTreeMap;

/// Opaque span handle. The zero value ([`SpanId::NONE`]) means "no span"
/// and every operation on it is a no-op, so instrumentation code can
/// thread IDs around unconditionally.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SpanId(u64);

impl SpanId {
    /// The null span: operations on it do nothing.
    pub const NONE: SpanId = SpanId(0);

    /// Whether this is the null span.
    pub fn is_none(self) -> bool {
        self.0 == 0
    }

    /// Raw numeric ID (0 for [`SpanId::NONE`]), as it appears in the
    /// trace's `span`/`parent`/`follows` fields.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// One span that has been started but not yet ended.
#[derive(Debug, Clone)]
struct OpenSpan {
    kind: &'static str,
    t0_ms: u64,
    parent: u64,
    follows: u64,
    fields: Vec<(&'static str, Value)>,
}

/// Per-session span state, embedded in [`crate::Session`]. Dormant (and
/// cost-free beyond its `Default`) unless [`enable_spans`] armed it.
#[derive(Debug, Clone, Default)]
pub(crate) struct SpanBook {
    enabled: bool,
    next_id: u64,
    // BTreeMap so the end-of-run flush closes leftovers in ID order —
    // deterministic regardless of open/close interleaving.
    open: BTreeMap<u64, OpenSpan>,
}

/// Arms span collection on the current session. Must be called after
/// [`crate::enable`] (which resets span state); a no-op when telemetry is
/// disabled.
pub fn enable_spans() {
    if !crate::is_enabled() {
        return;
    }
    with_session(|s| s.spans.enabled = true);
}

/// Whether spans are being collected on this thread.
#[inline]
pub fn spans_enabled() -> bool {
    crate::is_enabled() && with_session(|s| s.spans.enabled)
}

/// Opens a span of the given kind at sim time `t_ms`, optionally under a
/// parent. Returns [`SpanId::NONE`] (and does nothing) when spans are
/// disabled.
pub fn span_start(kind: &'static str, t_ms: u64, parent: SpanId) -> SpanId {
    if !crate::is_enabled() {
        return SpanId::NONE;
    }
    with_session(|s| {
        if !s.spans.enabled {
            return SpanId::NONE;
        }
        s.spans.next_id += 1;
        let id = s.spans.next_id;
        s.spans.open.insert(
            id,
            OpenSpan {
                kind,
                t0_ms: t_ms,
                parent: parent.0,
                follows: 0,
                fields: Vec::new(),
            },
        );
        SpanId(id)
    })
}

/// Records a *follows-from* link: `span` was caused by `other` but is not
/// contained in it. No-op if either side is [`SpanId::NONE`] or the span
/// is not open.
pub fn span_follows(span: SpanId, other: SpanId) {
    if span.is_none() || other.is_none() || !crate::is_enabled() {
        return;
    }
    with_session(|s| {
        if let Some(open) = s.spans.open.get_mut(&span.0) {
            open.follows = other.0;
        }
    });
}

/// Attaches a field to an open span; it is serialized after the standard
/// span fields when the span closes. No-op on [`SpanId::NONE`].
pub fn span_field(span: SpanId, key: &'static str, value: impl Into<Value>) {
    if span.is_none() || !crate::is_enabled() {
        return;
    }
    with_session(|s| {
        if let Some(open) = s.spans.open.get_mut(&span.0) {
            open.fields.push((key, value.into()));
        }
    });
}

/// Closes a span at sim time `t_ms`, appending its close event to the
/// trace. No-op on [`SpanId::NONE`] or a span that was never opened /
/// already closed.
pub fn span_end(span: SpanId, t_ms: u64) {
    if span.is_none() || !crate::is_enabled() {
        return;
    }
    with_session(|s| {
        if let Some(open) = s.spans.open.remove(&span.0) {
            emit_close(s, span.0, open, t_ms);
        }
    });
}

/// Closes every still-open span at `t_ms`, in span-ID order. Call once at
/// the simulation horizon so long-lived roots (quarantine windows, items
/// still pending) land in the trace.
pub fn span_end_all(t_ms: u64) {
    if !crate::is_enabled() {
        return;
    }
    with_session(|s| {
        let open = std::mem::take(&mut s.spans.open);
        for (id, span) in open {
            emit_close(s, id, span, t_ms);
        }
    });
}

fn emit_close(session: &mut crate::Session, id: u64, open: OpenSpan, t_ms: u64) {
    let t1 = t_ms.max(open.t0_ms);
    let mut fields = Vec::with_capacity(open.fields.len() + 5);
    fields.push(("span", Value::U64(id)));
    if open.parent != 0 {
        fields.push(("parent", Value::U64(open.parent)));
    }
    if open.follows != 0 {
        fields.push(("follows", Value::U64(open.follows)));
    }
    fields.push(("t0_ms", Value::U64(open.t0_ms)));
    fields.push(("dur_ms", Value::U64(t1 - open.t0_ms)));
    fields.extend(open.fields);
    session.events.push(TraceEvent {
        t_ms: t1,
        kind: open.kind,
        fields,
    });
}

// ---------------------------------------------------------------------------
// Analysis: span extraction, tree building, critical-path attribution.
// Shared between `trace-report` and the integration tests so both agree on
// what "the phase sum equals the root duration" means.
// ---------------------------------------------------------------------------

/// Phase label for root time not covered by any direct child span.
pub const GAP_PHASE: &str = "(gap)";

/// A completed span as reconstructed from a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRec {
    pub id: u64,
    /// Parent span ID, 0 for roots.
    pub parent: u64,
    /// Follows-from span ID, 0 if absent.
    pub follows: u64,
    pub kind: String,
    pub t0_ms: u64,
    pub t1_ms: u64,
    /// Non-span fields carried on the close event, rendered to strings.
    pub fields: Vec<(String, String)>,
}

impl SpanRec {
    pub fn dur_ms(&self) -> u64 {
        self.t1_ms - self.t0_ms
    }

    /// The rendered value of a carried field, if present.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Extracts the spans from an in-memory session's events. An event is a
/// span close iff it carries `span`, `t0_ms`, and `dur_ms` fields.
pub fn spans_from_events(events: &[TraceEvent]) -> Vec<SpanRec> {
    events
        .iter()
        .filter_map(|ev| {
            let get_u64 = |key: &str| {
                ev.fields.iter().find_map(|(k, v)| match (k, v) {
                    (k, Value::U64(n)) if *k == key => Some(*n),
                    _ => None,
                })
            };
            let id = get_u64("span")?;
            let t0 = get_u64("t0_ms")?;
            get_u64("dur_ms")?;
            Some(SpanRec {
                id,
                parent: get_u64("parent").unwrap_or(0),
                follows: get_u64("follows").unwrap_or(0),
                kind: ev.kind.to_string(),
                t0_ms: t0,
                t1_ms: ev.t_ms,
                fields: ev
                    .fields
                    .iter()
                    .filter(|(k, _)| {
                        !matches!(*k, "span" | "parent" | "follows" | "t0_ms" | "dur_ms")
                    })
                    .map(|(k, v)| {
                        let rendered = match v {
                            Value::U64(n) => n.to_string(),
                            Value::I64(n) => n.to_string(),
                            Value::F64(n) => format!("{n}"),
                            Value::Bool(b) => b.to_string(),
                            Value::Str(s) => s.clone(),
                        };
                        (k.to_string(), rendered)
                    })
                    .collect(),
            })
        })
        .collect()
}

/// Builds a [`SpanRec`] from a parsed flat-JSON trace line, if that line
/// is a span close event. `kind` is the event kind, `t_ms` its timestamp,
/// `fields` the remaining fields.
pub fn span_from_fields(kind: &str, t_ms: u64, fields: &[(String, JsonValue)]) -> Option<SpanRec> {
    let get_u64 = |key: &str| {
        fields
            .iter()
            .find(|(k, _)| k == key)
            .and_then(|(_, v)| v.as_f64())
            .map(|f| f as u64)
    };
    let id = get_u64("span")?;
    let t0 = get_u64("t0_ms")?;
    get_u64("dur_ms")?;
    Some(SpanRec {
        id,
        parent: get_u64("parent").unwrap_or(0),
        follows: get_u64("follows").unwrap_or(0),
        kind: kind.to_string(),
        t0_ms: t0,
        t1_ms: t_ms,
        fields: fields
            .iter()
            .filter(|(k, _)| {
                !matches!(
                    k.as_str(),
                    "span" | "parent" | "follows" | "t0_ms" | "dur_ms"
                )
            })
            .map(|(k, v)| {
                let rendered = match v {
                    JsonValue::Str(s) => s.clone(),
                    JsonValue::Bool(b) => b.to_string(),
                    JsonValue::Num(n) => format!("{n}"),
                    JsonValue::Null => "null".to_string(),
                };
                (k.clone(), rendered)
            })
            .collect(),
    })
}

/// An indexed forest of spans: lookup by ID, children sorted by start
/// time, roots in ID order.
pub struct SpanIndex {
    spans: Vec<SpanRec>,
    by_id: BTreeMap<u64, usize>,
    children: BTreeMap<u64, Vec<usize>>,
}

impl SpanIndex {
    pub fn new(spans: Vec<SpanRec>) -> SpanIndex {
        let mut by_id = BTreeMap::new();
        let mut children: BTreeMap<u64, Vec<usize>> = BTreeMap::new();
        for (i, s) in spans.iter().enumerate() {
            by_id.insert(s.id, i);
            if s.parent != 0 {
                children.entry(s.parent).or_default().push(i);
            }
        }
        for kids in children.values_mut() {
            kids.sort_by_key(|&i| (spans[i].t0_ms, spans[i].id));
        }
        SpanIndex {
            spans,
            by_id,
            children,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    pub fn len(&self) -> usize {
        self.spans.len()
    }

    pub fn get(&self, id: u64) -> Option<&SpanRec> {
        self.by_id.get(&id).map(|&i| &self.spans[i])
    }

    /// Direct children of `id`, sorted by `(t0_ms, id)`.
    pub fn children(&self, id: u64) -> Vec<&SpanRec> {
        self.children
            .get(&id)
            .map(|kids| kids.iter().map(|&i| &self.spans[i]).collect())
            .unwrap_or_default()
    }

    /// Spans whose parent is 0 or points at a span missing from the trace
    /// (e.g. filtered out), in ID order.
    pub fn roots(&self) -> Vec<&SpanRec> {
        let mut roots: Vec<&SpanRec> = self
            .spans
            .iter()
            .filter(|s| s.parent == 0 || !self.by_id.contains_key(&s.parent))
            .collect();
        roots.sort_by_key(|s| s.id);
        roots
    }

    /// Per-phase latency attribution for the root span `id`.
    ///
    /// A left-to-right sweep over the root interval assigns each
    /// millisecond to the direct child covering it (the earliest-starting
    /// child wins an overlap); root time no child covers is charged to
    /// [`GAP_PHASE`]. All arithmetic is integral, so the returned phase
    /// durations **sum exactly** to the root span's duration.
    pub fn attribute(&self, id: u64) -> Vec<(String, u64)> {
        let Some(root) = self.get(id) else {
            return Vec::new();
        };
        let mut acc: BTreeMap<String, u64> = BTreeMap::new();
        let mut cursor = root.t0_ms;
        for child in self.children(id) {
            let c0 = child.t0_ms.clamp(root.t0_ms, root.t1_ms);
            let c1 = child.t1_ms.clamp(root.t0_ms, root.t1_ms);
            if c1 <= cursor {
                continue;
            }
            let start = c0.max(cursor);
            if start > cursor {
                *acc.entry(GAP_PHASE.to_string()).or_default() += start - cursor;
            }
            *acc.entry(child.kind.clone()).or_default() += c1 - start;
            cursor = c1;
        }
        if root.t1_ms > cursor {
            *acc.entry(GAP_PHASE.to_string()).or_default() += root.t1_ms - cursor;
        }
        acc.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: u64, parent: u64, kind: &str, t0: u64, t1: u64) -> SpanRec {
        SpanRec {
            id,
            parent,
            follows: 0,
            kind: kind.to_string(),
            t0_ms: t0,
            t1_ms: t1,
            fields: Vec::new(),
        }
    }

    #[test]
    fn spans_disabled_without_opt_in() {
        crate::enable();
        let id = span_start("x.root", 10, SpanId::NONE);
        assert!(id.is_none());
        span_field(id, "k", 1_u64);
        span_end(id, 20);
        let session = crate::finish().unwrap();
        assert!(session.events().is_empty(), "no span events without opt-in");
    }

    #[test]
    fn span_close_event_layout() {
        crate::enable();
        enable_spans();
        let root = span_start("item.lifecycle", 100, SpanId::NONE);
        let child = span_start("item.pend", 100, root);
        span_field(child, "item", 7_u64);
        span_end(child, 400);
        let late = span_start("repair.replicate", 900, SpanId::NONE);
        span_follows(late, root);
        span_end(late, 950);
        span_end(root, 1000);
        let session = crate::finish().unwrap();
        assert_eq!(
            session.trace_jsonl(),
            concat!(
                "{\"t_ms\": 400, \"kind\": \"item.pend\", \"span\": 2, \"parent\": 1, ",
                "\"t0_ms\": 100, \"dur_ms\": 300, \"item\": 7}\n",
                "{\"t_ms\": 950, \"kind\": \"repair.replicate\", \"span\": 3, \"follows\": 1, ",
                "\"t0_ms\": 900, \"dur_ms\": 50}\n",
                "{\"t_ms\": 1000, \"kind\": \"item.lifecycle\", \"span\": 1, ",
                "\"t0_ms\": 100, \"dur_ms\": 900}\n",
            )
        );
    }

    #[test]
    fn end_all_flushes_in_id_order() {
        crate::enable();
        enable_spans();
        let a = span_start("a.root", 0, SpanId::NONE);
        let b = span_start("b.root", 5, SpanId::NONE);
        span_end(b, 9); // close b first; a is flushed later
        span_end_all(100);
        let _ = a;
        let session = crate::finish().unwrap();
        let kinds: Vec<&str> = session.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["b.root", "a.root"]);
        let spans = spans_from_events(session.events());
        assert_eq!(spans[1].t1_ms, 100);
    }

    #[test]
    fn double_end_and_none_are_noops() {
        crate::enable();
        enable_spans();
        let a = span_start("a.root", 0, SpanId::NONE);
        span_end(a, 10);
        span_end(a, 20);
        span_end(SpanId::NONE, 30);
        span_field(SpanId::NONE, "k", 1_u64);
        span_follows(SpanId::NONE, a);
        let session = crate::finish().unwrap();
        assert_eq!(session.events().len(), 1);
    }

    #[test]
    fn roundtrip_through_events() {
        crate::enable();
        enable_spans();
        let root = span_start("block.lifecycle", 50, SpanId::NONE);
        let child = span_start("block.broadcast", 60, root);
        span_end(child, 80);
        span_end(root, 90);
        let session = crate::finish().unwrap();
        let spans = spans_from_events(session.events());
        assert_eq!(spans.len(), 2);
        let idx = SpanIndex::new(spans);
        let roots = idx.roots();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].kind, "block.lifecycle");
        let kids = idx.children(roots[0].id);
        assert_eq!(kids.len(), 1);
        assert_eq!(kids[0].kind, "block.broadcast");
        assert_eq!(kids[0].dur_ms(), 20);
    }

    #[test]
    fn attribution_sums_to_root_duration() {
        // Children: gap [0,10), a [10,40), overlap b [30,70), gap [70,100].
        let spans = vec![
            rec(1, 0, "root", 0, 100),
            rec(2, 1, "a", 10, 40),
            rec(3, 1, "b", 30, 70),
        ];
        let idx = SpanIndex::new(spans);
        let phases = idx.attribute(1);
        let total: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 100);
        let get = |name: &str| {
            phases
                .iter()
                .find(|(p, _)| p == name)
                .map(|(_, d)| *d)
                .unwrap_or(0)
        };
        assert_eq!(get("a"), 30);
        assert_eq!(get("b"), 30, "overlap charged once, to the earlier child");
        assert_eq!(get(GAP_PHASE), 40);
    }

    #[test]
    fn attribution_clamps_children_outside_root() {
        let spans = vec![
            rec(1, 0, "root", 100, 200),
            rec(2, 1, "early", 50, 120),
            rec(3, 1, "late", 180, 400),
        ];
        let idx = SpanIndex::new(spans);
        let phases = idx.attribute(1);
        let total: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn zero_duration_root_attributes_empty_or_zero() {
        let spans = vec![rec(1, 0, "root", 100, 100)];
        let idx = SpanIndex::new(spans);
        let phases = idx.attribute(1);
        let total: u64 = phases.iter().map(|(_, d)| d).sum();
        assert_eq!(total, 0);
    }

    #[test]
    fn orphaned_parent_becomes_root() {
        let spans = vec![rec(5, 99, "x.child", 0, 10)];
        let idx = SpanIndex::new(spans);
        assert_eq!(idx.roots().len(), 1);
    }
}
