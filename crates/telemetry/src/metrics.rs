//! Evaluation metrics: Gini coefficient and running summary statistics.
//!
//! These primitives originated in `edgechain-sim` (which still re-exports
//! them) and moved here so the telemetry registry — which must sit *below*
//! the simulator in the dependency graph — can build its histograms on the
//! same types the evaluation figures use.
//!
//! The paper uses the Gini coefficient to quantify storage disparity
//! (Fig. 4(b)): `Gini = Σ_i Σ_j |t_i − t_j| / (2 Σ_i Σ_j t_j)` and reports
//! values below 0.15 as "fair".

use serde::{Deserialize, Serialize};
use std::fmt;

/// Computes the Gini coefficient of a set of nonnegative values.
///
/// Returns 0 for empty input, all-zero input, or a single value. The result
/// lies in `[0, 1)`: 0 means perfect equality; values near 1 mean one node
/// holds almost everything.
///
/// # Examples
///
/// ```
/// use edgechain_telemetry::gini;
///
/// assert_eq!(gini(&[5.0, 5.0, 5.0]), 0.0);
/// assert!(gini(&[0.0, 0.0, 30.0]) > 0.6);
/// ```
pub fn gini(values: &[f64]) -> f64 {
    let n = values.len();
    if n < 2 {
        return 0.0;
    }
    let sum: f64 = values.iter().sum();
    if sum <= 0.0 {
        return 0.0;
    }
    // Sort-based O(n log n) formulation:
    // Σ_i Σ_j |x_i − x_j| = 2 Σ_i (2i − n + 1) x_(i)  (x sorted ascending)
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("gini values must not be NaN"));
    let mut abs_diff_sum = 0.0;
    for (i, x) in sorted.iter().enumerate() {
        abs_diff_sum += (2.0 * i as f64 - n as f64 + 1.0) * x;
    }
    abs_diff_sum.max(0.0) / (n as f64 * sum)
}

/// Convenience: Gini of integer counts (e.g., stored items per node).
pub fn gini_counts(values: &[u64]) -> f64 {
    let floats: Vec<f64> = values.iter().map(|&v| v as f64).collect();
    gini(&floats)
}

/// Incremental summary statistics (count / mean / min / max / sum /
/// variance), with the second moment tracked by Welford's online
/// algorithm so variance is numerically stable over long runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Welford running mean (kept separately from `sum / count` purely for
    /// the stable second-moment update; `mean()` still reports the exact
    /// `sum / count`).
    w_mean: f64,
    /// Welford sum of squared deviations from the running mean.
    m2: f64,
}

impl RunningStats {
    /// Creates empty statistics.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            w_mean: 0.0,
            m2: 0.0,
        }
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let delta = value - self.w_mean;
        self.w_mean += delta / self.count as f64;
        self.m2 += delta * (value - self.w_mean);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Population variance (Welford), or 0 when fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation, or 0 when fewer than two samples.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation, or `None` when empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Maximum observation, or `None` when empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another set of statistics into this one (Chan et al.'s
    /// parallel variant of Welford's update, so `variance()` of the merge
    /// equals the variance of the concatenated sample streams).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let delta = other.w_mean - self.w_mean;
        self.m2 += other.m2 + delta * delta * na * nb / (na + nb);
        self.w_mean += delta * nb / (na + nb);
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl Default for RunningStats {
    /// Same as [`RunningStats::new`] (the derived default would seed
    /// `min`/`max` at 0 and corrupt the first comparison).
    fn default() -> Self {
        RunningStats::new()
    }
}

impl fmt::Display for RunningStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.count == 0 {
            write!(f, "n=0")
        } else {
            write!(
                f,
                "n={} mean={:.3} min={:.3} max={:.3}",
                self.count,
                self.mean(),
                self.min,
                self.max
            )
        }
    }
}

impl FromIterator<f64> for RunningStats {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = RunningStats::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for RunningStats {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

/// A sample collection supporting exact quantiles (kept sorted lazily).
///
/// Evaluation runs produce at most tens of thousands of latency samples, so
/// storing them exactly is cheaper and more trustworthy than a sketch.
///
/// # Examples
///
/// ```
/// use edgechain_telemetry::SampleSet;
///
/// let mut s: SampleSet = (1..=100).map(|v| v as f64).collect();
/// assert_eq!(s.quantile(0.5), Some(50.0));
/// assert_eq!(s.quantile(0.99), Some(99.0));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
    sorted: bool,
}

impl Default for SampleSet {
    /// Same as [`SampleSet::new`] — an empty set is trivially sorted.
    fn default() -> Self {
        SampleSet::new()
    }
}

impl SampleSet {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        SampleSet {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics on NaN (quantiles would be meaningless).
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "samples must not be NaN");
        self.samples.push(value);
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether no observation was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples
                .sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
            self.sorted = true;
        }
    }

    /// The `q`-quantile (nearest-rank), or `None` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.samples.is_empty() {
            return None;
        }
        self.sort();
        let rank = ((q * self.samples.len() as f64).ceil() as usize).clamp(1, self.samples.len());
        Some(self.samples[rank - 1])
    }

    /// Median (p50).
    pub fn p50(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 95th percentile.
    pub fn p95(&mut self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th percentile.
    pub fn p99(&mut self) -> Option<f64> {
        self.quantile(0.99)
    }

    /// Exact histogram over ascending bucket `edges`: returns
    /// `edges.len() + 1` counts, where count `i` covers `(edges[i-1],
    /// edges[i]]` (the first bucket is `(-∞, edges[0]]`, the last
    /// `(edges[last], +∞)`).
    ///
    /// # Examples
    ///
    /// ```
    /// use edgechain_telemetry::SampleSet;
    ///
    /// let mut s: SampleSet = [1.0, 2.0, 5.0, 50.0].into_iter().collect();
    /// assert_eq!(s.histogram(&[2.0, 10.0]), vec![2, 1, 1]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty, not strictly ascending, or contains NaN.
    pub fn histogram(&mut self, edges: &[f64]) -> Vec<u64> {
        assert!(!edges.is_empty(), "need at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]) && edges.iter().all(|e| !e.is_nan()),
            "bucket edges must be strictly ascending and not NaN"
        );
        self.sort();
        let mut counts = Vec::with_capacity(edges.len() + 1);
        let mut prev = 0usize;
        for &edge in edges {
            let upto = self.samples.partition_point(|&s| s <= edge);
            counts.push((upto - prev) as u64);
            prev = upto;
        }
        counts.push((self.samples.len() - prev) as u64);
        counts
    }

    /// Merges another sample set into this one. Sortedness is preserved
    /// when one side is empty (so report generation that merges per-phase
    /// sets into an already-sorted accumulator doesn't trigger a needless
    /// re-sort).
    pub fn merge(&mut self, other: &SampleSet) {
        if other.samples.is_empty() {
            return;
        }
        if self.samples.is_empty() {
            self.samples.extend_from_slice(&other.samples);
            self.sorted = other.sorted;
            return;
        }
        self.samples.extend_from_slice(&other.samples);
        self.sorted = false;
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gini_equal_is_zero() {
        assert_eq!(gini(&[3.0, 3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn gini_empty_and_singleton() {
        assert_eq!(gini(&[]), 0.0);
        assert_eq!(gini(&[7.0]), 0.0);
        assert_eq!(gini(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn gini_extreme_concentration() {
        // One node holds everything: Gini = (n-1)/n.
        let mut v = vec![0.0; 10];
        v[0] = 100.0;
        assert!((gini(&v) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn gini_matches_naive_definition() {
        let v: [f64; 5] = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut num = 0.0;
        let mut den = 0.0;
        for a in v {
            for b in v {
                num += (a - b).abs();
                den += b;
            }
        }
        let naive = num / (2.0 * den);
        assert!((gini(&v) - naive).abs() < 1e-12);
    }

    #[test]
    fn gini_counts_agrees() {
        assert_eq!(gini_counts(&[1, 2, 3]), gini(&[1.0, 2.0, 3.0]));
    }

    #[test]
    fn gini_scale_invariant() {
        let a = [1.0, 5.0, 9.0];
        let b = [10.0, 50.0, 90.0];
        assert!((gini(&a) - gini(&b)).abs() < 1e-12);
    }

    #[test]
    fn running_stats_basics() {
        let mut s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), None);
        s.record(2.0);
        s.record(4.0);
        s.record(6.0);
        assert_eq!(s.count(), 3);
        assert_eq!(s.mean(), 4.0);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(6.0));
        assert_eq!(s.sum(), 12.0);
    }

    #[test]
    fn running_stats_variance_welford() {
        let mut s = RunningStats::new();
        assert_eq!(s.variance(), 0.0);
        s.record(2.0);
        assert_eq!(s.variance(), 0.0, "single sample has no spread");
        s.record(4.0);
        s.record(6.0);
        // Population variance of [2, 4, 6] = ((−2)² + 0² + 2²)/3 = 8/3.
        assert!((s.variance() - 8.0 / 3.0).abs() < 1e-12);
        assert!((s.stddev() - (8.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_variance_matches_naive() {
        let vals: Vec<f64> = (0..1000)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 100.0)
            .collect();
        let s: RunningStats = vals.iter().copied().collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let naive = vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64;
        assert!((s.variance() - naive).abs() < 1e-9 * naive.max(1.0));
    }

    #[test]
    fn running_stats_merge() {
        let a: RunningStats = [1.0, 2.0].into_iter().collect();
        let mut b: RunningStats = [10.0].into_iter().collect();
        b.merge(&a);
        assert_eq!(b.count(), 3);
        assert_eq!(b.min(), Some(1.0));
        assert_eq!(b.max(), Some(10.0));
        let empty = RunningStats::new();
        let mut c = a.clone();
        c.merge(&empty);
        assert_eq!(c, a);
    }

    #[test]
    fn running_stats_merge_preserves_variance() {
        let left: Vec<f64> = vec![1.0, 5.0, 9.0, 2.0];
        let right: Vec<f64> = vec![100.0, 42.0, 7.0];
        let mut merged: RunningStats = left.iter().copied().collect();
        merged.merge(&right.iter().copied().collect());
        let all: RunningStats = left.iter().chain(&right).copied().collect();
        assert_eq!(merged.count(), all.count());
        assert!((merged.variance() - all.variance()).abs() < 1e-9);
        // Merging into an empty accumulator adopts the other side exactly.
        let mut from_empty = RunningStats::new();
        from_empty.merge(&all);
        assert!((from_empty.variance() - all.variance()).abs() < 1e-12);
    }

    #[test]
    fn running_stats_display() {
        let s: RunningStats = [1.0, 3.0].into_iter().collect();
        assert_eq!(format!("{s}"), "n=2 mean=2.000 min=1.000 max=3.000");
        assert_eq!(format!("{}", RunningStats::new()), "n=0");
    }

    #[test]
    fn running_stats_extend() {
        let mut s = RunningStats::new();
        s.extend([1.0, 2.0, 3.0]);
        assert_eq!(s.count(), 3);
    }

    #[test]
    fn sample_set_quantiles() {
        let mut s: SampleSet = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.len(), 100);
        assert_eq!(s.quantile(0.0), Some(1.0));
        assert_eq!(s.p50(), Some(50.0));
        assert_eq!(s.p95(), Some(95.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        assert_eq!(s.mean(), 50.5);
    }

    #[test]
    fn sample_set_empty_and_singleton() {
        let mut s = SampleSet::new();
        assert!(s.is_empty());
        assert_eq!(s.p50(), None);
        assert_eq!(s.mean(), 0.0);
        s.record(7.0);
        assert_eq!(s.p50(), Some(7.0));
        assert_eq!(s.p99(), Some(7.0));
    }

    #[test]
    fn sample_set_unsorted_insertion_order() {
        let mut s = SampleSet::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.p50(), Some(3.0));
        // Records after a quantile query re-sort lazily.
        s.record(0.0);
        assert_eq!(s.quantile(0.0), Some(0.0));
    }

    #[test]
    fn sample_set_merge() {
        let mut a: SampleSet = [1.0, 2.0].into_iter().collect();
        let b: SampleSet = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.quantile(1.0), Some(4.0));
    }

    #[test]
    fn sample_set_merge_preserves_sorted_with_empty_side() {
        // Merging an empty set into a sorted one must not clear `sorted`.
        let mut a: SampleSet = [3.0, 1.0, 2.0].into_iter().collect();
        let _ = a.p50(); // forces the sort
        assert!(a.sorted);
        a.merge(&SampleSet::new());
        assert!(a.sorted, "merging in an empty set must keep sortedness");
        assert_eq!(a.len(), 3);

        // Merging a sorted set into an empty one adopts its sortedness.
        let mut b = SampleSet::new();
        b.merge(&a);
        assert!(b.sorted);
        assert_eq!(b.quantile(0.0), Some(1.0));

        // Merging an unsorted set into an empty one stays unsorted.
        let unsorted: SampleSet = [9.0, 8.0].into_iter().collect();
        let mut c = SampleSet::new();
        c.merge(&unsorted);
        assert!(!c.sorted);
        assert_eq!(c.p50(), Some(8.0));

        // Two non-empty sorted sets still need a re-sort after merge.
        let mut d: SampleSet = [1.0].into_iter().collect();
        let _ = d.p50();
        let mut e: SampleSet = [0.5].into_iter().collect();
        let _ = e.p50();
        d.merge(&e);
        assert!(!d.sorted);
        assert_eq!(d.quantile(0.0), Some(0.5));
    }

    #[test]
    fn sample_set_histogram_exact() {
        let mut s: SampleSet = [0.5, 1.0, 1.5, 2.0, 10.0, 100.0].into_iter().collect();
        // (-∞, 1], (1, 2], (2, 50], (50, ∞)
        assert_eq!(s.histogram(&[1.0, 2.0, 50.0]), vec![2, 2, 1, 1]);
        // Histogram counts always sum to the sample count.
        let total: u64 = s.histogram(&[0.7]).iter().sum();
        assert_eq!(total, 6);
        // Empty set: all-zero counts.
        let mut empty = SampleSet::new();
        assert_eq!(empty.histogram(&[1.0, 2.0]), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn sample_set_histogram_rejects_unsorted_edges() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        let _ = s.histogram(&[2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "must not be NaN")]
    fn sample_set_rejects_nan() {
        SampleSet::new().record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn sample_set_rejects_bad_quantile() {
        let mut s: SampleSet = [1.0].into_iter().collect();
        let _ = s.quantile(1.5);
    }

    #[test]
    fn empty_sample_set_percentiles_are_none() {
        let mut s = SampleSet::default();
        assert_eq!(s.quantile(0.0), None);
        assert_eq!(s.p50(), None);
        assert_eq!(s.p95(), None);
        assert_eq!(s.p99(), None);
        assert_eq!(s.quantile(1.0), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut s: SampleSet = [7.25].into_iter().collect();
        for q in [0.0, 0.01, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(s.quantile(q), Some(7.25), "q={q}");
        }
    }

    #[test]
    fn nearest_rank_exact_edges() {
        // 100 samples 1..=100: nearest-rank pN is exactly sample N
        // (ceil(q*100) = q*100 lands on an integer rank — the edge case).
        let mut s: SampleSet = (1..=100).map(|v| v as f64).collect();
        assert_eq!(s.p50(), Some(50.0));
        assert_eq!(s.p95(), Some(95.0));
        assert_eq!(s.p99(), Some(99.0));
        assert_eq!(s.quantile(1.0), Some(100.0));
        // q=0 clamps up to rank 1 (the minimum), never rank 0.
        assert_eq!(s.quantile(0.0), Some(1.0));
        // 101 samples: ceil(0.95*101)=96 → one past the 100-sample answer.
        s.record(101.0);
        assert_eq!(s.p95(), Some(96.0));
    }

    #[test]
    fn tiny_sets_clamp_high_percentiles_to_max() {
        // With n < 100 the p99 rank saturates at n: p99 of a small set is
        // its maximum, not an interpolation.
        for n in 1..=20_usize {
            let mut s: SampleSet = (1..=n).map(|v| v as f64).collect();
            assert_eq!(s.p99(), Some(n as f64), "n={n}");
        }
    }

    #[test]
    fn duplicate_samples_and_unsorted_input() {
        let mut s: SampleSet = [5.0, 1.0, 5.0, 5.0, 2.0].into_iter().collect();
        assert_eq!(s.p50(), Some(5.0));
        assert_eq!(s.quantile(0.4), Some(2.0));
        assert_eq!(s.p99(), Some(5.0));
    }

    #[test]
    fn histogram_edge_values_land_in_lower_bucket() {
        // Buckets are (lo, hi]: a sample exactly on an edge counts below.
        let mut s: SampleSet = [1.0, 2.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.histogram(&[2.0]), vec![3, 1]);
        let mut empty = SampleSet::default();
        assert_eq!(empty.histogram(&[1.0, 2.0]), vec![0, 0, 0]);
        let mut one: SampleSet = [2.0].into_iter().collect();
        assert_eq!(one.histogram(&[2.0]), vec![1, 0]);
    }
}
