//! Battery and energy models for edge devices.
//!
//! The paper's Fig. 6 measures the remaining battery of a Samsung Galaxy S8
//! while mining with PoW (difficulty: 4 leading zero hex digits, ~25 s per
//! block) versus the proposed PoS, reporting **~4 blocks per 1 % battery
//! for PoW** and **~11 blocks per 1 % for PoS**. We cannot rerun the phone
//! experiment, so this crate substitutes a calibrated energy model: mining
//! work is counted in *operations* (hash evaluations for PoW, once-per-
//! second target checks for PoS) and each operation is charged a
//! per-operation energy fitted to the paper's two endpoints. The shape of
//! Fig. 6 — linear battery decay whose slope differs by the PoW/PoS energy
//! ratio — is fully determined by these counts.
//!
//! # Examples
//!
//! ```
//! use edgechain_energy::{Battery, DeviceProfile};
//!
//! let profile = DeviceProfile::galaxy_s8();
//! let mut battery = Battery::full(&profile);
//! // One expected PoW block at difficulty 4 (hex) costs ~65536 hashes.
//! battery.consume(profile.pow_hash_energy * 65_536.0);
//! assert!(battery.percent() < 100.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use edgechain_telemetry as telemetry;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Energy accounting categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EnergyCategory {
    /// PoW hash evaluations.
    PowHashing,
    /// PoS once-per-second target checks.
    PosChecking,
    /// Radio transmission.
    Transmit,
    /// Radio reception.
    Receive,
    /// Signature creation/verification.
    Crypto,
}

/// An edge-device energy profile.
///
/// All energies are in joules. The Galaxy S8 profile is calibrated so that
/// the simulated Fig. 6 reproduces the paper's 4-blocks-per-percent (PoW)
/// and 11-blocks-per-percent (PoS) endpoints; the per-operation values
/// therefore *include* the measured baseline draw of the running phone,
/// which is what the paper's experiment actually captured.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceProfile {
    /// Human-readable device name.
    pub name: String,
    /// Battery capacity in joules.
    pub battery_capacity: f64,
    /// Energy per PoW SHA-256 evaluation (joules), inclusive of baseline.
    pub pow_hash_energy: f64,
    /// Energy per PoS target check — one hash compare per second
    /// (joules), inclusive of baseline.
    pub pos_check_energy: f64,
    /// Energy per transmitted byte (joules).
    pub tx_energy_per_byte: f64,
    /// Energy per received byte (joules).
    pub rx_energy_per_byte: f64,
}

impl DeviceProfile {
    /// Samsung Galaxy S8 (paper's test device): 3000 mAh × 3.85 V ≈ 41580 J.
    ///
    /// Calibration (see crate docs): at difficulty 4 hex zeros a PoW block
    /// takes 16⁴ = 65536 expected hashes and 1 % battery buys 4 blocks, so
    /// each hash costs `415.8 / (4 × 65536)` J. A PoS block at the same
    /// 25 s pace takes 25 checks and 1 % buys 11 blocks, so each check
    /// costs `415.8 / (11 × 25)` J.
    pub fn galaxy_s8() -> Self {
        let capacity = 3.0 * 3.85 * 3600.0; // Ah × V × s/h = 41580 J
        let percent = capacity / 100.0;
        DeviceProfile {
            name: "Samsung Galaxy S8".to_string(),
            battery_capacity: capacity,
            pow_hash_energy: percent / (4.0 * 65_536.0),
            pos_check_energy: percent / (11.0 * 25.0),
            // 802.11n radio: ~0.6 µJ/byte TX, ~0.3 µJ/byte RX (typical
            // published figures; only used by the optional radio accounting).
            tx_energy_per_byte: 6e-7,
            rx_energy_per_byte: 3e-7,
        }
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        Self::galaxy_s8()
    }
}

/// A battery with finite charge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Battery {
    capacity: f64,
    remaining: f64,
}

impl Battery {
    /// A full battery for `profile`.
    pub fn full(profile: &DeviceProfile) -> Self {
        Battery {
            capacity: profile.battery_capacity,
            remaining: profile.battery_capacity,
        }
    }

    /// A battery with explicit capacity in joules.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is not strictly positive.
    pub fn with_capacity(capacity: f64) -> Self {
        assert!(capacity > 0.0, "battery capacity must be positive");
        Battery {
            capacity,
            remaining: capacity,
        }
    }

    /// Draws `joules`; clamps at empty. Returns `false` once empty.
    pub fn consume(&mut self, joules: f64) -> bool {
        self.remaining = (self.remaining - joules.max(0.0)).max(0.0);
        !self.is_empty()
    }

    /// Remaining charge in joules.
    pub fn remaining_joules(&self) -> f64 {
        self.remaining
    }

    /// Remaining charge in percent of capacity.
    pub fn percent(&self) -> f64 {
        100.0 * self.remaining / self.capacity
    }

    /// Whether the battery is exhausted.
    pub fn is_empty(&self) -> bool {
        self.remaining <= 0.0
    }
}

/// Accumulates energy spending by category.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyMeter {
    pow_hashing: f64,
    pos_checking: f64,
    transmit: f64,
    receive: f64,
    crypto: f64,
}

impl EnergyMeter {
    /// Creates a zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `joules` against `category`. Also accumulates into the
    /// telemetry gauge `energy.<category>_j` when a session is armed.
    pub fn record(&mut self, category: EnergyCategory, joules: f64) {
        debug_assert!(joules >= 0.0, "energy must be nonnegative");
        match category {
            EnergyCategory::PowHashing => self.pow_hashing += joules,
            EnergyCategory::PosChecking => self.pos_checking += joules,
            EnergyCategory::Transmit => self.transmit += joules,
            EnergyCategory::Receive => self.receive += joules,
            EnergyCategory::Crypto => self.crypto += joules,
        }
        if telemetry::is_enabled() {
            let gauge = match category {
                EnergyCategory::PowHashing => "energy.pow_hashing_j",
                EnergyCategory::PosChecking => "energy.pos_checking_j",
                EnergyCategory::Transmit => "energy.transmit_j",
                EnergyCategory::Receive => "energy.receive_j",
                EnergyCategory::Crypto => "energy.crypto_j",
            };
            telemetry::gauge_add(gauge, joules);
        }
    }

    /// Energy recorded against `category`.
    pub fn get(&self, category: EnergyCategory) -> f64 {
        match category {
            EnergyCategory::PowHashing => self.pow_hashing,
            EnergyCategory::PosChecking => self.pos_checking,
            EnergyCategory::Transmit => self.transmit,
            EnergyCategory::Receive => self.receive,
            EnergyCategory::Crypto => self.crypto,
        }
    }

    /// Total energy across categories.
    pub fn total(&self) -> f64 {
        self.pow_hashing + self.pos_checking + self.transmit + self.receive + self.crypto
    }
}

impl fmt::Display for EnergyMeter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pow={:.2}J pos={:.2}J tx={:.2}J rx={:.2}J crypto={:.2}J",
            self.pow_hashing, self.pos_checking, self.transmit, self.receive, self.crypto
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s8_capacity_matches_spec() {
        let p = DeviceProfile::galaxy_s8();
        assert!((p.battery_capacity - 41_580.0).abs() < 1.0);
    }

    #[test]
    fn calibration_pow_4_blocks_per_percent() {
        let p = DeviceProfile::galaxy_s8();
        let per_block = p.pow_hash_energy * 65_536.0;
        let blocks_per_percent = (p.battery_capacity / 100.0) / per_block;
        assert!((blocks_per_percent - 4.0).abs() < 1e-9);
    }

    #[test]
    fn calibration_pos_11_blocks_per_percent() {
        let p = DeviceProfile::galaxy_s8();
        let per_block = p.pos_check_energy * 25.0;
        let blocks_per_percent = (p.battery_capacity / 100.0) / per_block;
        assert!((blocks_per_percent - 11.0).abs() < 1e-9);
    }

    #[test]
    fn pos_block_cheaper_than_pow_block() {
        let p = DeviceProfile::galaxy_s8();
        let pow_block = p.pow_hash_energy * 65_536.0;
        let pos_block = p.pos_check_energy * 25.0;
        assert!(pos_block < pow_block);
        // The paper's endpoints imply a per-block energy ratio of 11/4.
        let ratio = pow_block / pos_block;
        assert!((ratio - 2.75).abs() < 1e-9);
    }

    #[test]
    fn battery_drains_and_clamps() {
        let mut b = Battery::with_capacity(100.0);
        assert_eq!(b.percent(), 100.0);
        assert!(b.consume(40.0));
        assert_eq!(b.percent(), 60.0);
        assert!(!b.consume(1000.0));
        assert!(b.is_empty());
        assert_eq!(b.remaining_joules(), 0.0);
    }

    #[test]
    fn negative_consumption_ignored() {
        let mut b = Battery::with_capacity(10.0);
        b.consume(-5.0);
        assert_eq!(b.percent(), 100.0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        let _ = Battery::with_capacity(0.0);
    }

    #[test]
    fn meter_accumulates_by_category() {
        let mut m = EnergyMeter::new();
        m.record(EnergyCategory::PowHashing, 5.0);
        m.record(EnergyCategory::PowHashing, 3.0);
        m.record(EnergyCategory::Transmit, 2.0);
        assert_eq!(m.get(EnergyCategory::PowHashing), 8.0);
        assert_eq!(m.get(EnergyCategory::Transmit), 2.0);
        assert_eq!(m.get(EnergyCategory::Receive), 0.0);
        assert_eq!(m.total(), 10.0);
    }

    #[test]
    fn meter_display_nonempty() {
        let m = EnergyMeter::new();
        assert!(format!("{m}").contains("pow="));
    }
}
