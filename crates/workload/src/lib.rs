//! Seeded open-workload generators for the edge-blockchain simulator.
//!
//! The paper's evaluation drives the network with a gentle *closed-loop*
//! workload: one exponential clock, one item at a time. This crate supplies
//! the *open* side — arrival processes that keep offering load whether or
//! not the network keeps up — so overload behaviour (admission, shedding,
//! backpressure) becomes measurable instead of hypothetical:
//!
//! * [`ArrivalProcess`] — homogeneous Poisson or a diurnal sinusoid;
//! * [`Burst`] — a flash-crowd multiplier over a time window, composable
//!   with either process;
//! * [`OpenArrivals`] — process + optional burst, sampled by Lewis–Shedler
//!   thinning so non-homogeneous rates stay exact;
//! * [`ZipfSampler`] — demand-skewed popularity for fetches, via exact
//!   rejection-inversion (no tables, works with a growing catalogue);
//! * [`TokenBucket`] — the admission/retry-budget primitive (pure
//!   arithmetic, no RNG, so admission decisions never perturb seeds);
//! * [`WorkloadConfig`] / [`OverloadConfig`] — the `NetworkConfig` sections
//!   the simulator consumes. Both default to fully inert so existing runs
//!   stay bit-identical.
//!
//! Every sampler takes the caller's RNG; the simulator dedicates a stream
//! (`seed ^ WORKLOAD_STREAM`) so enabling a workload never consumes draws
//! from the master stream.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// XOR'd into the run seed to derive the dedicated workload RNG stream.
pub const WORKLOAD_STREAM: u64 = 0x0BE2_AC71_7E55_u64;

/// XOR'd into the run seed to derive the dedicated backoff-jitter stream.
pub const BACKOFF_STREAM: u64 = 0xBACC_0FF5_EED5_u64;

/// The base arrival-rate shape, before any flash-crowd burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at a fixed rate.
    Poisson {
        /// Mean arrivals per minute.
        rate_per_min: f64,
    },
    /// Diurnal sinusoid: `base · (1 + amplitude · sin(2π·(t+phase)/period))`.
    ///
    /// `amplitude` is clamped to `[0, 1]` so the rate never goes negative;
    /// `period_secs` defaults to a compressed "day" that fits a short run.
    Diurnal {
        /// Mean arrivals per minute at the sinusoid midline.
        base_per_min: f64,
        /// Peak-to-midline swing as a fraction of the base, in `[0, 1]`.
        amplitude: f64,
        /// Length of one full cycle, in seconds.
        period_secs: f64,
        /// Phase offset, in seconds (0 starts at the midline, rising).
        phase_secs: f64,
    },
}

impl ArrivalProcess {
    /// Instantaneous rate in arrivals **per second** at sim time `t_secs`.
    pub fn rate_per_sec_at(&self, t_secs: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_min } => rate_per_min.max(0.0) / 60.0,
            ArrivalProcess::Diurnal {
                base_per_min,
                amplitude,
                period_secs,
                phase_secs,
            } => {
                let base = base_per_min.max(0.0) / 60.0;
                let amp = amplitude.clamp(0.0, 1.0);
                let period = period_secs.max(1.0);
                let angle = std::f64::consts::TAU * (t_secs + phase_secs) / period;
                base * (1.0 + amp * angle.sin())
            }
        }
    }

    /// Upper bound on the rate over all times, in arrivals per second.
    pub fn max_rate_per_sec(&self) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_per_min } => rate_per_min.max(0.0) / 60.0,
            ArrivalProcess::Diurnal {
                base_per_min,
                amplitude,
                ..
            } => base_per_min.max(0.0) / 60.0 * (1.0 + amplitude.clamp(0.0, 1.0)),
        }
    }
}

/// A flash-crowd window: the base rate is multiplied by `multiplier`
/// while `from_secs <= t < until_secs`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Rate multiplier during the window (≥ 0; values < 1 model lulls).
    pub multiplier: f64,
    /// Window start, seconds of sim time.
    pub from_secs: f64,
    /// Window end (exclusive), seconds of sim time.
    pub until_secs: f64,
}

impl Burst {
    fn factor_at(&self, t_secs: f64) -> f64 {
        if t_secs >= self.from_secs && t_secs < self.until_secs {
            self.multiplier.max(0.0)
        } else {
            1.0
        }
    }
}

/// A complete open arrival stream: base process plus optional burst.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpenArrivals {
    /// Base rate shape.
    pub process: ArrivalProcess,
    /// Optional flash-crowd window multiplying the base rate.
    pub burst: Option<Burst>,
}

impl OpenArrivals {
    /// A plain Poisson stream at `rate_per_min`.
    pub fn poisson(rate_per_min: f64) -> Self {
        OpenArrivals {
            process: ArrivalProcess::Poisson { rate_per_min },
            burst: None,
        }
    }

    /// Instantaneous rate (per second) including any active burst.
    pub fn rate_per_sec_at(&self, t_secs: f64) -> f64 {
        let base = self.process.rate_per_sec_at(t_secs);
        match &self.burst {
            Some(b) => base * b.factor_at(t_secs),
            None => base,
        }
    }

    /// Upper bound on the rate over all times (per second).
    pub fn max_rate_per_sec(&self) -> f64 {
        let base = self.process.max_rate_per_sec();
        match &self.burst {
            Some(b) => base * b.multiplier.max(0.0).max(1.0),
            None => base,
        }
    }

    /// Samples the next arrival time strictly after `t_secs` by
    /// Lewis–Shedler thinning against the majorising constant rate
    /// [`Self::max_rate_per_sec`]. Exact for any bounded rate function and
    /// fully determined by the RNG stream. Returns `f64::INFINITY` when the
    /// stream is silent (zero max rate).
    pub fn next_arrival_secs<R: Rng + ?Sized>(&self, t_secs: f64, rng: &mut R) -> f64 {
        let lambda_max = self.max_rate_per_sec();
        if lambda_max <= 0.0 {
            return f64::INFINITY;
        }
        let mut t = t_secs;
        // Bounded loop: thinning accepts with mean probability
        // rate/λ_max, so hitting the cap is astronomically unlikely; the
        // fallback keeps the sampler total.
        for _ in 0..100_000 {
            let u: f64 = rng.gen();
            t += -(1.0 - u).ln() / lambda_max;
            let accept: f64 = rng.gen();
            if accept * lambda_max <= self.rate_per_sec_at(t) {
                return t;
            }
        }
        t
    }
}

/// Zipf-skewed popularity over a catalogue of `n` ranks.
///
/// `P(rank k) ∝ (k+1)^-exponent` for ranks `0..n` (rank 0 most popular).
/// Sampling is exact rejection-inversion against the continuous envelope
/// `x^-s` — O(1) expected draws, no precomputed tables, so the catalogue
/// can grow between samples (items keep arriving mid-run).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    /// Skew exponent `s ≥ 0`; 0 is uniform, ~1 is classic web-like skew.
    pub exponent: f64,
}

impl ZipfSampler {
    /// Creates a sampler with the given skew exponent (clamped to ≥ 0).
    pub fn new(exponent: f64) -> Self {
        ZipfSampler {
            exponent: exponent.max(0.0),
        }
    }

    /// Draws a rank in `0..n` (0 = most popular). `n = 0` returns 0.
    pub fn sample<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> usize {
        if n <= 1 {
            return 0;
        }
        let s = self.exponent;
        let nf = n as f64;
        // H(x) = ∫ x^-s dx, increasing on (0, ∞) for every s ≥ 0.
        let near_one = (s - 1.0).abs() < 1e-9;
        let h = |x: f64| -> f64 {
            if near_one {
                x.ln()
            } else {
                x.powf(1.0 - s) / (1.0 - s)
            }
        };
        let h_inv = |y: f64| -> f64 {
            if near_one {
                y.exp()
            } else {
                ((1.0 - s) * y).powf(1.0 / (1.0 - s))
            }
        };
        let lo = h(0.5);
        let hi = h(nf + 0.5);
        // Midpoint rule on the convex decreasing x^-s guarantees each
        // integer bin's continuous mass dominates k^-s, so this rejection
        // scheme is exact; acceptance is > 80% even at s = 2.
        for _ in 0..256 {
            let u = lo + rng.gen::<f64>() * (hi - lo);
            let x = h_inv(u);
            let k = x.round().clamp(1.0, nf);
            let bin_mass = h(k + 0.5) - h(k - 0.5);
            if rng.gen::<f64>() * bin_mass <= k.powf(-s) {
                return k as usize - 1;
            }
        }
        0
    }
}

/// A deterministic token bucket: `rate` tokens per second accrue up to
/// `burst`; each admitted operation takes `cost` tokens. Pure arithmetic
/// over sim-clock milliseconds — no RNG, no wall clock — so admission
/// decisions replay bit-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    rate_per_sec: f64,
    burst: f64,
    tokens: f64,
    last_ms: u64,
}

impl TokenBucket {
    /// A bucket refilled at `rate_per_min` per minute, holding at most
    /// `burst` tokens, starting full.
    pub fn per_minute(rate_per_min: f64, burst: f64) -> Self {
        let burst = burst.max(1.0);
        TokenBucket {
            rate_per_sec: rate_per_min.max(0.0) / 60.0,
            burst,
            tokens: burst,
            last_ms: 0,
        }
    }

    /// Tokens currently available at `now_ms`.
    pub fn available(&mut self, now_ms: u64) -> f64 {
        self.refill(now_ms);
        self.tokens
    }

    /// Attempts to take `cost` tokens at `now_ms`; all-or-nothing.
    pub fn try_take(&mut self, now_ms: u64, cost: f64) -> bool {
        self.refill(now_ms);
        if self.tokens >= cost {
            self.tokens -= cost;
            true
        } else {
            false
        }
    }

    fn refill(&mut self, now_ms: u64) {
        if now_ms > self.last_ms {
            let dt = (now_ms - self.last_ms) as f64 / 1_000.0;
            self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.burst);
            self.last_ms = now_ms;
        }
    }
}

/// The open-workload section of `NetworkConfig`.
///
/// Defaults to `enabled: false`, which leaves the simulator on its original
/// closed-loop generator and keeps every existing seed bit-identical.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// Master switch; when false every other field is ignored.
    pub enabled: bool,
    /// Open arrival stream for new data items (replaces the closed-loop
    /// exponential clock when enabled).
    pub arrivals: OpenArrivals,
    /// Optional open fetch stream. `None` keeps only the closed-loop
    /// per-node request clock; `Some` adds open fetch arrivals whose
    /// requester is drawn uniformly and whose target item follows
    /// [`Self::zipf_exponent`].
    pub fetches: Option<OpenArrivals>,
    /// Popularity skew for open fetches over the item catalogue, newest
    /// rank first (flash crowds chase fresh content).
    pub zipf_exponent: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            enabled: false,
            arrivals: OpenArrivals::poisson(1.0),
            fetches: None,
            zipf_exponent: 0.9,
        }
    }
}

/// Overload-protection knobs for the simulator. Every limit defaults to
/// `None`/zero — fully inert — so the section can ride every config without
/// disturbing existing runs; set limits explicitly to engage protection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadConfig {
    /// Admission token-bucket rate for new items, per minute
    /// (`None` = no admission control at generation).
    pub admission_items_per_min: Option<f64>,
    /// Burst capacity of the item-admission bucket.
    pub admission_items_burst: f64,
    /// Admission token-bucket rate for fetch entry, per minute
    /// (`None` = no admission control at fetch entry).
    pub admission_fetches_per_min: Option<f64>,
    /// Burst capacity of the fetch-admission bucket.
    pub admission_fetches_burst: f64,
    /// Ledger tokens debited per admitted operation (all-or-nothing): an
    /// account that cannot pay is shed with `reason=price`, making
    /// rejection visible in balances instead of silent.
    pub admission_price_tokens: u64,
    /// Bound on the miner-side pending-metadata queue; arrivals beyond it
    /// are shed (`None` = unbounded, the original behaviour).
    pub max_pending_items: Option<usize>,
    /// Bound on concurrently in-flight (awaiting-retry) fetches per node;
    /// excess entries fail fast instead of queueing (`None` = unbounded).
    pub max_inflight_per_node: Option<usize>,
    /// Global retry budget refill rate, per minute (`None` = unlimited
    /// retries, the original behaviour). A denied fetch retry is a
    /// terminal failure; a denied snapshot/recover retry re-polls later.
    pub retry_budget_per_min: Option<f64>,
    /// Burst capacity of the retry-budget bucket.
    pub retry_budget_burst: f64,
    /// Degradation ladder thresholds, as fractions of `max_pending_items`
    /// (ignored unless that bound is set): at L1 lowest-priority (open
    /// workload) fetches are shed, at L2 proactive replication is
    /// deferred to the repair sweep, at L3 repair sweeps themselves are
    /// deferred. Consensus is never throttled.
    pub degrade_l1_frac: f64,
    /// L2 threshold fraction (defer proactive replication).
    pub degrade_l2_frac: f64,
    /// L3 threshold fraction (defer repair sweeps).
    pub degrade_l3_frac: f64,
}

impl Default for OverloadConfig {
    fn default() -> Self {
        OverloadConfig {
            admission_items_per_min: None,
            admission_items_burst: 8.0,
            admission_fetches_per_min: None,
            admission_fetches_burst: 16.0,
            admission_price_tokens: 0,
            max_pending_items: None,
            max_inflight_per_node: None,
            retry_budget_per_min: None,
            retry_budget_burst: 32.0,
            degrade_l1_frac: 0.50,
            degrade_l2_frac: 0.75,
            degrade_l3_frac: 0.90,
        }
    }
}

impl OverloadConfig {
    /// Current rung of the degradation ladder for a pending-queue depth:
    /// 0 = healthy, 1 = shed low-priority fetches, 2 = also defer
    /// proactive replication, 3 = also defer repair sweeps. Always 0 when
    /// no pending bound is configured.
    pub fn degrade_level(&self, pending: usize) -> u8 {
        let Some(max) = self.max_pending_items else {
            return 0;
        };
        if max == 0 {
            return 0;
        }
        let frac = pending as f64 / max as f64;
        if frac >= self.degrade_l3_frac {
            3
        } else if frac >= self.degrade_l2_frac {
            2
        } else if frac >= self.degrade_l1_frac {
            1
        } else {
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn poisson_rate_is_flat() {
        let p = ArrivalProcess::Poisson { rate_per_min: 30.0 };
        assert_eq!(p.rate_per_sec_at(0.0), 0.5);
        assert_eq!(p.rate_per_sec_at(9_999.0), 0.5);
        assert_eq!(p.max_rate_per_sec(), 0.5);
    }

    #[test]
    fn diurnal_rate_oscillates_within_bounds() {
        let p = ArrivalProcess::Diurnal {
            base_per_min: 60.0,
            amplitude: 0.5,
            period_secs: 3_600.0,
            phase_secs: 0.0,
        };
        let max = p.max_rate_per_sec();
        assert!((max - 1.5).abs() < 1e-12);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for t in 0..3_600 {
            let r = p.rate_per_sec_at(t as f64);
            assert!(r >= 0.0 && r <= max + 1e-12);
            lo = lo.min(r);
            hi = hi.max(r);
        }
        assert!(lo < 0.51, "trough should dip toward base·(1-amp): {lo}");
        assert!(hi > 1.49, "peak should reach base·(1+amp): {hi}");
    }

    #[test]
    fn burst_multiplies_only_inside_window() {
        let a = OpenArrivals {
            process: ArrivalProcess::Poisson { rate_per_min: 60.0 },
            burst: Some(Burst {
                multiplier: 5.0,
                from_secs: 100.0,
                until_secs: 200.0,
            }),
        };
        assert_eq!(a.rate_per_sec_at(99.0), 1.0);
        assert_eq!(a.rate_per_sec_at(100.0), 5.0);
        assert_eq!(a.rate_per_sec_at(199.9), 5.0);
        assert_eq!(a.rate_per_sec_at(200.0), 1.0);
        assert_eq!(a.max_rate_per_sec(), 5.0);
    }

    #[test]
    fn thinning_hits_the_poisson_mean() {
        let a = OpenArrivals::poisson(60.0); // 1/s
        let mut rng = StdRng::seed_from_u64(7);
        let mut t = 0.0;
        let mut n = 0u32;
        while t < 10_000.0 {
            t = a.next_arrival_secs(t, &mut rng);
            n += 1;
        }
        // 10k expected arrivals; 5% tolerance is ~16σ.
        assert!((9_500..=10_500).contains(&n), "got {n} arrivals");
    }

    #[test]
    fn thinning_tracks_a_burst() {
        let a = OpenArrivals {
            process: ArrivalProcess::Poisson { rate_per_min: 60.0 },
            burst: Some(Burst {
                multiplier: 10.0,
                from_secs: 1_000.0,
                until_secs: 2_000.0,
            }),
        };
        let mut rng = StdRng::seed_from_u64(11);
        let (mut before, mut during) = (0u32, 0u32);
        let mut t = 0.0;
        while t < 2_000.0 {
            t = a.next_arrival_secs(t, &mut rng);
            if t < 1_000.0 {
                before += 1;
            } else if t < 2_000.0 {
                during += 1;
            }
        }
        assert!(
            during > 5 * before,
            "burst window should dominate: before={before} during={during}"
        );
    }

    #[test]
    fn arrivals_are_deterministic_per_seed() {
        let a = OpenArrivals {
            process: ArrivalProcess::Diurnal {
                base_per_min: 20.0,
                amplitude: 0.8,
                period_secs: 600.0,
                phase_secs: 120.0,
            },
            burst: Some(Burst {
                multiplier: 4.0,
                from_secs: 300.0,
                until_secs: 400.0,
            }),
        };
        let stream = |seed: u64| -> Vec<u64> {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = 0.0;
            (0..200)
                .map(|_| {
                    t = a.next_arrival_secs(t, &mut rng);
                    (t * 1_000.0) as u64
                })
                .collect()
        };
        assert_eq!(stream(42), stream(42));
        assert_ne!(stream(42), stream(43));
    }

    #[test]
    fn silent_stream_returns_infinity() {
        let a = OpenArrivals::poisson(0.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(a.next_arrival_secs(5.0, &mut rng).is_infinite());
    }

    #[test]
    fn zipf_is_skewed_and_monotone() {
        let z = ZipfSampler::new(1.1);
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50;
        let mut counts = vec![0u32; n];
        for _ in 0..200_000 {
            counts[z.sample(n, &mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[9] && counts[9] > counts[49],
            "head should dominate: {} vs {} vs {}",
            counts[0],
            counts[9],
            counts[49]
        );
        // Rank 0 vs rank 1 should be ~2^1.1 ≈ 2.14 apart.
        let ratio = counts[0] as f64 / counts[1] as f64;
        assert!((1.8..=2.6).contains(&ratio), "rank0/rank1 ratio {ratio}");
    }

    #[test]
    fn zipf_zero_exponent_is_uniform() {
        let z = ZipfSampler::new(0.0);
        let mut rng = StdRng::seed_from_u64(5);
        let n = 10;
        let mut counts = vec![0u32; n];
        for _ in 0..100_000 {
            counts[z.sample(n, &mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_500..=11_500).contains(&c), "not uniform: {counts:?}");
        }
    }

    #[test]
    fn zipf_handles_degenerate_catalogues() {
        let z = ZipfSampler::new(1.0);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(z.sample(0, &mut rng), 0);
        assert_eq!(z.sample(1, &mut rng), 0);
        for _ in 0..1_000 {
            assert!(z.sample(2, &mut rng) < 2);
        }
    }

    #[test]
    fn zipf_is_deterministic_per_seed() {
        let z = ZipfSampler::new(0.9);
        let draw = |seed: u64| -> Vec<usize> {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..100).map(|i| z.sample(10 + i, &mut rng)).collect()
        };
        assert_eq!(draw(77), draw(77));
        assert_ne!(draw(77), draw(78));
    }

    #[test]
    fn token_bucket_enforces_rate_and_burst() {
        let mut b = TokenBucket::per_minute(60.0, 2.0); // 1/s, burst 2
        assert!(b.try_take(0, 1.0));
        assert!(b.try_take(0, 1.0));
        assert!(!b.try_take(0, 1.0), "burst exhausted");
        assert!(!b.try_take(500, 1.0), "only 0.5 refilled");
        assert!(b.try_take(1_500, 1.0), "1.5 tokens after 1.5 s");
        // Never exceeds burst no matter the idle gap.
        assert!(b.try_take(1_000_000, 2.0));
        assert!(!b.try_take(1_000_000, 0.5));
    }

    #[test]
    fn token_bucket_is_pure_arithmetic() {
        let run = || {
            let mut b = TokenBucket::per_minute(30.0, 4.0);
            (0..1_000)
                .map(|i| b.try_take(i * 700, 1.0))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn degrade_ladder_steps_with_depth() {
        let cfg = OverloadConfig {
            max_pending_items: Some(100),
            ..OverloadConfig::default()
        };
        assert_eq!(cfg.degrade_level(0), 0);
        assert_eq!(cfg.degrade_level(49), 0);
        assert_eq!(cfg.degrade_level(50), 1);
        assert_eq!(cfg.degrade_level(75), 2);
        assert_eq!(cfg.degrade_level(90), 3);
        assert_eq!(cfg.degrade_level(1_000), 3);
    }

    #[test]
    fn degrade_ladder_inert_without_bound() {
        let cfg = OverloadConfig::default();
        assert_eq!(cfg.degrade_level(usize::MAX / 2), 0);
    }

    #[test]
    fn defaults_are_inert() {
        let w = WorkloadConfig::default();
        assert!(!w.enabled);
        let o = OverloadConfig::default();
        assert!(o.admission_items_per_min.is_none());
        assert!(o.admission_fetches_per_min.is_none());
        assert!(o.max_pending_items.is_none());
        assert!(o.max_inflight_per_node.is_none());
        assert!(o.retry_budget_per_min.is_none());
        assert_eq!(o.admission_price_tokens, 0);
    }
}
