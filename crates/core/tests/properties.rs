//! Property-based tests for the core blockchain invariants: PoS math,
//! storage accounting, chain integrity, and metadata signatures.

use edgechain_core::account::{Identity, Ledger};
use edgechain_core::block::Block;
use edgechain_core::chain::Blockchain;
use edgechain_core::metadata::{DataId, DataType, Location, MetadataItem};
use edgechain_core::pos::{hit, run_round, Amendment, Candidate};
use edgechain_core::storage::NodeStorage;
use edgechain_crypto::sha256;
use edgechain_sim::NodeId;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn mining_delay_is_minimal_everywhere(
        h in any::<u64>(),
        u in 1u64..1_000_000,
        sum_u in 1u64..100_000_000,
        n in 1u64..1000,
        t0 in 1u64..3600,
    ) {
        let us: Vec<u64> = vec![sum_u / n.min(sum_u).max(1); n.min(64) as usize];
        let b = Amendment::compute(&us, t0);
        let t = b.mining_delay_secs(h, u);
        prop_assert!(t >= 1);
        prop_assert!(b.meets_target(h, u, t) || t == edgechain_core::pos::MAX_DELAY_SECS);
        if t > 1 && t < edgechain_core::pos::MAX_DELAY_SECS {
            prop_assert!(!b.meets_target(h, u, t - 1), "t={t} not minimal");
        }
    }

    #[test]
    fn target_monotone_in_time_and_contribution(
        u1 in 1u64..1_000_000,
        u2 in 1u64..1_000_000,
        t1 in 1u64..100_000,
        t2 in 1u64..100_000,
        num in 1u128..1_000_000,
        den in 1u128..1_000_000,
    ) {
        let b = Amendment::from_fraction(num, den);
        let (ulo, uhi) = (u1.min(u2), u1.max(u2));
        let (tlo, thi) = (t1.min(t2), t1.max(t2));
        prop_assert!(b.target(ulo, tlo) <= b.target(uhi, tlo));
        prop_assert!(b.target(ulo, tlo) <= b.target(ulo, thi));
    }

    #[test]
    fn hits_are_stable_and_account_bound(seed_a in any::<u64>(), seed_b in any::<u64>()) {
        let prev = sha256(b"prop");
        let a = Identity::from_seed(seed_a).account();
        let b = Identity::from_seed(seed_b).account();
        prop_assert_eq!(hit(&prev, &a), hit(&prev, &a));
        if seed_a != seed_b {
            prop_assert_ne!(hit(&prev, &a), hit(&prev, &b));
        }
    }

    #[test]
    fn pos_round_winner_is_verifiable(
        seeds in prop::collection::vec(any::<u64>(), 2..12),
        tokens in prop::collection::vec(1u64..50, 2..12),
        t0 in 10u64..600,
    ) {
        let n = seeds.len().min(tokens.len());
        let candidates: Vec<Candidate> = (0..n)
            .map(|i| Candidate {
                account: Identity::from_seed(seeds[i]).account(),
                tokens: tokens[i],
                stored_items: 1 + (i as u64 % 5),
            })
            .collect();
        let prev = sha256(b"round");
        let out = run_round(&prev, &candidates, t0);
        prop_assert!(out.winner < n);
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        prop_assert!(edgechain_core::pos::verify_claim(
            &prev, &candidates[out.winner], &us, t0, out.delay_secs
        ));
        // No candidate could have mined strictly earlier.
        let b = Amendment::compute(&us, t0);
        for (i, c) in candidates.iter().enumerate() {
            let h = hit(&prev, &c.account);
            prop_assert!(b.mining_delay_secs(h, us[i]) >= out.delay_secs);
        }
    }

    #[test]
    fn storage_never_exceeds_capacity(
        capacity in 1u64..64,
        ops in prop::collection::vec((0u8..5, 0u64..64), 0..200),
    ) {
        let mut s = NodeStorage::new(capacity);
        for (op, arg) in ops {
            match op {
                0 => { s.store_data(DataId(arg)); }
                1 => { s.store_block(arg); }
                2 => { s.cache_recent(arg); }
                3 => { s.evict_data(DataId(arg)); }
                _ => { s.grow_recent_quota(); }
            }
            prop_assert!(s.used_slots() <= s.capacity());
            prop_assert!(s.q_value() >= 1);
            let f = s.fdc();
            prop_assert!(f >= 0.0);
            prop_assert_eq!(f.is_infinite(), s.is_full());
        }
    }

    #[test]
    fn ledger_rescale_preserves_ordering(
        balances in prop::collection::vec(0u64..10_000, 2..20),
    ) {
        let mut ledger = Ledger::new();
        let accounts: Vec<_> = (0..balances.len())
            .map(|i| Identity::from_seed(i as u64).account())
            .collect();
        for (acct, &b) in accounts.iter().zip(&balances) {
            ledger.credit(*acct, b);
        }
        let before: Vec<u64> = accounts.iter().map(|a| ledger.balance(a)).collect();
        ledger.rescale_halve();
        let after: Vec<u64> = accounts.iter().map(|a| ledger.balance(a)).collect();
        for i in 0..before.len() {
            prop_assert!(after[i] >= 1);
            for j in 0..before.len() {
                if before[i] > before[j] {
                    prop_assert!(after[i] >= after[j]);
                }
            }
        }
    }

    #[test]
    fn chain_rejects_any_single_field_tamper(
        field in 0usize..5,
        delta in 1u64..1000,
    ) {
        let mut chain = Blockchain::new();
        for i in 0..3u64 {
            let b = Block::new(
                chain.height() + 1,
                chain.tip().hash,
                (i + 1) * 60,
                sha256(format!("pos{i}").as_bytes()),
                Identity::from_seed(i).account(),
                60,
                Amendment::from_fraction(1, 1000),
                vec![],
                vec![NodeId(0)],
                vec![],
                vec![],
            );
            chain.push(b).unwrap();
        }
        let mut blocks = chain.as_slice().to_vec();
        // Tamper one field of block 2 without re-sealing.
        match field {
            0 => blocks[2].timestamp_secs += delta,
            1 => blocks[2].delay_secs += delta,
            2 => blocks[2].index += delta,
            3 => blocks[2].storing_nodes.push(NodeId(delta as usize)),
            _ => blocks[2].prev_hash = sha256(delta.to_be_bytes()),
        }
        prop_assert!(Blockchain::from_blocks(blocks).is_err());
    }
}

proptest! {
    // Signature-heavy cases: keep the count low (modexp cost).
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn metadata_signature_binds_all_signed_fields(
        seed in any::<u64>(),
        data_id in any::<u64>(),
        size in 1u64..10_000_000,
        valid in 1u64..10_000,
    ) {
        let keys = Identity::from_seed(seed);
        let item = MetadataItem::new_signed(
            keys.keys(),
            DataId(data_id),
            DataType::Media("clip".into()),
            77,
            Location { label: "x".into(), x: 1.0, y: 2.0 },
            valid,
            Some("prop".into()),
            size,
        );
        prop_assert!(item.verify());
        let mut t = item.clone();
        t.data_id = DataId(data_id.wrapping_add(1));
        prop_assert!(!t.verify());
        let mut t = item.clone();
        t.producer = Identity::from_seed(seed.wrapping_add(1)).account();
        prop_assert!(!t.verify());
        let mut t = item;
        t.properties = None;
        prop_assert!(!t.verify());
    }
}
