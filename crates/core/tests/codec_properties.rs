//! Property-based tests for the binary codec: structural roundtrips for
//! arbitrary metadata/blocks and total decoding on corrupted input.

use edgechain_core::account::Identity;
use edgechain_core::block::Block;
use edgechain_core::codec::{
    decode_anchor, decode_block, decode_chain, decode_metadata, decode_snapshot, encode_anchor,
    encode_block, encode_chain, encode_metadata, encode_snapshot,
};
use edgechain_core::metadata::{DataId, DataType, Location, MetadataItem};
use edgechain_core::pos::Amendment;
use edgechain_core::{Blockchain, Snapshot};
use edgechain_crypto::sha256;
use edgechain_sim::NodeId;
use proptest::prelude::*;

fn arb_data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Sensing),
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Media),
        Just(DataType::KeyExchange),
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Other),
    ]
}

prop_compose! {
    fn arb_metadata()(
        seed in 0u64..16,
        data_id in any::<u64>(),
        data_type in arb_data_type(),
        produced in any::<u64>(),
        label in "[\\PC]{0,24}",
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        valid in any::<u64>(),
        props in prop::option::of("[\\PC]{0,24}"),
        size in any::<u64>(),
        nodes in prop::collection::vec(0usize..1000, 0..12),
    ) -> MetadataItem {
        // A real signature (from a small seed pool, modexp is pricey) over
        // arbitrary descriptive fields.
        let mut item = MetadataItem::new_signed(
            Identity::from_seed(seed).keys(),
            DataId(data_id),
            data_type,
            produced,
            Location { label, x, y },
            valid,
            props,
            size,
        );
        item.storing_nodes = nodes.into_iter().map(NodeId).collect();
        item
    }
}

prop_compose! {
    fn arb_block()(
        index in any::<u64>(),
        ts in any::<u64>(),
        delay in any::<u64>(),
        num in 1u128..u128::MAX,
        den in 1u128..u128::MAX,
        miner_seed in 0u64..16,
        items in prop::collection::vec(arb_metadata(), 0..4),
        storers in prop::collection::vec(0usize..500, 0..8),
        prev_storers in prop::collection::vec(0usize..500, 0..8),
        recents in prop::collection::vec(0usize..500, 0..8),
        seed_bytes in any::<u64>(),
    ) -> Block {
        Block::new(
            index,
            sha256(seed_bytes.to_be_bytes()),
            ts,
            sha256(seed_bytes.to_le_bytes()),
            Identity::from_seed(miner_seed).account(),
            delay,
            Amendment::from_fraction(num, den),
            items,
            storers.into_iter().map(NodeId).collect(),
            prev_storers.into_iter().map(NodeId).collect(),
            recents.into_iter().map(NodeId).collect(),
        )
    }
}

/// A small pruned chain sealed into a snapshot: six blocks, the first
/// three collapsed into a signed anchor, two live registry entries.
fn lifecycle_snapshot() -> Snapshot {
    let mut chain = Blockchain::new();
    for i in 0..6u64 {
        let prev = chain.tip();
        let miner = Identity::from_seed(i % 3).account();
        let b = Block::new(
            prev.index + 1,
            prev.hash,
            (i + 1) * 60,
            edgechain_core::pos::next_pos_hash(&prev.pos_hash, &miner),
            miner,
            60,
            Amendment::from_fraction(1, 1000),
            Vec::new(),
            vec![NodeId(0)],
            prev.storing_nodes.clone(),
            Vec::new(),
        );
        chain.push(b).unwrap();
    }
    chain.prune_below(3, Identity::from_seed(9).keys());
    let item = |id: u64| {
        MetadataItem::new_signed(
            Identity::from_seed(id).keys(),
            DataId(id),
            DataType::Sensing("PM2.5".into()),
            id * 60,
            Location {
                label: "snap".into(),
                x: 1.0,
                y: 2.0,
            },
            1_440,
            None,
            4_096,
        )
    };
    Snapshot::seal(
        chain.anchor().unwrap().clone(),
        chain.as_slice().to_vec(),
        vec![(item(2), 4u64), (item(3), 5u64)],
        Identity::from_seed(1).keys(),
    )
}

proptest! {
    // Each case signs metadata (modexp); keep counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn metadata_roundtrips(item in arb_metadata()) {
        let enc = encode_metadata(&item);
        let dec = decode_metadata(&enc).unwrap();
        prop_assert_eq!(dec, item);
    }

    #[test]
    fn block_roundtrips(block in arb_block()) {
        let enc = encode_block(&block);
        prop_assert_eq!(block.wire_size(), enc.len() as u64);
        let dec = decode_block(&enc).unwrap();
        prop_assert_eq!(&dec, &block);
        prop_assert!(dec.is_well_formed());
    }

    #[test]
    fn chain_roundtrips(blocks in prop::collection::vec(arb_block(), 0..3)) {
        let enc = encode_chain(&blocks);
        let dec = decode_chain(&enc).unwrap();
        prop_assert_eq!(dec, blocks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decoding_never_panics_on_mutations(
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        // Take one fixed valid encoding, then flip a byte and truncate.
        let block = Block::genesis();
        let mut enc = encode_block(&block);
        let p = pos.index(enc.len());
        enc[p] = byte;
        let t = truncate.index(enc.len() + 1);
        let _ = decode_block(&enc[..t]); // must not panic
        let _ = decode_metadata(&enc[..t]);
        let _ = decode_chain(&enc[..t]);
    }

    /// Wholly arbitrary byte strings — the garbage-payload attack on the
    /// wire — must decode to `Err`, never panic, for every decoder.
    #[test]
    fn decoding_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_block(&bytes);
        let _ = decode_metadata(&bytes);
        let _ = decode_chain(&bytes);
        // Lifecycle encodings are total too, and random bytes can never
        // produce a verifying anchor or snapshot (the signature would have
        // to check out against the embedded key).
        if let Ok(anchor) = decode_anchor(&bytes) {
            prop_assert!(!anchor.verify(), "random bytes verified as an anchor");
        }
        if let Ok(snapshot) = decode_snapshot(&bytes) {
            prop_assert!(!snapshot.verify(), "random bytes verified as a snapshot");
        }
    }
}

proptest! {
    // Rich blocks sign metadata (modexp); keep case counts small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Corrupting a *rich* block (metadata items, storer lists) and
    /// truncating at an arbitrary point never panics a decoder, and a
    /// flipped byte never decodes back to the original sealed block.
    #[test]
    fn rich_block_corruption_is_total(
        block in arb_block(),
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let mut enc = encode_block(&block);
        let p = pos.index(enc.len());
        let flipped = enc[p] != byte;
        enc[p] = byte;
        if let Ok(dec) = decode_block(&enc) {
            if flipped {
                prop_assert_ne!(&dec, &block, "corrupt bytes decoded to the original");
            }
        }
        let t = truncate.index(enc.len() + 1);
        let _ = decode_block(&enc[..t]);
        let _ = decode_chain(&enc[..t]);
    }

    /// Flipping any byte of a sealed snapshot encoding either fails to
    /// decode or decodes to something that no longer verifies — a
    /// tampering snapshot server can never slip a mutation past the
    /// rejoiner's check. Truncations must error, never panic.
    #[test]
    fn snapshot_corruption_never_panics_and_never_verifies(
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let snapshot = lifecycle_snapshot();
        let mut enc = encode_snapshot(&snapshot);
        let p = pos.index(enc.len());
        let flipped = enc[p] != byte;
        enc[p] = byte;
        if let Ok(dec) = decode_snapshot(&enc) {
            if flipped {
                prop_assert!(!dec.verify(), "tampered snapshot verified (byte {p})");
            }
        }
        let t = truncate.index(enc.len());
        prop_assert!(decode_snapshot(&enc[..t]).is_err(), "truncation at {t} decoded");
        let _ = decode_anchor(&enc[..t]); // must not panic
    }

    /// Same property for the standalone anchor encoding.
    #[test]
    fn anchor_corruption_never_panics_and_never_verifies(
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let anchor = lifecycle_snapshot().anchor;
        let mut enc = encode_anchor(&anchor);
        let p = pos.index(enc.len());
        let flipped = enc[p] != byte;
        enc[p] = byte;
        if let Ok(dec) = decode_anchor(&enc) {
            if flipped {
                prop_assert!(!dec.verify(), "tampered anchor verified (byte {p})");
            }
        }
        let t = truncate.index(enc.len());
        prop_assert!(decode_anchor(&enc[..t]).is_err(), "truncation at {t} decoded");
    }

    /// The sealed fast path (`Block::encoded`, the shared `Arc<[u8]>`
    /// used by broadcast and replica repair) stays byte-identical to the
    /// plain codec, roundtrips, and survives truncation without panicking.
    #[test]
    fn sealed_encoding_matches_codec_and_decodes_totally(
        block in arb_block(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let sealed = block.encoded();
        prop_assert_eq!(sealed.as_ref(), encode_block(&block).as_slice());
        prop_assert_eq!(block.wire_size(), sealed.len() as u64);
        let dec = decode_block(&sealed).unwrap();
        prop_assert_eq!(&dec, &block);
        // A decoded copy re-seals to the same bytes (cache is rebuilt).
        prop_assert_eq!(dec.encoded().as_ref(), sealed.as_ref());
        let t = truncate.index(sealed.len());
        let _ = decode_block(&sealed[..t]); // must not panic
    }
}
