//! Property-based tests for the binary codec: structural roundtrips for
//! arbitrary metadata/blocks and total decoding on corrupted input.

use edgechain_core::account::Identity;
use edgechain_core::block::Block;
use edgechain_core::codec::{
    decode_block, decode_chain, decode_metadata, encode_block, encode_chain, encode_metadata,
};
use edgechain_core::metadata::{DataId, DataType, Location, MetadataItem};
use edgechain_core::pos::Amendment;
use edgechain_crypto::sha256;
use edgechain_sim::NodeId;
use proptest::prelude::*;

fn arb_data_type() -> impl Strategy<Value = DataType> {
    prop_oneof![
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Sensing),
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Media),
        Just(DataType::KeyExchange),
        "[a-zA-Z0-9/]{0,20}".prop_map(DataType::Other),
    ]
}

prop_compose! {
    fn arb_metadata()(
        seed in 0u64..16,
        data_id in any::<u64>(),
        data_type in arb_data_type(),
        produced in any::<u64>(),
        label in "[\\PC]{0,24}",
        x in -1e6f64..1e6,
        y in -1e6f64..1e6,
        valid in any::<u64>(),
        props in prop::option::of("[\\PC]{0,24}"),
        size in any::<u64>(),
        nodes in prop::collection::vec(0usize..1000, 0..12),
    ) -> MetadataItem {
        // A real signature (from a small seed pool, modexp is pricey) over
        // arbitrary descriptive fields.
        let mut item = MetadataItem::new_signed(
            Identity::from_seed(seed).keys(),
            DataId(data_id),
            data_type,
            produced,
            Location { label, x, y },
            valid,
            props,
            size,
        );
        item.storing_nodes = nodes.into_iter().map(NodeId).collect();
        item
    }
}

prop_compose! {
    fn arb_block()(
        index in any::<u64>(),
        ts in any::<u64>(),
        delay in any::<u64>(),
        num in 1u128..u128::MAX,
        den in 1u128..u128::MAX,
        miner_seed in 0u64..16,
        items in prop::collection::vec(arb_metadata(), 0..4),
        storers in prop::collection::vec(0usize..500, 0..8),
        prev_storers in prop::collection::vec(0usize..500, 0..8),
        recents in prop::collection::vec(0usize..500, 0..8),
        seed_bytes in any::<u64>(),
    ) -> Block {
        Block::new(
            index,
            sha256(seed_bytes.to_be_bytes()),
            ts,
            sha256(seed_bytes.to_le_bytes()),
            Identity::from_seed(miner_seed).account(),
            delay,
            Amendment::from_fraction(num, den),
            items,
            storers.into_iter().map(NodeId).collect(),
            prev_storers.into_iter().map(NodeId).collect(),
            recents.into_iter().map(NodeId).collect(),
        )
    }
}

proptest! {
    // Each case signs metadata (modexp); keep counts moderate.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn metadata_roundtrips(item in arb_metadata()) {
        let enc = encode_metadata(&item);
        let dec = decode_metadata(&enc).unwrap();
        prop_assert_eq!(dec, item);
    }

    #[test]
    fn block_roundtrips(block in arb_block()) {
        let enc = encode_block(&block);
        prop_assert_eq!(block.wire_size(), enc.len() as u64);
        let dec = decode_block(&enc).unwrap();
        prop_assert_eq!(&dec, &block);
        prop_assert!(dec.is_well_formed());
    }

    #[test]
    fn chain_roundtrips(blocks in prop::collection::vec(arb_block(), 0..3)) {
        let enc = encode_chain(&blocks);
        let dec = decode_chain(&enc).unwrap();
        prop_assert_eq!(dec, blocks);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn decoding_never_panics_on_mutations(
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        // Take one fixed valid encoding, then flip a byte and truncate.
        let block = Block::genesis();
        let mut enc = encode_block(&block);
        let p = pos.index(enc.len());
        enc[p] = byte;
        let t = truncate.index(enc.len() + 1);
        let _ = decode_block(&enc[..t]); // must not panic
        let _ = decode_metadata(&enc[..t]);
        let _ = decode_chain(&enc[..t]);
    }

    /// Wholly arbitrary byte strings — the garbage-payload attack on the
    /// wire — must decode to `Err`, never panic, for every decoder.
    #[test]
    fn decoding_never_panics_on_arbitrary_bytes(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = decode_block(&bytes);
        let _ = decode_metadata(&bytes);
        let _ = decode_chain(&bytes);
    }
}

proptest! {
    // Rich blocks sign metadata (modexp); keep case counts small.
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Corrupting a *rich* block (metadata items, storer lists) and
    /// truncating at an arbitrary point never panics a decoder, and a
    /// flipped byte never decodes back to the original sealed block.
    #[test]
    fn rich_block_corruption_is_total(
        block in arb_block(),
        byte in any::<u8>(),
        pos in any::<prop::sample::Index>(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let mut enc = encode_block(&block);
        let p = pos.index(enc.len());
        let flipped = enc[p] != byte;
        enc[p] = byte;
        if let Ok(dec) = decode_block(&enc) {
            if flipped {
                prop_assert_ne!(&dec, &block, "corrupt bytes decoded to the original");
            }
        }
        let t = truncate.index(enc.len() + 1);
        let _ = decode_block(&enc[..t]);
        let _ = decode_chain(&enc[..t]);
    }

    /// The sealed fast path (`Block::encoded`, the shared `Arc<[u8]>`
    /// used by broadcast and replica repair) stays byte-identical to the
    /// plain codec, roundtrips, and survives truncation without panicking.
    #[test]
    fn sealed_encoding_matches_codec_and_decodes_totally(
        block in arb_block(),
        truncate in any::<prop::sample::Index>(),
    ) {
        let sealed = block.encoded();
        prop_assert_eq!(sealed.as_ref(), encode_block(&block).as_slice());
        prop_assert_eq!(block.wire_size(), sealed.len() as u64);
        let dec = decode_block(&sealed).unwrap();
        prop_assert_eq!(&dec, &block);
        // A decoded copy re-seals to the same bytes (cache is rebuilt).
        prop_assert_eq!(dec.encoded().as_ref(), sealed.as_ref());
        let t = truncate.index(sealed.len());
        let _ = decode_block(&sealed[..t]); // must not panic
    }
}
