//! The allocation engine: choosing storing nodes for data items, blocks,
//! and recent-block caching (paper §IV).
//!
//! For every item the engine builds a UFL instance from the live network
//! state — facility cost `A·f_i` from each node's [`NodeStorage::fdc`] and
//! connection cost from [`Topology::rdc`] — and solves it with
//! [`edgechain_facility::solve`]. The open facilities are the storing
//! nodes. A [`Placement::Random`] baseline stores the *same number* of
//! replicas at uniformly random non-full nodes, which is exactly the
//! comparison of Fig. 5 ("For a fair comparison, the total number of data
//! and blocks stored is the same as the optimal placement").

use crate::storage::NodeStorage;
use edgechain_facility::{solve, SolveError, UflInstance};
use edgechain_sim::{NodeId, Topology};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Placement strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Placement {
    /// The paper's UFL-based fair & efficient allocation.
    #[default]
    Optimal,
    /// Random placement with the same replica count (the comparison the
    /// Fig. 5 *text* describes: "the total number of data and blocks
    /// stored is the same as the optimal placement").
    Random,
    /// No proactive data storage at all — consumers always fetch from the
    /// producer (the baseline the Fig. 5 *caption* names: "no proactive
    /// store solution").
    NoProactive,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Optimal => write!(f, "optimal"),
            Placement::Random => write!(f, "random"),
            Placement::NoProactive => write!(f, "no-proactive"),
        }
    }
}

/// Builds the per-item UFL instance from live state. Exposed separately so
/// benches can time instance construction and solving independently.
pub fn build_instance(topology: &Topology, storage: &[NodeStorage]) -> UflInstance {
    build_instance_scaled(topology, storage, edgechain_facility::FDC_SCALE)
}

/// [`build_instance`] with an explicit FDC weight `A` (the paper fixes
/// `A = 1000` after feature scaling; the ablation bench sweeps it).
pub fn build_instance_scaled(
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
) -> UflInstance {
    assert_eq!(
        topology.len(),
        storage.len(),
        "one storage manager per topology node"
    );
    let live = live_nodes(topology);
    let scaled: Vec<f64> = live
        .iter()
        .map(|&i| storage[i].fdc() * fdc_scale / edgechain_facility::FDC_SCALE)
        .collect();
    UflInstance::from_costs(&scaled, |a, b| {
        topology.rdc(NodeId(live[a]), NodeId(live[b]))
    })
}

/// The facility/client universe of an allocation instance: crashed nodes
/// can neither store nor demand data, so the UFL problem is posed over the
/// surviving nodes only. With every node up this is the identity map.
fn live_nodes(topology: &Topology) -> Vec<usize> {
    (0..topology.len())
        .filter(|&i| topology.is_active(NodeId(i)))
        .collect()
}

/// Selects the storing nodes for one item under `placement`.
///
/// Both strategies solve the UFL instance first — [`Placement::Random`]
/// only uses it to learn the fair replica count, then forgets the
/// optimized locations.
///
/// # Examples
///
/// ```
/// use edgechain_core::{select_storers, NodeStorage, Placement};
/// use edgechain_sim::{Point, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let topo = Topology::from_positions(
///     (0..4).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect(),
/// );
/// let storage = vec![NodeStorage::paper_default(); 4];
/// let mut rng = StdRng::seed_from_u64(1);
/// let storers = select_storers(Placement::Optimal, &topo, &storage, &mut rng)?;
/// assert!(!storers.is_empty());
/// # Ok::<(), edgechain_facility::SolveError>(())
/// ```
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    select_storers_scaled(
        placement,
        topology,
        storage,
        edgechain_facility::FDC_SCALE,
        rng,
    )
}

/// [`select_storers`] with an explicit FDC weight `A` (ablation support).
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers_scaled<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    if placement == Placement::NoProactive {
        return Ok(Vec::new());
    }
    let live = live_nodes(topology);
    if live.is_empty() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let instance = build_instance_scaled(topology, storage, fdc_scale);
    let solution = solve(&instance)?;
    // Solver indices address the live-node universe; map them back to
    // real node ids.
    let optimal: Vec<NodeId> = solution
        .open_facilities()
        .into_iter()
        .map(|f| NodeId(live[f]))
        .collect();
    match placement {
        Placement::NoProactive => unreachable!("handled above"),
        Placement::Optimal => Ok(optimal),
        Placement::Random => {
            let candidates: Vec<NodeId> = live
                .iter()
                .copied()
                .filter(|&i| !storage[i].is_full())
                .map(NodeId)
                .collect();
            if candidates.is_empty() {
                return Err(SolveError::NoFeasibleFacility);
            }
            let k = optimal.len().min(candidates.len());
            let mut picked = candidates;
            picked.shuffle(rng);
            picked.truncate(k);
            picked.sort();
            Ok(picked)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::DataId;
    use edgechain_sim::{Point, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    #[test]
    fn optimal_avoids_full_nodes() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(10); 4];
        for i in 0..10 {
            storage[1].store_data(DataId(i));
        }
        storage[1].cache_recent(0);
        assert!(storage[1].is_full());
        let mut rng = StdRng::seed_from_u64(1);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(!nodes.is_empty());
        assert!(!nodes.contains(&NodeId(1)), "full node selected: {nodes:?}");
    }

    #[test]
    fn optimal_prefers_emptier_nodes() {
        let topo = line_topology(3);
        let mut storage = vec![NodeStorage::new(100); 3];
        // Node 0 heavily used; nodes 1,2 empty.
        for i in 0..90 {
            storage[0].store_data(DataId(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            !nodes.contains(&NodeId(0)),
            "loaded node selected: {nodes:?}"
        );
    }

    #[test]
    fn random_matches_optimal_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = Topology::random_connected(20, TopologyConfig::default(), &mut rng).unwrap();
        let storage = vec![NodeStorage::paper_default(); 20];
        let optimal = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        let random = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
        assert_eq!(optimal.len(), random.len());
    }

    #[test]
    fn random_only_picks_non_full() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(5); 4];
        for i in 0..5 {
            storage[2].store_data(DataId(i));
        }
        storage[2].cache_recent(0);
        assert!(storage[2].is_full());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let nodes = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
            assert!(!nodes.contains(&NodeId(2)));
        }
    }

    #[test]
    fn all_full_is_error() {
        let topo = line_topology(2);
        let mut storage = vec![NodeStorage::new(1); 2];
        for s in &mut storage {
            s.cache_recent(0); // the single slot holds the newest block
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
        assert_eq!(
            select_storers(Placement::Random, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn spread_out_network_gets_multiple_replicas() {
        // A long line: one replica cannot serve everyone cheaply, so the
        // solver opens several facilities.
        let topo = line_topology(12);
        let storage = vec![NodeStorage::paper_default(); 12];
        let mut rng = StdRng::seed_from_u64(6);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            nodes.len() >= 2,
            "expected multiple replicas, got {nodes:?}"
        );
    }

    #[test]
    fn crashed_nodes_are_never_selected() {
        let mut topo = line_topology(6);
        topo.set_active(NodeId(2), false);
        let storage = vec![NodeStorage::paper_default(); 6];
        let mut rng = StdRng::seed_from_u64(7);
        for placement in [Placement::Optimal, Placement::Random] {
            for _ in 0..10 {
                let nodes = select_storers(placement, &topo, &storage, &mut rng).unwrap();
                assert!(!nodes.is_empty());
                assert!(
                    !nodes.contains(&NodeId(2)),
                    "{placement}: dead node selected in {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn all_nodes_down_is_infeasible() {
        let mut topo = line_topology(3);
        for i in 0..3 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    #[should_panic(expected = "one storage manager per topology node")]
    fn mismatched_sizes_rejected() {
        let topo = line_topology(3);
        let storage = vec![NodeStorage::paper_default(); 2];
        let _ = build_instance(&topo, &storage);
    }
}
