//! The allocation engine: choosing storing nodes for data items, blocks,
//! and recent-block caching (paper §IV).
//!
//! For every item the engine builds a UFL instance from the live network
//! state — facility cost `A·f_i` from each node's [`NodeStorage::fdc`] and
//! connection cost from [`Topology::rdc`] — and solves it with
//! [`edgechain_facility::solve`]. The open facilities are the storing
//! nodes. A [`Placement::Random`] baseline stores the *same number* of
//! replicas at uniformly random non-full nodes, which is exactly the
//! comparison of Fig. 5 ("For a fair comparison, the total number of data
//! and blocks stored is the same as the optimal placement").

use crate::storage::NodeStorage;
use edgechain_facility::{solve, solve_warm, SolveError, UflInstance, UflSolution};
use edgechain_sim::{NodeId, Topology};
use edgechain_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Placement strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Placement {
    /// The paper's UFL-based fair & efficient allocation.
    #[default]
    Optimal,
    /// Random placement with the same replica count (the comparison the
    /// Fig. 5 *text* describes: "the total number of data and blocks
    /// stored is the same as the optimal placement").
    Random,
    /// No proactive data storage at all — consumers always fetch from the
    /// producer (the baseline the Fig. 5 *caption* names: "no proactive
    /// store solution").
    NoProactive,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Optimal => write!(f, "optimal"),
            Placement::Random => write!(f, "random"),
            Placement::NoProactive => write!(f, "no-proactive"),
        }
    }
}

/// Builds the per-item UFL instance from live state. Exposed separately so
/// benches can time instance construction and solving independently.
pub fn build_instance(topology: &Topology, storage: &[NodeStorage]) -> UflInstance {
    build_instance_scaled(topology, storage, edgechain_facility::FDC_SCALE)
}

/// [`build_instance`] with an explicit FDC weight `A` (the paper fixes
/// `A = 1000` after feature scaling; the ablation bench sweeps it).
pub fn build_instance_scaled(
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
) -> UflInstance {
    assert_eq!(
        topology.len(),
        storage.len(),
        "one storage manager per topology node"
    );
    let live = live_nodes(topology);
    build_instance_with_live(topology, storage, fdc_scale, &live)
}

/// Core instance builder over an already-computed live set, so callers that
/// need `live` for index mapping don't recompute it. Uses the topology's
/// cached RDC rows; produces bit-identical costs to the original
/// `from_costs` construction (`A·f_i` with identical operation order).
fn build_instance_with_live(
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    live: &[usize],
) -> UflInstance {
    telemetry::time_wall("ufl.build_ns", || {
        let open_cost: Vec<f64> = live
            .iter()
            .map(|&i| scaled_open_cost(&storage[i], fdc_scale))
            .collect();
        let connect: Vec<Vec<f64>> = live
            .iter()
            .map(|&a| {
                let row = topology.rdc_row(NodeId(a));
                live.iter().map(|&b| row[b]).collect()
            })
            .collect();
        UflInstance::new(open_cost, connect)
    })
}

/// `A·f_i` with the exact floating-point operation order of the original
/// `from_costs` path (scale down by `FDC_SCALE`, then back up), so cached
/// and incremental rebuilds stay bit-identical to cold builds.
fn scaled_open_cost(storage: &NodeStorage, fdc_scale: f64) -> f64 {
    let scaled = storage.fdc() * fdc_scale / edgechain_facility::FDC_SCALE;
    edgechain_facility::FDC_SCALE * scaled
}

/// The facility/client universe of an allocation instance: crashed nodes
/// can neither store nor demand data, so the UFL problem is posed over the
/// surviving nodes only. With every node up this is the identity map.
fn live_nodes(topology: &Topology) -> Vec<usize> {
    (0..topology.len())
        .filter(|&i| topology.is_active(NodeId(i)))
        .collect()
}

/// Selects the storing nodes for one item under `placement`.
///
/// Both strategies solve the UFL instance first — [`Placement::Random`]
/// only uses it to learn the fair replica count, then forgets the
/// optimized locations.
///
/// # Examples
///
/// ```
/// use edgechain_core::{select_storers, NodeStorage, Placement};
/// use edgechain_sim::{Point, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let topo = Topology::from_positions(
///     (0..4).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect(),
/// );
/// let storage = vec![NodeStorage::paper_default(); 4];
/// let mut rng = StdRng::seed_from_u64(1);
/// let storers = select_storers(Placement::Optimal, &topo, &storage, &mut rng)?;
/// assert!(!storers.is_empty());
/// # Ok::<(), edgechain_facility::SolveError>(())
/// ```
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    select_storers_scaled(
        placement,
        topology,
        storage,
        edgechain_facility::FDC_SCALE,
        rng,
    )
}

/// [`select_storers`] with an explicit FDC weight `A` (ablation support).
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers_scaled<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    if placement == Placement::NoProactive {
        return Ok(Vec::new());
    }
    let live = live_nodes(topology);
    if live.is_empty() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let instance = build_instance_with_live(topology, storage, fdc_scale, &live);
    let solution = solve(&instance)?;
    storers_from_solution(placement, &solution, &live, storage, rng)
}

/// Maps a solved UFL instance back to storing-node ids under `placement`.
/// Shared by the one-shot path above and [`AllocationContext`], so both
/// paths make identical decisions (and identical rng draws for
/// [`Placement::Random`]) from the same solution.
fn storers_from_solution<R: Rng + ?Sized>(
    placement: Placement,
    solution: &UflSolution,
    live: &[usize],
    storage: &[NodeStorage],
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    // Solver indices address the live-node universe; map them back to
    // real node ids.
    let optimal: Vec<NodeId> = solution
        .open_facilities()
        .into_iter()
        .map(|f| NodeId(live[f]))
        .collect();
    match placement {
        Placement::NoProactive => unreachable!("handled by callers"),
        Placement::Optimal => Ok(optimal),
        Placement::Random => {
            let candidates: Vec<NodeId> = live
                .iter()
                .copied()
                .filter(|&i| !storage[i].is_full())
                .map(NodeId)
                .collect();
            if candidates.is_empty() {
                return Err(SolveError::NoFeasibleFacility);
            }
            let k = optimal.len().min(candidates.len());
            let mut picked = candidates;
            picked.shuffle(rng);
            picked.truncate(k);
            picked.sort();
            Ok(picked)
        }
    }
}

/// Per-block allocation fast path (ISSUE 3 tentpole): builds the UFL
/// instance **once** and reuses it — and its solution — across the many
/// allocation calls a single block triggers (every packed item, the block
/// itself, recent-block growth, fault repair).
///
/// Correctness rests on two observations:
///
/// 1. The instance depends only on the topology (via the cached RDC matrix
///    and the live set) and each live node's used-slot count. The topology
///    exposes an [`Topology::epoch`] that bumps on every route/RDC change,
///    and used slots are cheap to diff — so staleness detection is `O(n)`
///    per call instead of an `O(n²)` rebuild.
/// 2. The solver is deterministic and consumes no rng, so reusing a cached
///    solution yields byte-identical output (including downstream rng
///    draws) to re-solving from scratch.
///
/// When only FDC costs drifted (items stored between calls), the cached
/// instance is patched in place via [`UflInstance::set_open_cost`] — the
/// `O(n²)` connect matrix is untouched — and only the solve is redone,
/// optionally warm-started from the previous solution (off by default; the
/// warm trajectory is a different heuristic and breaks bit-equivalence
/// with the cold path).
///
/// Telemetry: counts `ufl.cache_hit` (solution reused), `ufl.cache_miss`
/// (full instance rebuild), and `ufl.incremental_updates` (facility costs
/// patched in place).
#[derive(Debug, Clone)]
pub struct AllocationContext {
    fdc_scale: f64,
    warm_start: bool,
    /// Topology epoch the cached instance was built against.
    topo_epoch: Option<u64>,
    /// Live-node universe of the cached instance (solver index → node id).
    live: Vec<usize>,
    /// Used-slot count per live node at last refresh, for FDC dirty checks.
    last_used: Vec<u64>,
    instance: Option<UflInstance>,
    /// Cached solve outcome for the current instance state; invalidated on
    /// any instance change. Errors are cached too (a full network stays
    /// full until state changes).
    solution: Option<Result<UflSolution, SolveError>>,
    /// Last successful solution, kept across invalidations as a warm seed.
    warm_seed: Option<UflSolution>,
}

impl Default for AllocationContext {
    fn default() -> Self {
        Self::new(edgechain_facility::FDC_SCALE)
    }
}

impl AllocationContext {
    /// Context with an explicit FDC weight `A` (ablation support).
    pub fn new(fdc_scale: f64) -> Self {
        AllocationContext {
            fdc_scale,
            warm_start: false,
            topo_epoch: None,
            live: Vec::new(),
            last_used: Vec::new(),
            instance: None,
            solution: None,
            warm_seed: None,
        }
    }

    /// Enables warm-started re-solves after incremental cost patches.
    ///
    /// Faster on long item sequences but follows a different local-search
    /// trajectory than the cold solver, so output is no longer guaranteed
    /// bit-identical to the uncached path. Off by default.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Drops all cached state; the next call rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.topo_epoch = None;
        self.instance = None;
        self.solution = None;
        self.warm_seed = None;
    }

    /// Cached equivalent of [`select_storers_scaled`]: observationally
    /// identical output and rng consumption, without re-building (or, when
    /// state is unchanged, re-solving) the UFL instance per call.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoFeasibleFacility`] when every live node is
    /// full or no node is live.
    pub fn select_storers<R: Rng + ?Sized>(
        &mut self,
        placement: Placement,
        topology: &Topology,
        storage: &[NodeStorage],
        rng: &mut R,
    ) -> Result<Vec<NodeId>, SolveError> {
        if placement == Placement::NoProactive {
            return Ok(Vec::new());
        }
        self.refresh(topology, storage);
        if self.live.is_empty() {
            return Err(SolveError::NoFeasibleFacility);
        }
        if self.solution.is_some() {
            telemetry::counter_add("ufl.cache_hit", 1);
        } else {
            let instance = self.instance.as_ref().expect("refresh built an instance");
            let result = match &self.warm_seed {
                Some(seed) if self.warm_start && seed.open.len() == instance.facilities() => {
                    solve_warm(instance, seed)
                }
                _ => solve(instance),
            };
            if let Ok(sol) = &result {
                self.warm_seed = Some(sol.clone());
            }
            self.solution = Some(result);
        }
        match self.solution.as_ref().expect("just populated") {
            Ok(sol) => storers_from_solution(placement, sol, &self.live, storage, rng),
            Err(e) => Err(*e),
        }
    }

    /// Brings the cached instance in sync with the world: full rebuild when
    /// the topology changed (or nothing is cached), in-place FDC patches
    /// when only storage occupancy drifted, nothing when state is
    /// untouched.
    fn refresh(&mut self, topology: &Topology, storage: &[NodeStorage]) {
        assert_eq!(
            topology.len(),
            storage.len(),
            "one storage manager per topology node"
        );
        let epoch = topology.epoch();
        if self.topo_epoch != Some(epoch) {
            telemetry::counter_add("ufl.cache_miss", 1);
            self.live = live_nodes(topology);
            self.last_used = self.live.iter().map(|&i| storage[i].used_slots()).collect();
            self.instance = if self.live.is_empty() {
                None
            } else {
                Some(build_instance_with_live(
                    topology,
                    storage,
                    self.fdc_scale,
                    &self.live,
                ))
            };
            self.solution = None;
            self.topo_epoch = Some(epoch);
            return;
        }
        // Same topology: only FDC (occupancy) costs can have drifted.
        let mut dirty = 0u64;
        for (idx, &node) in self.live.iter().enumerate() {
            let used = storage[node].used_slots();
            if used != self.last_used[idx] {
                self.last_used[idx] = used;
                let instance = self.instance.as_mut().expect("live is non-empty");
                instance.set_open_cost(idx, scaled_open_cost(&storage[node], self.fdc_scale));
                dirty += 1;
            }
        }
        if dirty > 0 {
            telemetry::counter_add("ufl.incremental_updates", dirty);
            self.solution = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::DataId;
    use edgechain_sim::{Point, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    #[test]
    fn optimal_avoids_full_nodes() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(10); 4];
        for i in 0..10 {
            storage[1].store_data(DataId(i));
        }
        storage[1].cache_recent(0);
        assert!(storage[1].is_full());
        let mut rng = StdRng::seed_from_u64(1);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(!nodes.is_empty());
        assert!(!nodes.contains(&NodeId(1)), "full node selected: {nodes:?}");
    }

    #[test]
    fn optimal_prefers_emptier_nodes() {
        let topo = line_topology(3);
        let mut storage = vec![NodeStorage::new(100); 3];
        // Node 0 heavily used; nodes 1,2 empty.
        for i in 0..90 {
            storage[0].store_data(DataId(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            !nodes.contains(&NodeId(0)),
            "loaded node selected: {nodes:?}"
        );
    }

    #[test]
    fn random_matches_optimal_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = Topology::random_connected(20, TopologyConfig::default(), &mut rng).unwrap();
        let storage = vec![NodeStorage::paper_default(); 20];
        let optimal = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        let random = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
        assert_eq!(optimal.len(), random.len());
    }

    #[test]
    fn random_only_picks_non_full() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(5); 4];
        for i in 0..5 {
            storage[2].store_data(DataId(i));
        }
        storage[2].cache_recent(0);
        assert!(storage[2].is_full());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let nodes = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
            assert!(!nodes.contains(&NodeId(2)));
        }
    }

    #[test]
    fn all_full_is_error() {
        let topo = line_topology(2);
        let mut storage = vec![NodeStorage::new(1); 2];
        for s in &mut storage {
            s.cache_recent(0); // the single slot holds the newest block
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
        assert_eq!(
            select_storers(Placement::Random, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn spread_out_network_gets_multiple_replicas() {
        // A long line: one replica cannot serve everyone cheaply, so the
        // solver opens several facilities.
        let topo = line_topology(12);
        let storage = vec![NodeStorage::paper_default(); 12];
        let mut rng = StdRng::seed_from_u64(6);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            nodes.len() >= 2,
            "expected multiple replicas, got {nodes:?}"
        );
    }

    #[test]
    fn crashed_nodes_are_never_selected() {
        let mut topo = line_topology(6);
        topo.set_active(NodeId(2), false);
        let storage = vec![NodeStorage::paper_default(); 6];
        let mut rng = StdRng::seed_from_u64(7);
        for placement in [Placement::Optimal, Placement::Random] {
            for _ in 0..10 {
                let nodes = select_storers(placement, &topo, &storage, &mut rng).unwrap();
                assert!(!nodes.is_empty());
                assert!(
                    !nodes.contains(&NodeId(2)),
                    "{placement}: dead node selected in {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn all_nodes_down_is_infeasible() {
        let mut topo = line_topology(3);
        for i in 0..3 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    #[should_panic(expected = "one storage manager per topology node")]
    fn mismatched_sizes_rejected() {
        let topo = line_topology(3);
        let storage = vec![NodeStorage::paper_default(); 2];
        let _ = build_instance(&topo, &storage);
    }

    /// The cached context must reproduce the one-shot path exactly across
    /// a mutating workload: storage writes, node crashes/restarts, and
    /// mobility changes, under both placements.
    #[test]
    fn context_matches_one_shot_path_through_mutations() {
        let mut rng = StdRng::seed_from_u64(0xA11C);
        let mut topo = Topology::random_connected(15, TopologyConfig::default(), &mut rng).unwrap();
        let mut storage = vec![NodeStorage::new(40); 15];
        let mut ctx = AllocationContext::default();
        // Two independent rngs with identical seeds: each path must draw
        // the same stream for Random placement.
        let mut rng_a = StdRng::seed_from_u64(0xD1CE);
        let mut rng_b = StdRng::seed_from_u64(0xD1CE);
        for step in 0..60usize {
            let placement = match step % 3 {
                0 => Placement::Optimal,
                1 => Placement::Random,
                _ => Placement::NoProactive,
            };
            let one_shot = select_storers(placement, &topo, &storage, &mut rng_a);
            let cached = ctx.select_storers(placement, &topo, &storage, &mut rng_b);
            assert_eq!(one_shot, cached, "step {step} ({placement})");
            // Mutate the world between calls.
            if let Ok(nodes) = &one_shot {
                for n in nodes {
                    storage[n.0].store_data(DataId(step as u64));
                }
            }
            if step == 20 {
                topo.set_active(NodeId(3), false);
            }
            if step == 35 {
                topo.set_active(NodeId(3), true);
            }
            if step == 45 {
                topo.set_mobility_range(NodeId(7), 25.0);
            }
        }
    }

    #[test]
    fn context_caches_errors_until_state_changes() {
        let topo = line_topology(2);
        let mut storage = vec![NodeStorage::new(2); 2];
        for s in &mut storage {
            s.cache_recent(0);
            assert!(s.store_data(DataId(0)));
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = AllocationContext::default();
        for _ in 0..3 {
            assert_eq!(
                ctx.select_storers(Placement::Optimal, &topo, &storage, &mut rng),
                Err(SolveError::NoFeasibleFacility)
            );
        }
        // Free a slot: the dirty check must notice and re-solve.
        assert!(storage[0].evict_data(DataId(0)));
        let nodes = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(nodes, vec![NodeId(0)]);
    }

    #[test]
    fn context_all_nodes_down_is_infeasible() {
        let mut topo = line_topology(3);
        for i in 0..3 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 3];
        let mut rng = StdRng::seed_from_u64(10);
        let mut ctx = AllocationContext::default();
        assert_eq!(
            ctx.select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn warm_start_context_stays_feasible() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let topo = Topology::random_connected(12, TopologyConfig::default(), &mut rng).unwrap();
        let mut storage = vec![NodeStorage::new(30); 12];
        let mut ctx = AllocationContext::default().with_warm_start(true);
        for step in 0..30usize {
            let nodes = ctx
                .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
                .unwrap();
            assert!(!nodes.is_empty());
            for n in &nodes {
                assert!(!storage[n.0].is_full(), "warm path picked full node");
                storage[n.0].store_data(DataId(step as u64));
            }
        }
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let topo = line_topology(4);
        let storage = vec![NodeStorage::paper_default(); 4];
        let mut rng = StdRng::seed_from_u64(11);
        let mut ctx = AllocationContext::default();
        let first = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        ctx.invalidate();
        let second = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(first, second);
    }
}
