//! The allocation engine: choosing storing nodes for data items, blocks,
//! and recent-block caching (paper §IV).
//!
//! For every item the engine builds a UFL instance from the live network
//! state — facility cost `A·f_i` from each node's [`NodeStorage::fdc`] and
//! connection cost from [`Topology::rdc`] — and solves it with
//! [`edgechain_facility::solve`]. The open facilities are the storing
//! nodes. A [`Placement::Random`] baseline stores the *same number* of
//! replicas at uniformly random non-full nodes, which is exactly the
//! comparison of Fig. 5 ("For a fair comparison, the total number of data
//! and blocks stored is the same as the optimal placement").

use crate::storage::NodeStorage;
use edgechain_facility::{
    serving_ids, solve, solve_warm, stitch_close_pass, SolveError, StitchFacility, UflInstance,
    UflSolution,
};
use edgechain_sim::{NodeId, Topology, UNREACHABLE};
use edgechain_telemetry as telemetry;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Placement strategy under evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Placement {
    /// The paper's UFL-based fair & efficient allocation.
    #[default]
    Optimal,
    /// Random placement with the same replica count (the comparison the
    /// Fig. 5 *text* describes: "the total number of data and blocks
    /// stored is the same as the optimal placement").
    Random,
    /// No proactive data storage at all — consumers always fetch from the
    /// producer (the baseline the Fig. 5 *caption* names: "no proactive
    /// store solution").
    NoProactive,
}

impl std::fmt::Display for Placement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Placement::Optimal => write!(f, "optimal"),
            Placement::Random => write!(f, "random"),
            Placement::NoProactive => write!(f, "no-proactive"),
        }
    }
}

/// Builds the per-item UFL instance from live state. Exposed separately so
/// benches can time instance construction and solving independently.
pub fn build_instance(topology: &Topology, storage: &[NodeStorage]) -> UflInstance {
    build_instance_scaled(topology, storage, edgechain_facility::FDC_SCALE)
}

/// [`build_instance`] with an explicit FDC weight `A` (the paper fixes
/// `A = 1000` after feature scaling; the ablation bench sweeps it).
pub fn build_instance_scaled(
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
) -> UflInstance {
    assert_eq!(
        topology.len(),
        storage.len(),
        "one storage manager per topology node"
    );
    let live = live_nodes(topology);
    build_instance_with_live(topology, storage, fdc_scale, &live)
}

/// Core instance builder over an already-computed live set, so callers that
/// need `live` for index mapping don't recompute it. Uses the topology's
/// cached RDC rows; produces bit-identical costs to the original
/// `from_costs` construction (`A·f_i` with identical operation order).
fn build_instance_with_live(
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    live: &[usize],
) -> UflInstance {
    telemetry::time_wall("ufl.build_ns", || {
        let open_cost: Vec<f64> = live
            .iter()
            .map(|&i| scaled_open_cost(&storage[i], fdc_scale))
            .collect();
        let connect: Vec<Vec<f64>> = live
            .iter()
            .map(|&a| {
                let row = topology.rdc_row(NodeId(a));
                live.iter().map(|&b| row[b]).collect()
            })
            .collect();
        UflInstance::new(open_cost, connect)
    })
}

/// `A·f_i` with the exact floating-point operation order of the original
/// `from_costs` path (scale down by `FDC_SCALE`, then back up), so cached
/// and incremental rebuilds stay bit-identical to cold builds.
fn scaled_open_cost(storage: &NodeStorage, fdc_scale: f64) -> f64 {
    let scaled = storage.fdc() * fdc_scale / edgechain_facility::FDC_SCALE;
    edgechain_facility::FDC_SCALE * scaled
}

/// The facility/client universe of an allocation instance: crashed nodes
/// can neither store nor demand data, so the UFL problem is posed over the
/// surviving nodes only. With every node up this is the identity map.
fn live_nodes(topology: &Topology) -> Vec<usize> {
    (0..topology.len())
        .filter(|&i| topology.is_active(NodeId(i)))
        .collect()
}

/// Selects the storing nodes for one item under `placement`.
///
/// Both strategies solve the UFL instance first — [`Placement::Random`]
/// only uses it to learn the fair replica count, then forgets the
/// optimized locations.
///
/// # Examples
///
/// ```
/// use edgechain_core::{select_storers, NodeStorage, Placement};
/// use edgechain_sim::{Point, Topology};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let topo = Topology::from_positions(
///     (0..4).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect(),
/// );
/// let storage = vec![NodeStorage::paper_default(); 4];
/// let mut rng = StdRng::seed_from_u64(1);
/// let storers = select_storers(Placement::Optimal, &topo, &storage, &mut rng)?;
/// assert!(!storers.is_empty());
/// # Ok::<(), edgechain_facility::SolveError>(())
/// ```
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    select_storers_scaled(
        placement,
        topology,
        storage,
        edgechain_facility::FDC_SCALE,
        rng,
    )
}

/// [`select_storers`] with an explicit FDC weight `A` (ablation support).
///
/// # Errors
///
/// Returns [`SolveError::NoFeasibleFacility`] when every node is full.
pub fn select_storers_scaled<R: Rng + ?Sized>(
    placement: Placement,
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    if placement == Placement::NoProactive {
        return Ok(Vec::new());
    }
    let live = live_nodes(topology);
    if live.is_empty() {
        return Err(SolveError::NoFeasibleFacility);
    }
    let instance = build_instance_with_live(topology, storage, fdc_scale, &live);
    let solution = solve(&instance)?;
    storers_from_solution(placement, &solution, &live, storage, rng)
}

/// Maps a solved UFL instance back to storing-node ids under `placement`.
/// Shared by the one-shot path above and [`AllocationContext`], so both
/// paths make identical decisions (and identical rng draws for
/// [`Placement::Random`]) from the same solution.
fn storers_from_solution<R: Rng + ?Sized>(
    placement: Placement,
    solution: &UflSolution,
    live: &[usize],
    storage: &[NodeStorage],
    rng: &mut R,
) -> Result<Vec<NodeId>, SolveError> {
    // Solver indices address the live-node universe; map them back to
    // real node ids.
    let optimal: Vec<NodeId> = solution
        .open_facilities()
        .into_iter()
        .map(|f| NodeId(live[f]))
        .collect();
    match placement {
        Placement::NoProactive => unreachable!("handled by callers"),
        Placement::Optimal => Ok(optimal),
        Placement::Random => {
            let candidates: Vec<NodeId> = live
                .iter()
                .copied()
                .filter(|&i| !storage[i].is_full())
                .map(NodeId)
                .collect();
            if candidates.is_empty() {
                return Err(SolveError::NoFeasibleFacility);
            }
            let k = optimal.len().min(candidates.len());
            let mut picked = candidates;
            picked.shuffle(rng);
            picked.truncate(k);
            picked.sort();
            Ok(picked)
        }
    }
}

/// Per-block allocation fast path (ISSUE 3 tentpole): builds the UFL
/// instance **once** and reuses it — and its solution — across the many
/// allocation calls a single block triggers (every packed item, the block
/// itself, recent-block growth, fault repair).
///
/// Correctness rests on two observations:
///
/// 1. The instance depends only on the topology (via the cached RDC matrix
///    and the live set) and each live node's used-slot count. The topology
///    exposes an [`Topology::epoch`] that bumps on every route/RDC change,
///    and used slots are cheap to diff — so staleness detection is `O(n)`
///    per call instead of an `O(n²)` rebuild.
/// 2. The solver is deterministic and consumes no rng, so reusing a cached
///    solution yields byte-identical output (including downstream rng
///    draws) to re-solving from scratch.
///
/// When only FDC costs drifted (items stored between calls), the cached
/// instance is patched in place via [`UflInstance::set_open_cost`] — the
/// `O(n²)` connect matrix is untouched — and only the solve is redone,
/// optionally warm-started from the previous solution (off by default; the
/// warm trajectory is a different heuristic and breaks bit-equivalence
/// with the cold path).
///
/// Telemetry: counts `ufl.cache_hit` (solution reused), `ufl.cache_miss`
/// (full instance rebuild), and `ufl.incremental_updates` (facility costs
/// patched in place).
#[derive(Debug, Clone)]
pub struct AllocationContext {
    fdc_scale: f64,
    warm_start: bool,
    /// Region-decomposed allocation state (ISSUE 9 tentpole), present when
    /// the scale path is enabled via [`AllocationContext::with_regions`].
    regions: Option<RegionEngine>,
    /// Topology epoch the cached instance was built against.
    topo_epoch: Option<u64>,
    /// Live-node universe of the cached instance (solver index → node id).
    live: Vec<usize>,
    /// Used-slot count per live node at last refresh, for FDC dirty checks.
    last_used: Vec<u64>,
    instance: Option<UflInstance>,
    /// Cached solve outcome for the current instance state; invalidated on
    /// any instance change. Errors are cached too (a full network stays
    /// full until state changes).
    solution: Option<Result<UflSolution, SolveError>>,
    /// Last successful solution, kept across invalidations as a warm seed.
    warm_seed: Option<UflSolution>,
}

impl Default for AllocationContext {
    fn default() -> Self {
        Self::new(edgechain_facility::FDC_SCALE)
    }
}

impl AllocationContext {
    /// Context with an explicit FDC weight `A` (ablation support).
    pub fn new(fdc_scale: f64) -> Self {
        AllocationContext {
            fdc_scale,
            warm_start: false,
            regions: None,
            topo_epoch: None,
            live: Vec::new(),
            last_used: Vec::new(),
            instance: None,
            solution: None,
            warm_seed: None,
        }
    }

    /// Enables warm-started re-solves after incremental cost patches.
    ///
    /// Faster on long item sequences but follows a different local-search
    /// trajectory than the cold solver, so output is no longer guaranteed
    /// bit-identical to the uncached path. Off by default.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }

    /// Enables the region-decomposed allocation path with the given
    /// partition parameters; [`AllocationContext::select_storers_regional`]
    /// requires it (it falls back to default parameters otherwise).
    pub fn with_regions(mut self, params: RegionParams) -> Self {
        self.regions = Some(RegionEngine::new(params));
        self
    }

    /// Drops all cached state; the next call rebuilds from scratch.
    pub fn invalidate(&mut self) {
        self.topo_epoch = None;
        self.instance = None;
        self.solution = None;
        self.warm_seed = None;
        if let Some(engine) = &mut self.regions {
            engine.topo_epoch = None;
            engine.regions.clear();
            engine.region_of.clear();
        }
    }

    /// Cached equivalent of [`select_storers_scaled`]: observationally
    /// identical output and rng consumption, without re-building (or, when
    /// state is unchanged, re-solving) the UFL instance per call.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoFeasibleFacility`] when every live node is
    /// full or no node is live.
    pub fn select_storers<R: Rng + ?Sized>(
        &mut self,
        placement: Placement,
        topology: &Topology,
        storage: &[NodeStorage],
        rng: &mut R,
    ) -> Result<Vec<NodeId>, SolveError> {
        if placement == Placement::NoProactive {
            return Ok(Vec::new());
        }
        self.refresh(topology, storage);
        if self.live.is_empty() {
            return Err(SolveError::NoFeasibleFacility);
        }
        if self.solution.is_some() {
            telemetry::counter_add("ufl.cache_hit", 1);
        } else {
            let instance = self.instance.as_ref().expect("refresh built an instance");
            let result = match &self.warm_seed {
                Some(seed) if self.warm_start && seed.open.len() == instance.facilities() => {
                    solve_warm(instance, seed)
                }
                _ => solve(instance),
            };
            if let Ok(sol) = &result {
                self.warm_seed = Some(sol.clone());
            }
            self.solution = Some(result);
        }
        match self.solution.as_ref().expect("just populated") {
            Ok(sol) => storers_from_solution(placement, sol, &self.live, storage, rng),
            Err(e) => Err(*e),
        }
    }

    /// Brings the cached instance in sync with the world: full rebuild when
    /// the topology changed (or nothing is cached), in-place FDC patches
    /// when only storage occupancy drifted, nothing when state is
    /// untouched.
    fn refresh(&mut self, topology: &Topology, storage: &[NodeStorage]) {
        assert_eq!(
            topology.len(),
            storage.len(),
            "one storage manager per topology node"
        );
        let epoch = topology.epoch();
        if self.topo_epoch != Some(epoch) {
            telemetry::counter_add("ufl.cache_miss", 1);
            self.live = live_nodes(topology);
            self.last_used = self.live.iter().map(|&i| storage[i].used_slots()).collect();
            self.instance = if self.live.is_empty() {
                None
            } else {
                Some(build_instance_with_live(
                    topology,
                    storage,
                    self.fdc_scale,
                    &self.live,
                ))
            };
            self.solution = None;
            self.topo_epoch = Some(epoch);
            return;
        }
        // Same topology: only FDC (occupancy) costs can have drifted.
        let mut dirty = 0u64;
        for (idx, &node) in self.live.iter().enumerate() {
            let used = storage[node].used_slots();
            if used != self.last_used[idx] {
                self.last_used[idx] = used;
                let instance = self.instance.as_mut().expect("live is non-empty");
                instance.set_open_cost(idx, scaled_open_cost(&storage[node], self.fdc_scale));
                dirty += 1;
            }
        }
        if dirty > 0 {
            telemetry::counter_add("ufl.incremental_updates", dirty);
            self.solution = None;
        }
    }

    /// Region-decomposed storer selection (the scale path): solves a UFL
    /// instance over the *origin node's radio-connected region* instead of
    /// the whole network, then stitches the solution against the open
    /// facilities of adjacent regions (closing local facilities a
    /// neighbor's replica makes redundant). Work per call is
    /// O(region² + horizon-bounded BFS), independent of total network
    /// size.
    ///
    /// This path is an approximation of the global solve — replicas
    /// concentrate around the data's origin — and carries no
    /// bit-equivalence contract with [`select_storers_scaled`]. It shares
    /// the cache telemetry (`ufl.cache_hit` / `ufl.cache_miss` /
    /// `ufl.incremental_updates`) and the same incremental refresh
    /// triggers: repartition on topology epoch change, per-region
    /// open-cost patches on occupancy drift, solution reuse otherwise.
    ///
    /// When the origin's region is infeasible (every member full), its
    /// adjacent regions are tried in ascending order, then the remaining
    /// regions.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::NoFeasibleFacility`] when every live node in
    /// every region is full or no node is live.
    pub fn select_storers_regional<R: Rng + ?Sized>(
        &mut self,
        placement: Placement,
        origin: NodeId,
        topology: &Topology,
        storage: &[NodeStorage],
        rng: &mut R,
    ) -> Result<Vec<NodeId>, SolveError> {
        if placement == Placement::NoProactive {
            return Ok(Vec::new());
        }
        let fdc_scale = self.fdc_scale;
        let engine = self
            .regions
            .get_or_insert_with(|| RegionEngine::new(RegionParams::default()));
        let horizon = engine.params.horizon;
        let epoch = topology.epoch();
        if engine.topo_epoch != Some(epoch) {
            telemetry::counter_add("ufl.cache_miss", 1);
            let (regions, region_of) = partition_regions(topology, engine.params);
            engine.regions = regions;
            engine.region_of = region_of;
            engine.topo_epoch = Some(epoch);
        }
        if engine.regions.is_empty() {
            return Err(SolveError::NoFeasibleFacility);
        }
        // Feasibility order: the origin's region, its neighbors, everyone
        // else — all ascending, all deterministic.
        let start = engine
            .region_of
            .get(origin.0)
            .copied()
            .flatten()
            .unwrap_or(0);
        let mut order = vec![start];
        order.extend(engine.regions[start].adjacent.iter().copied());
        let rest: Vec<usize> = (0..engine.regions.len())
            .filter(|r| !order.contains(r))
            .collect();
        order.extend(rest);
        let mut chosen = None;
        for r in order {
            ensure_region_solved(
                &mut engine.regions[r],
                topology,
                storage,
                fdc_scale,
                horizon,
            );
            if matches!(engine.regions[r].solution, Some(Ok(_))) {
                chosen = Some(r);
                break;
            }
        }
        let Some(r) = chosen else {
            return Err(SolveError::NoFeasibleFacility);
        };

        // Boundary stitch: local opens (closable, at their opening cost)
        // against adjacent regions' already-solved opens (free absorbers).
        let region = &engine.regions[r];
        let instance = region.instance.as_ref().expect("chosen region was built");
        let sol = match region.solution.as_ref().expect("chosen region was solved") {
            Ok(s) => s,
            Err(e) => return Err(*e),
        };
        let k = region.members.len();
        let local_opens = sol.open_facilities();
        let mut facilities: Vec<StitchFacility> = local_opens
            .iter()
            .map(|&li| StitchFacility {
                id: region.members[li],
                open_cost: instance.open_cost(li),
                external: false,
            })
            .collect();
        let mut connect: Vec<Vec<f64>> = local_opens
            .iter()
            .map(|&li| instance.connect_row(li).to_vec())
            .collect();
        let mut assignment: Vec<usize> = sol
            .assignment
            .iter()
            .map(|a| {
                local_opens
                    .binary_search(a)
                    .expect("assignment targets an open facility")
            })
            .collect();
        for &a in &region.adjacent {
            let adj = &engine.regions[a];
            let Some(Ok(asol)) = &adj.solution else {
                continue;
            };
            for fi in asol.open_facilities() {
                let g = adj.members[fi];
                let mut hops_to = vec![UNREACHABLE; k];
                for (v, h) in topology.bfs_bounded(NodeId(g), horizon, None) {
                    if let Ok(li) = region.members.binary_search(&v.0) {
                        hops_to[li] = h;
                    }
                }
                // Beyond-horizon members cannot use this external
                // facility: infinity (never picked) rather than the
                // finite in-instance penalty.
                let row: Vec<f64> = (0..k)
                    .map(|ci| match hops_to[ci] {
                        UNREACHABLE => f64::INFINITY,
                        h => topology.rdc_from_hops(NodeId(g), NodeId(region.members[ci]), h),
                    })
                    .collect();
                facilities.push(StitchFacility {
                    id: g,
                    open_cost: 0.0,
                    external: true,
                });
                connect.push(row);
            }
        }
        let open = stitch_close_pass(&facilities, &connect, &mut assignment);
        let optimal: Vec<NodeId> = serving_ids(&facilities, &open, &assignment)
            .into_iter()
            .map(NodeId)
            .collect();
        match placement {
            Placement::NoProactive => unreachable!("handled above"),
            Placement::Optimal => Ok(optimal),
            Placement::Random => {
                let candidates: Vec<NodeId> = region
                    .members
                    .iter()
                    .copied()
                    .filter(|&i| !storage[i].is_full())
                    .map(NodeId)
                    .collect();
                if candidates.is_empty() {
                    return Err(SolveError::NoFeasibleFacility);
                }
                let count = optimal.len().min(candidates.len());
                let mut picked = candidates;
                picked.shuffle(rng);
                picked.truncate(count);
                picked.sort();
                Ok(picked)
            }
        }
    }
}

/// Parameters of the region decomposition.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionParams {
    /// Coarse partition cell side in meters. Default 140 m — twice the
    /// paper's radio range, so a region spans a couple of hops.
    pub cell_m: f64,
    /// BFS horizon (hops) for connect costs within and across regions;
    /// peers beyond it take the unreachable penalty.
    pub horizon: u32,
}

impl Default for RegionParams {
    fn default() -> Self {
        RegionParams {
            cell_m: 140.0,
            horizon: 8,
        }
    }
}

/// One radio-connected region: the members of one coarse grid cell that
/// reach each other through in-cell links, plus its cached UFL state.
#[derive(Debug, Clone)]
struct Region {
    /// Global node indices, ascending.
    members: Vec<usize>,
    /// `n`-length membership mask for horizon-bounded BFS.
    mask: Vec<bool>,
    /// Indices of regions in the 3×3 coarse-cell neighborhood.
    adjacent: Vec<usize>,
    /// Used-slot counts at last refresh (FDC dirty checks).
    last_used: Vec<u64>,
    instance: Option<UflInstance>,
    solution: Option<Result<UflSolution, SolveError>>,
}

/// Cached region partition plus per-region UFL state; rebuilt when the
/// topology epoch moves, patched in place when only occupancy drifts.
#[derive(Debug, Clone)]
struct RegionEngine {
    params: RegionParams,
    topo_epoch: Option<u64>,
    regions: Vec<Region>,
    /// Node index → region index (`None` for crashed nodes).
    region_of: Vec<Option<usize>>,
}

impl RegionEngine {
    fn new(params: RegionParams) -> Self {
        RegionEngine {
            params,
            topo_epoch: None,
            regions: Vec::new(),
            region_of: Vec::new(),
        }
    }
}

/// Partitions the live nodes into radio-connected regions: bucket by
/// coarse grid cell, then split each cell's members into connected
/// components of the radio graph restricted to the cell. Regions are
/// ordered by (cell row, cell column, smallest member id) and region
/// adjacency follows the 3×3 cell neighborhood — all deterministic.
fn partition_regions(
    topology: &Topology,
    params: RegionParams,
) -> (Vec<Region>, Vec<Option<usize>>) {
    let n = topology.len();
    let cell = params.cell_m.max(1.0);
    let mut cells: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    for i in 0..n {
        let v = NodeId(i);
        if !topology.is_active(v) {
            continue;
        }
        let p = topology.position(v);
        let cx = (p.x / cell).floor().max(0.0) as u64;
        let cy = (p.y / cell).floor().max(0.0) as u64;
        cells.entry((cy, cx)).or_default().push(i);
    }
    let mut regions: Vec<Region> = Vec::new();
    let mut region_of: Vec<Option<usize>> = vec![None; n];
    let mut cell_regions: BTreeMap<(u64, u64), Vec<usize>> = BTreeMap::new();
    let mut in_cell = vec![false; n];
    for (&key, members) in &cells {
        for &m in members {
            in_cell[m] = true;
        }
        for &m in members {
            if region_of[m].is_some() {
                continue;
            }
            // Connected component of `m` within the cell's members.
            let idx = regions.len();
            let mut comp = vec![m];
            region_of[m] = Some(idx);
            let mut queue = VecDeque::from([m]);
            while let Some(u) = queue.pop_front() {
                for &w in topology.neighbors(NodeId(u)) {
                    if in_cell[w.0] && region_of[w.0].is_none() {
                        region_of[w.0] = Some(idx);
                        comp.push(w.0);
                        queue.push_back(w.0);
                    }
                }
            }
            comp.sort_unstable();
            let mut mask = vec![false; n];
            for &c in &comp {
                mask[c] = true;
            }
            cell_regions.entry(key).or_default().push(idx);
            regions.push(Region {
                members: comp,
                mask,
                adjacent: Vec::new(),
                last_used: Vec::new(),
                instance: None,
                solution: None,
            });
        }
        for &m in members {
            in_cell[m] = false;
        }
    }
    for (&(cy, cx), idxs) in &cell_regions {
        let mut nbrs: Vec<usize> = Vec::new();
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let ky = cy as i64 + dy;
                let kx = cx as i64 + dx;
                if ky < 0 || kx < 0 {
                    continue;
                }
                if let Some(others) = cell_regions.get(&(ky as u64, kx as u64)) {
                    nbrs.extend(others.iter().copied());
                }
            }
        }
        nbrs.sort_unstable();
        for &r in idxs {
            regions[r].adjacent = nbrs.iter().copied().filter(|&o| o != r).collect();
        }
    }
    (regions, region_of)
}

/// Brings one region's cached UFL state in sync: builds the instance from
/// horizon-bounded BFS rows when absent, patches drifted open costs in
/// place otherwise, and (re-)solves only when needed.
fn ensure_region_solved(
    region: &mut Region,
    topology: &Topology,
    storage: &[NodeStorage],
    fdc_scale: f64,
    horizon: u32,
) {
    if let Some(instance) = region.instance.as_mut() {
        let mut dirty = 0u64;
        for (li, &i) in region.members.iter().enumerate() {
            let used = storage[i].used_slots();
            if used != region.last_used[li] {
                region.last_used[li] = used;
                instance.set_open_cost(li, scaled_open_cost(&storage[i], fdc_scale));
                dirty += 1;
            }
        }
        if dirty > 0 {
            telemetry::counter_add("ufl.incremental_updates", dirty);
            region.solution = None;
        }
    } else {
        let members = &region.members;
        let k = members.len();
        let instance = telemetry::time_wall("ufl.build_ns", || {
            let open_cost: Vec<f64> = members
                .iter()
                .map(|&i| scaled_open_cost(&storage[i], fdc_scale))
                .collect();
            let mut connect = vec![vec![0.0f64; k]; k];
            for (fi, &f) in members.iter().enumerate() {
                let mut hops_to = vec![UNREACHABLE; k];
                for (v, h) in topology.bfs_bounded(NodeId(f), horizon, Some(&region.mask)) {
                    let li = members
                        .binary_search(&v.0)
                        .expect("bounded bfs stays in mask");
                    hops_to[li] = h;
                }
                for ci in 0..k {
                    connect[fi][ci] =
                        topology.rdc_from_hops(NodeId(f), NodeId(members[ci]), hops_to[ci]);
                }
            }
            UflInstance::new(open_cost, connect)
        });
        region.last_used = members.iter().map(|&i| storage[i].used_slots()).collect();
        region.instance = Some(instance);
        region.solution = None;
    }
    if region.solution.is_none() {
        region.solution = Some(solve(region.instance.as_ref().expect("instance present")));
    } else {
        telemetry::counter_add("ufl.cache_hit", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::DataId;
    use edgechain_sim::{Point, TopologyConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn line_topology(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    #[test]
    fn optimal_avoids_full_nodes() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(10); 4];
        for i in 0..10 {
            storage[1].store_data(DataId(i));
        }
        storage[1].cache_recent(0);
        assert!(storage[1].is_full());
        let mut rng = StdRng::seed_from_u64(1);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(!nodes.is_empty());
        assert!(!nodes.contains(&NodeId(1)), "full node selected: {nodes:?}");
    }

    #[test]
    fn optimal_prefers_emptier_nodes() {
        let topo = line_topology(3);
        let mut storage = vec![NodeStorage::new(100); 3];
        // Node 0 heavily used; nodes 1,2 empty.
        for i in 0..90 {
            storage[0].store_data(DataId(i));
        }
        let mut rng = StdRng::seed_from_u64(2);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            !nodes.contains(&NodeId(0)),
            "loaded node selected: {nodes:?}"
        );
    }

    #[test]
    fn random_matches_optimal_count() {
        let mut rng = StdRng::seed_from_u64(3);
        let topo = Topology::random_connected(20, TopologyConfig::default(), &mut rng).unwrap();
        let storage = vec![NodeStorage::paper_default(); 20];
        let optimal = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        let random = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
        assert_eq!(optimal.len(), random.len());
    }

    #[test]
    fn random_only_picks_non_full() {
        let topo = line_topology(4);
        let mut storage = vec![NodeStorage::new(5); 4];
        for i in 0..5 {
            storage[2].store_data(DataId(i));
        }
        storage[2].cache_recent(0);
        assert!(storage[2].is_full());
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..20 {
            let nodes = select_storers(Placement::Random, &topo, &storage, &mut rng).unwrap();
            assert!(!nodes.contains(&NodeId(2)));
        }
    }

    #[test]
    fn all_full_is_error() {
        let topo = line_topology(2);
        let mut storage = vec![NodeStorage::new(1); 2];
        for s in &mut storage {
            s.cache_recent(0); // the single slot holds the newest block
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
        assert_eq!(
            select_storers(Placement::Random, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn spread_out_network_gets_multiple_replicas() {
        // A long line: one replica cannot serve everyone cheaply, so the
        // solver opens several facilities.
        let topo = line_topology(12);
        let storage = vec![NodeStorage::paper_default(); 12];
        let mut rng = StdRng::seed_from_u64(6);
        let nodes = select_storers(Placement::Optimal, &topo, &storage, &mut rng).unwrap();
        assert!(
            nodes.len() >= 2,
            "expected multiple replicas, got {nodes:?}"
        );
    }

    #[test]
    fn crashed_nodes_are_never_selected() {
        let mut topo = line_topology(6);
        topo.set_active(NodeId(2), false);
        let storage = vec![NodeStorage::paper_default(); 6];
        let mut rng = StdRng::seed_from_u64(7);
        for placement in [Placement::Optimal, Placement::Random] {
            for _ in 0..10 {
                let nodes = select_storers(placement, &topo, &storage, &mut rng).unwrap();
                assert!(!nodes.is_empty());
                assert!(
                    !nodes.contains(&NodeId(2)),
                    "{placement}: dead node selected in {nodes:?}"
                );
            }
        }
    }

    #[test]
    fn all_nodes_down_is_infeasible() {
        let mut topo = line_topology(3);
        for i in 0..3 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 3];
        let mut rng = StdRng::seed_from_u64(8);
        assert_eq!(
            select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    #[should_panic(expected = "one storage manager per topology node")]
    fn mismatched_sizes_rejected() {
        let topo = line_topology(3);
        let storage = vec![NodeStorage::paper_default(); 2];
        let _ = build_instance(&topo, &storage);
    }

    /// The cached context must reproduce the one-shot path exactly across
    /// a mutating workload: storage writes, node crashes/restarts, and
    /// mobility changes, under both placements.
    #[test]
    fn context_matches_one_shot_path_through_mutations() {
        let mut rng = StdRng::seed_from_u64(0xA11C);
        let mut topo = Topology::random_connected(15, TopologyConfig::default(), &mut rng).unwrap();
        let mut storage = vec![NodeStorage::new(40); 15];
        let mut ctx = AllocationContext::default();
        // Two independent rngs with identical seeds: each path must draw
        // the same stream for Random placement.
        let mut rng_a = StdRng::seed_from_u64(0xD1CE);
        let mut rng_b = StdRng::seed_from_u64(0xD1CE);
        for step in 0..60usize {
            let placement = match step % 3 {
                0 => Placement::Optimal,
                1 => Placement::Random,
                _ => Placement::NoProactive,
            };
            let one_shot = select_storers(placement, &topo, &storage, &mut rng_a);
            let cached = ctx.select_storers(placement, &topo, &storage, &mut rng_b);
            assert_eq!(one_shot, cached, "step {step} ({placement})");
            // Mutate the world between calls.
            if let Ok(nodes) = &one_shot {
                for n in nodes {
                    storage[n.0].store_data(DataId(step as u64));
                }
            }
            if step == 20 {
                topo.set_active(NodeId(3), false);
            }
            if step == 35 {
                topo.set_active(NodeId(3), true);
            }
            if step == 45 {
                topo.set_mobility_range(NodeId(7), 25.0);
            }
        }
    }

    #[test]
    fn context_caches_errors_until_state_changes() {
        let topo = line_topology(2);
        let mut storage = vec![NodeStorage::new(2); 2];
        for s in &mut storage {
            s.cache_recent(0);
            assert!(s.store_data(DataId(0)));
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(9);
        let mut ctx = AllocationContext::default();
        for _ in 0..3 {
            assert_eq!(
                ctx.select_storers(Placement::Optimal, &topo, &storage, &mut rng),
                Err(SolveError::NoFeasibleFacility)
            );
        }
        // Free a slot: the dirty check must notice and re-solve.
        assert!(storage[0].evict_data(DataId(0)));
        let nodes = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(nodes, vec![NodeId(0)]);
    }

    #[test]
    fn context_all_nodes_down_is_infeasible() {
        let mut topo = line_topology(3);
        for i in 0..3 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 3];
        let mut rng = StdRng::seed_from_u64(10);
        let mut ctx = AllocationContext::default();
        assert_eq!(
            ctx.select_storers(Placement::Optimal, &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn warm_start_context_stays_feasible() {
        let mut rng = StdRng::seed_from_u64(0xBEEF);
        let topo = Topology::random_connected(12, TopologyConfig::default(), &mut rng).unwrap();
        let mut storage = vec![NodeStorage::new(30); 12];
        let mut ctx = AllocationContext::default().with_warm_start(true);
        for step in 0..30usize {
            let nodes = ctx
                .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
                .unwrap();
            assert!(!nodes.is_empty());
            for n in &nodes {
                assert!(!storage[n.0].is_full(), "warm path picked full node");
                storage[n.0].store_data(DataId(step as u64));
            }
        }
    }

    #[test]
    fn invalidate_forces_rebuild() {
        let topo = line_topology(4);
        let storage = vec![NodeStorage::paper_default(); 4];
        let mut rng = StdRng::seed_from_u64(11);
        let mut ctx = AllocationContext::default();
        let first = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        ctx.invalidate();
        let second = ctx
            .select_storers(Placement::Optimal, &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(first, second);
    }

    fn regional_ctx() -> AllocationContext {
        AllocationContext::default().with_regions(RegionParams::default())
    }

    #[test]
    fn partition_covers_live_nodes_exactly_once() {
        let mut topo = line_topology(12); // x spans 0..660 m: several 140 m cells
        topo.set_active(NodeId(5), false);
        let (regions, region_of) = partition_regions(&topo, RegionParams::default());
        assert!(
            regions.len() >= 3,
            "expected several regions on a long line"
        );
        let mut seen = vec![0usize; 12];
        for (r, region) in regions.iter().enumerate() {
            assert!(region.members.windows(2).all(|w| w[0] < w[1]));
            for &m in &region.members {
                seen[m] += 1;
                assert_eq!(region_of[m], Some(r));
                assert!(region.mask[m]);
            }
            assert!(!region.adjacent.contains(&r));
        }
        for i in 0..12 {
            if i == 5 {
                assert_eq!(seen[i], 0, "crashed node placed in a region");
                assert_eq!(region_of[i], None);
            } else {
                assert_eq!(seen[i], 1, "node {i} in {} regions", seen[i]);
            }
        }
    }

    #[test]
    fn partition_splits_disconnected_cell_members() {
        // Two nodes in the same coarse cell but out of radio range of each
        // other (range 70 m, distance 100 m diagonally separated within a
        // 140 m cell is impossible on a line, so use y).
        let topo = Topology::from_positions(vec![Point::new(10.0, 10.0), Point::new(10.0, 130.0)]);
        let (regions, region_of) = partition_regions(&topo, RegionParams::default());
        assert_eq!(regions.len(), 2);
        assert_ne!(region_of[0], region_of[1]);
        // Same cell ⇒ mutually adjacent regions.
        assert_eq!(regions[0].adjacent, vec![1]);
        assert_eq!(regions[1].adjacent, vec![0]);
    }

    #[test]
    fn regional_selection_picks_live_non_full_nodes() {
        let topo = line_topology(12);
        let mut storage = vec![NodeStorage::new(10); 12];
        for i in 0..10 {
            storage[1].store_data(DataId(i));
        }
        storage[1].cache_recent(0);
        assert!(storage[1].is_full());
        let mut rng = StdRng::seed_from_u64(21);
        let mut ctx = regional_ctx();
        let nodes = ctx
            .select_storers_regional(Placement::Optimal, NodeId(0), &topo, &storage, &mut rng)
            .unwrap();
        assert!(!nodes.is_empty());
        assert!(!nodes.contains(&NodeId(1)), "full node selected: {nodes:?}");
    }

    #[test]
    fn regional_selection_is_stable_and_tracks_crashes() {
        let mut topo = line_topology(10);
        let storage = vec![NodeStorage::paper_default(); 10];
        let mut rng = StdRng::seed_from_u64(22);
        let mut ctx = regional_ctx();
        let first = ctx
            .select_storers_regional(Placement::Optimal, NodeId(4), &topo, &storage, &mut rng)
            .unwrap();
        let second = ctx
            .select_storers_regional(Placement::Optimal, NodeId(4), &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(first, second, "cached regional solve drifted");
        // Crash every currently selected node: the epoch bump must force a
        // repartition that routes around them.
        for n in &first {
            topo.set_active(*n, false);
        }
        let third = ctx
            .select_storers_regional(Placement::Optimal, NodeId(4), &topo, &storage, &mut rng)
            .unwrap();
        assert!(!third.is_empty());
        for n in &first {
            assert!(!third.contains(n), "dead node {n:?} selected in {third:?}");
        }
    }

    #[test]
    fn regional_random_draws_from_origin_region() {
        let topo = line_topology(12);
        let storage = vec![NodeStorage::paper_default(); 12];
        let mut rng = StdRng::seed_from_u64(23);
        let mut ctx = regional_ctx();
        let optimal = ctx
            .select_storers_regional(Placement::Optimal, NodeId(0), &topo, &storage, &mut rng)
            .unwrap();
        let random = ctx
            .select_storers_regional(Placement::Random, NodeId(0), &topo, &storage, &mut rng)
            .unwrap();
        assert_eq!(optimal.len(), random.len());
        let engine = ctx.regions.as_ref().unwrap();
        let region = engine.region_of[0].unwrap();
        for n in &random {
            assert_eq!(
                engine.region_of[n.0],
                Some(region),
                "random pick {n:?} outside origin region"
            );
        }
    }

    #[test]
    fn regional_falls_back_when_origin_region_is_full() {
        // Origin's region (nodes at x=0,60 share cell 0) entirely full;
        // the adjacent region must take over.
        let topo = line_topology(6);
        let mut storage = vec![NodeStorage::new(2); 6];
        for i in 0..2 {
            for s in storage.iter_mut().take(3) {
                s.store_data(DataId(i));
            }
        }
        for s in storage.iter_mut().take(3) {
            s.cache_recent(0);
            assert!(s.is_full());
        }
        let mut rng = StdRng::seed_from_u64(24);
        let mut ctx = regional_ctx();
        let nodes = ctx
            .select_storers_regional(Placement::Optimal, NodeId(0), &topo, &storage, &mut rng)
            .unwrap();
        assert!(!nodes.is_empty());
        for n in &nodes {
            assert!(n.0 >= 3, "full-region node selected: {nodes:?}");
        }
    }

    #[test]
    fn regional_all_down_is_infeasible() {
        let mut topo = line_topology(4);
        for i in 0..4 {
            topo.set_active(NodeId(i), false);
        }
        let storage = vec![NodeStorage::paper_default(); 4];
        let mut rng = StdRng::seed_from_u64(25);
        let mut ctx = regional_ctx();
        assert_eq!(
            ctx.select_storers_regional(Placement::Optimal, NodeId(0), &topo, &storage, &mut rng),
            Err(SolveError::NoFeasibleFacility)
        );
    }

    #[test]
    fn regional_selection_matches_between_sparse_and_dense_routes() {
        // The regional path reads only neighbor lists, bounded BFS, and
        // RDC values — all bit-identical across route representations.
        let mut rng = StdRng::seed_from_u64(0x5CA1E);
        let positions: Vec<Point> = (0..40)
            .map(|_| {
                Point::new(
                    rand::Rng::gen_range(&mut rng, 0.0..300.0),
                    rand::Rng::gen_range(&mut rng, 0.0..300.0),
                )
            })
            .collect();
        let dense =
            Topology::from_positions_with_config(positions.clone(), TopologyConfig::default());
        let sparse = Topology::from_positions_with_config(
            positions,
            TopologyConfig {
                sparse_routes: true,
                ..TopologyConfig::default()
            },
        );
        let storage = vec![NodeStorage::paper_default(); 40];
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut ctx_a = regional_ctx();
        let mut ctx_b = regional_ctx();
        for origin in 0..40 {
            let a = ctx_a.select_storers_regional(
                Placement::Optimal,
                NodeId(origin),
                &dense,
                &storage,
                &mut rng_a,
            );
            let b = ctx_b.select_storers_regional(
                Placement::Optimal,
                NodeId(origin),
                &sparse,
                &storage,
                &mut rng_b,
            );
            assert_eq!(a, b, "origin {origin}");
        }
    }
}
