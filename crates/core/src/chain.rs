//! The blockchain container: validation, fork choice, pruning, and
//! derived state.
//!
//! Every node keeps (a view of) the chain. Validation checks linkage
//! (index, hash, timestamp), structural integrity (block hash + Merkle
//! root), and optionally every metadata producer signature. Fork choice is
//! the paper's longest-chain rule: a node that receives a strictly longer
//! valid chain adopts it. Token balances are always *derived* from chain
//! history (one token per mined block), so any node can audit any `S_i`.
//!
//! Long-horizon runs cannot keep every block forever: checkpoint-anchored
//! pruning collapses blocks strictly below a cut height into a signed
//! [`ChainAnchor`] that carries the boundary linkage, a chained Merkle
//! commitment over the pruned hashes, and the derived state (per-miner
//! block counts, metadata totals) the pruned prefix contributed. All
//! positional APIs (`get`, `fork_point`, fork choice) stay index-aligned
//! across the pruned base, and a chain can be rebuilt from an anchor plus
//! its retained suffix ([`Blockchain::from_anchor`] — the snapshot
//! bootstrap path).

use crate::account::{AccountId, Ledger};
use crate::block::{Block, BlockError};
use edgechain_crypto::{sha256_pair, Digest, KeyPair, MerkleTree, PublicKey, Sha256, Signature};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// A signed, Merkle-committed stand-in for a pruned chain prefix.
///
/// When pruning collapses blocks `[0, height]`, the anchor carries
/// everything later consumers need from them: the linkage fields of the
/// boundary block (so the first retained block still validates), a
/// chained commitment over every pruned block hash (so two nodes can
/// audit that they pruned the same prefix), and the derived state the
/// pruned blocks contributed — per-miner block counts for the token
/// ledger and the on-chain metadata total. The pruning node signs the
/// whole thing so a snapshot receiver can pin tampering on the sender.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChainAnchor {
    /// Index of the newest pruned block (the prefix `[0, height]` is gone).
    pub height: u64,
    /// Hash of the block at `height` — the `prev_hash` the first retained
    /// block must carry.
    pub tip_hash: Digest,
    /// PoS hash of the block at `height` (Eq. 7 chaining continues here).
    pub tip_pos_hash: Digest,
    /// Timestamp of the block at `height`.
    pub tip_timestamp_secs: u64,
    /// Chained Merkle commitment over all pruned block hashes: each prune
    /// round folds the Merkle root of its segment into the previous
    /// commitment (`sha256(prev ‖ segment_root)`, starting from zero).
    pub commitment: Digest,
    /// Blocks mined per account inside the pruned prefix, sorted by
    /// account — the ledger summary (one token per block).
    pub mined: Vec<(AccountId, u64)>,
    /// Metadata items recorded in the pruned prefix.
    pub metadata_items: u64,
    /// Account of the node that sealed this anchor.
    pub signer: AccountId,
    /// Its public key (must hash to `signer`).
    pub signer_key: PublicKey,
    /// Signature over [`ChainAnchor::signing_digest`].
    pub signature: Signature,
}

impl ChainAnchor {
    /// Builds and signs an anchor over an already-summarised prefix.
    #[allow(clippy::too_many_arguments)]
    fn seal(
        height: u64,
        tip_hash: Digest,
        tip_pos_hash: Digest,
        tip_timestamp_secs: u64,
        commitment: Digest,
        mined: Vec<(AccountId, u64)>,
        metadata_items: u64,
        keys: &KeyPair,
    ) -> Self {
        let signer_key = keys.public_key();
        let mut anchor = ChainAnchor {
            height,
            tip_hash,
            tip_pos_hash,
            tip_timestamp_secs,
            commitment,
            mined,
            metadata_items,
            signer: AccountId::from_public_key(&signer_key),
            signer_key,
            signature: Signature::from_bytes(&[0u8; 64]),
        };
        anchor.signature = keys.sign(anchor.signing_digest().as_bytes());
        anchor
    }

    /// Digest the pruning node signs: every field except the signature.
    pub fn signing_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"edgechain.anchor.v1");
        h.update(self.height.to_le_bytes());
        h.update(self.tip_hash.as_bytes());
        h.update(self.tip_pos_hash.as_bytes());
        h.update(self.tip_timestamp_secs.to_le_bytes());
        h.update(self.commitment.as_bytes());
        h.update((self.mined.len() as u64).to_le_bytes());
        for (acct, n) in &self.mined {
            h.update(acct.as_bytes());
            h.update(n.to_le_bytes());
        }
        h.update(self.metadata_items.to_le_bytes());
        h.update(self.signer.as_bytes());
        h.update(self.signer_key.to_bytes());
        h.finalize()
    }

    /// Verifies the signature and that the key matches the signer account.
    pub fn verify(&self) -> bool {
        AccountId::from_public_key(&self.signer_key) == self.signer
            && self
                .signer_key
                .verify(self.signing_digest().as_bytes(), &self.signature)
    }

    /// Blocks mined by `account` inside the pruned prefix.
    pub fn mined_by(&self, account: &AccountId) -> u64 {
        self.mined
            .binary_search_by(|(a, _)| a.cmp(account))
            .map(|i| self.mined[i].1)
            .unwrap_or(0)
    }
}

/// A bootstrap snapshot: the pruned-prefix anchor, the retained block
/// suffix, and the live metadata registry (each item carries its storer
/// map in `storing_nodes`, paired with the block that packed it).
///
/// Nodes rejoining from below the retention window cannot recover
/// block-by-block — those blocks no longer exist anywhere — so a peer
/// serves them a snapshot instead. The serving node signs the whole
/// object; [`Snapshot::verify`] checks that signature, the anchor's own
/// signature, and the structural linkage of the suffix, so any bit
/// tampered in flight (or by a Byzantine server) makes verification fail
/// and the fetcher blacklists the source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    /// Summary of everything below the retained suffix.
    pub anchor: ChainAnchor,
    /// Retained blocks, `anchor.height + 1` through the server's tip.
    pub blocks: Vec<Block>,
    /// Live metadata items and the index of the block that packed each.
    pub registry: Vec<(crate::metadata::MetadataItem, u64)>,
    /// Account of the serving node.
    pub server: AccountId,
    /// Its public key (must hash to `server`).
    pub server_key: PublicKey,
    /// Signature over [`Snapshot::signing_digest`].
    pub signature: Signature,
}

impl Snapshot {
    /// Builds and signs a snapshot served by the holder of `keys`.
    pub fn seal(
        anchor: ChainAnchor,
        blocks: Vec<Block>,
        registry: Vec<(crate::metadata::MetadataItem, u64)>,
        keys: &KeyPair,
    ) -> Self {
        let server_key = keys.public_key();
        let mut snapshot = Snapshot {
            anchor,
            blocks,
            registry,
            server: AccountId::from_public_key(&server_key),
            server_key,
            signature: Signature::from_bytes(&[0u8; 64]),
        };
        snapshot.signature = keys.sign(snapshot.signing_digest().as_bytes());
        snapshot
    }

    /// Digest the serving node signs: the anchor (digest + signature),
    /// every suffix block hash, and the canonical bytes of every registry
    /// entry — the storer maps included, since those are exactly what a
    /// tamperer would rewrite.
    pub fn signing_digest(&self) -> Digest {
        let mut h = Sha256::new();
        h.update(b"edgechain.snapshot.v1");
        h.update(self.anchor.signing_digest().as_bytes());
        h.update(self.anchor.signature.to_bytes());
        h.update((self.blocks.len() as u64).to_le_bytes());
        for b in &self.blocks {
            h.update(b.hash.as_bytes());
        }
        h.update((self.registry.len() as u64).to_le_bytes());
        for (item, packed_at) in &self.registry {
            h.update(item.canonical_bytes());
            h.update(packed_at.to_le_bytes());
        }
        h.update(self.server.as_bytes());
        h.update(self.server_key.to_bytes());
        h.finalize()
    }

    /// Full verification: server key matches the account and the
    /// signature, the anchor verifies on its own, the suffix attaches to
    /// the anchor with valid linkage throughout (every block well-formed),
    /// and no registry entry claims a packing block above the tip.
    pub fn verify(&self) -> bool {
        if AccountId::from_public_key(&self.server_key) != self.server {
            return false;
        }
        if !self
            .server_key
            .verify(self.signing_digest().as_bytes(), &self.signature)
        {
            return false;
        }
        if !self.anchor.verify() {
            return false;
        }
        let Ok(chain) = Blockchain::from_anchor(self.anchor.clone(), self.blocks.clone()) else {
            return false;
        };
        let tip = chain.height();
        self.registry.iter().all(|(_, packed_at)| *packed_at <= tip)
    }
}

/// A validated chain of blocks starting at genesis.
///
/// # Examples
///
/// ```
/// use edgechain_core::{Blockchain, Block};
///
/// let mut chain = Blockchain::new();
/// assert_eq!(chain.height(), 0);
/// assert_eq!(chain.tip(), &Block::genesis());
/// // Chains rebuilt from raw blocks are re-validated link by link.
/// let same = Blockchain::from_blocks(chain.as_slice().to_vec())?;
/// assert_eq!(same, chain);
/// # Ok::<(), edgechain_core::ChainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blockchain {
    /// Everything strictly below `base` collapsed into this anchor.
    anchor: Option<ChainAnchor>,
    /// Index of `blocks[0]` (0 when nothing has been pruned).
    base: u64,
    /// Retained blocks; `blocks[i].index == base + i`; never empty.
    blocks: Vec<Block>,
    /// `(height, commitment)` of every anchor this chain sealed or
    /// adopted, oldest first — the audit trail behind
    /// [`Blockchain::commitment_at`].
    anchor_history: Vec<(u64, Digest)>,
}

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl Blockchain {
    /// A chain containing only the genesis block.
    pub fn new() -> Self {
        Blockchain {
            anchor: None,
            base: 0,
            blocks: vec![Block::genesis()],
            anchor_history: Vec::new(),
        }
    }

    /// Reconstructs a chain from blocks, validating linkage.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] when the sequence is empty, does not start at
    /// the canonical genesis, or fails linkage validation anywhere.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Self, ChainError> {
        if blocks.is_empty() {
            return Err(ChainError::Empty);
        }
        if blocks[0] != Block::genesis() {
            return Err(ChainError::BadGenesis);
        }
        for i in 1..blocks.len() {
            blocks[i]
                .validate_against(&blocks[i - 1])
                .map_err(|e| ChainError::Invalid {
                    index: blocks[i].index,
                    source: e,
                })?;
        }
        Ok(Blockchain {
            anchor: None,
            base: 0,
            blocks,
            anchor_history: Vec::new(),
        })
    }

    /// Rebuilds a pruned chain from an anchor and its retained suffix —
    /// the snapshot-bootstrap path. The first block must sit directly on
    /// the anchor boundary; linkage is validated from there.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError::Empty`] without blocks,
    /// [`ChainError::DetachedAnchor`] when the first block does not link
    /// to the anchor, and [`ChainError::Invalid`] for any broken link in
    /// the suffix.
    pub fn from_anchor(anchor: ChainAnchor, blocks: Vec<Block>) -> Result<Self, ChainError> {
        let Some(first) = blocks.first() else {
            return Err(ChainError::Empty);
        };
        if first.index != anchor.height + 1
            || first.prev_hash != anchor.tip_hash
            || first.timestamp_secs < anchor.tip_timestamp_secs
            || !first.is_well_formed()
        {
            return Err(ChainError::DetachedAnchor);
        }
        for i in 1..blocks.len() {
            blocks[i]
                .validate_against(&blocks[i - 1])
                .map_err(|e| ChainError::Invalid {
                    index: blocks[i].index,
                    source: e,
                })?;
        }
        Ok(Blockchain {
            base: anchor.height + 1,
            anchor_history: vec![(anchor.height, anchor.commitment)],
            anchor: Some(anchor),
            blocks,
        })
    }

    /// Number of blocks including genesis — pruned blocks still count.
    pub fn len(&self) -> usize {
        self.base as usize + self.blocks.len()
    }

    /// A chain is never empty (genesis is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the newest block.
    pub fn height(&self) -> u64 {
        self.base + self.blocks.len() as u64 - 1
    }

    /// The newest block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// Index of the oldest block still held (0 when nothing has been
    /// pruned).
    pub fn base_index(&self) -> u64 {
        self.base
    }

    /// The anchor summarising the pruned prefix, if any pruning happened.
    pub fn anchor(&self) -> Option<&ChainAnchor> {
        self.anchor.as_ref()
    }

    /// Number of blocks physically held (≤ [`Blockchain::len`]).
    pub fn retained_len(&self) -> usize {
        self.blocks.len()
    }

    /// Block at `index`, if present — `None` both above the tip and below
    /// the pruned base.
    pub fn get(&self, index: u64) -> Option<&Block> {
        index
            .checked_sub(self.base)
            .and_then(|i| self.blocks.get(i as usize))
    }

    /// Iterates retained blocks oldest-first (from genesis when nothing
    /// has been pruned).
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// All retained blocks as a slice (the whole chain when nothing has
    /// been pruned). The first element's `index` is
    /// [`Blockchain::base_index`], not necessarily 0.
    pub fn as_slice(&self) -> &[Block] {
        &self.blocks
    }

    /// Retained blocks from the pruned base through `height`, inclusive.
    ///
    /// # Panics
    ///
    /// Panics when `height` is below the pruned base or above the tip.
    pub fn retained_up_to(&self, height: u64) -> &[Block] {
        assert!(
            height >= self.base && height <= self.height(),
            "height {height} outside retained range [{}, {}]",
            self.base,
            self.height()
        );
        &self.blocks[..=(height - self.base) as usize]
    }

    /// Retained blocks strictly above `height` (empty at the tip).
    ///
    /// # Panics
    ///
    /// Panics when `height` is below the pruned base or above the tip.
    pub fn retained_after(&self, height: u64) -> &[Block] {
        assert!(
            height >= self.base && height <= self.height(),
            "height {height} outside retained range [{}, {}]",
            self.base,
            self.height()
        );
        &self.blocks[(height + 1 - self.base) as usize..]
    }

    /// Appends a block after validating linkage against the tip.
    ///
    /// # Errors
    ///
    /// Returns the [`BlockError`] from [`Block::validate_against`].
    pub fn push(&mut self, block: Block) -> Result<(), BlockError> {
        block.validate_against(self.tip())?;
        self.blocks.push(block);
        Ok(())
    }

    /// [`Blockchain::push`] for a block **this process sealed**: linkage
    /// is validated in full, but the structural check reuses the block's
    /// cached Merkle leaf digests ([`Block::validate_sealed_against`])
    /// instead of rehashing every metadata item. Blocks of unknown
    /// provenance (decoded from the wire, fork candidates) must go
    /// through [`Blockchain::push`].
    ///
    /// # Errors
    ///
    /// Returns the [`BlockError`] from [`Block::validate_sealed_against`].
    pub fn push_sealed(&mut self, block: Block) -> Result<(), BlockError> {
        block.validate_sealed_against(self.tip())?;
        self.blocks.push(block);
        Ok(())
    }

    /// Verifies every metadata producer signature in `block`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::BadMetadataSignature`] naming the first bad
    /// item.
    pub fn verify_block_signatures(block: &Block) -> Result<(), BlockError> {
        for (i, item) in block.metadata.iter().enumerate() {
            if !item.verify() {
                return Err(BlockError::BadMetadataSignature {
                    index: block.index,
                    item: i,
                });
            }
        }
        Ok(())
    }

    /// Longest-chain fork choice: adopts `candidate` iff it is strictly
    /// longer and fully valid. Returns whether adoption happened.
    ///
    /// `candidate` is index-aligned by its first block: a slice starting
    /// at genesis is a whole chain, one starting higher is a suffix that
    /// must attach to a block this chain still holds. A pruned chain
    /// refuses candidates that diverge inside its pruned prefix — those
    /// blocks are anchored and cannot be audited away.
    ///
    /// (Receiving "a blockchain longer than its previous received
    /// blockchain" is also how a node detects that it missed blocks,
    /// §IV-D.)
    pub fn try_adopt(&mut self, candidate: &[Block]) -> bool {
        let Some(first) = candidate.first() else {
            return false;
        };
        let cand_len = first.index + candidate.len() as u64;
        if cand_len <= self.len() as u64 {
            return false;
        }
        if !self.candidate_is_valid(candidate) {
            return false;
        }
        self.splice_from(candidate)
    }

    /// Structural validation of an index-aligned candidate: attachment to
    /// this chain (or the canonical genesis) plus internal linkage.
    fn candidate_is_valid(&self, candidate: &[Block]) -> bool {
        let first = &candidate[0];
        if first.index == 0 {
            if *first != Block::genesis() {
                return false;
            }
        } else {
            // A suffix must attach to a block we still hold; anything
            // reaching below the pruned base is unverifiable and refused.
            match self.get(first.index - 1) {
                Some(prev) => {
                    if first.validate_against(prev).is_err() {
                        return false;
                    }
                }
                None => return false,
            }
        }
        for i in 1..candidate.len() {
            if candidate[i].validate_against(&candidate[i - 1]).is_err() {
                return false;
            }
        }
        true
    }

    /// Replaces this chain from the candidate's first index upward,
    /// keeping the anchor (and any agreeing prefix) intact. The candidate
    /// has already been validated.
    fn splice_from(&mut self, candidate: &[Block]) -> bool {
        let cand_base = candidate[0].index;
        if cand_base >= self.base {
            self.blocks.truncate((cand_base - self.base) as usize);
            self.blocks.extend_from_slice(candidate);
        } else {
            // The candidate spans our pruned prefix (it must start at
            // genesis to have validated). Adopt only if it agrees with the
            // retained boundary, keeping our anchor as the prefix summary.
            let offset = (self.base - cand_base) as usize;
            if candidate.get(offset).map(|b| b.hash) != Some(self.blocks[0].hash) {
                return false;
            }
            self.blocks = candidate[offset..].to_vec();
        }
        true
    }

    /// Checkpointed fork choice (paper §V-D): because PoS makes working on
    /// multiple branches cheap, "solutions about inserting checkpoint
    /// block are proposed to force nodes working on the chain that has
    /// checkpoint blocks". A candidate chain is adopted only if it is
    /// strictly longer, fully valid, **and agrees with this chain's
    /// checkpoint blocks** — every block at a height that is a multiple of
    /// `policy.interval` (and within both chains) must be identical, so no
    /// reorganisation can cross a checkpoint.
    pub fn try_adopt_checkpointed(
        &mut self,
        candidate: &[Block],
        policy: CheckpointPolicy,
    ) -> bool {
        let Some(first) = candidate.first() else {
            return false;
        };
        let cand_base = first.index;
        let cand_top = cand_base + candidate.len() as u64 - 1;
        if cand_top < self.len() as u64 {
            return false;
        }
        let interval = policy.interval.max(1);
        let lo = self.base.max(cand_base);
        let hi = self.height().min(cand_top);
        let mut cp = lo.div_ceil(interval).max(1) * interval;
        while cp <= hi {
            let theirs = &candidate[(cp - cand_base) as usize];
            if self.get(cp) != Some(theirs) {
                return false;
            }
            cp += interval;
        }
        self.try_adopt(candidate)
    }

    /// First height at which this chain and `other` disagree — equivalently
    /// the length of their common prefix. `other` is index-aligned by its
    /// first block; heights outside the comparable overlap (pruned on one
    /// side or beyond either tip) are assumed to agree, so the result
    /// equals the shorter logical length when one is a prefix of the
    /// other.
    pub fn fork_point(&self, other: &[Block]) -> u64 {
        let Some(first) = other.first() else {
            return 0;
        };
        let other_base = first.index;
        let other_top = other_base + other.len() as u64 - 1;
        let lo = self.base.max(other_base);
        let hi = self.height().min(other_top);
        for idx in lo..=hi {
            if self.blocks[(idx - self.base) as usize].hash
                != other[(idx - other_base) as usize].hash
            {
                return idx;
            }
        }
        hi + 1
    }

    /// How many of this chain's blocks a reorg onto `candidate` would
    /// discard: everything above the common prefix. Zero when `candidate`
    /// extends this chain.
    pub fn divergence_depth(&self, candidate: &[Block]) -> u64 {
        self.len() as u64 - self.fork_point(candidate)
    }

    /// Height of the newest checkpoint block under `policy` (0 when the
    /// chain has not reached the first checkpoint yet). Blocks at or below
    /// this height are final: [`Blockchain::try_adopt_checkpointed`] never
    /// reorganises them away.
    pub fn latest_checkpoint(&self, policy: CheckpointPolicy) -> u64 {
        let interval = policy.interval.max(1);
        (self.height() / interval) * interval
    }

    /// Derives token balances from history: each block credits its miner
    /// one token (the paper's mining incentive), on top of the one-token
    /// initial grant. A pruned prefix contributes through the anchor's
    /// mined-block summary, so the result is identical before and after
    /// pruning.
    pub fn derive_ledger(&self) -> Ledger {
        let mut ledger = Ledger::new();
        if let Some(anchor) = &self.anchor {
            for &(acct, n) in &anchor.mined {
                ledger.credit(acct, n);
            }
        }
        for block in self.blocks.iter().filter(|b| b.index > 0) {
            ledger.credit(block.miner, 1);
        }
        ledger
    }

    /// Number of blocks mined by `account`, including pruned ones.
    pub fn blocks_mined_by(&self, account: &AccountId) -> u64 {
        let anchored = self.anchor.as_ref().map_or(0, |a| a.mined_by(account));
        anchored
            + self
                .blocks
                .iter()
                .filter(|b| b.index > 0 && &b.miner == account)
                .count() as u64
    }

    /// Total count of metadata items recorded on-chain, including pruned
    /// blocks.
    pub fn total_metadata_items(&self) -> usize {
        let anchored = self.anchor.as_ref().map_or(0, |a| a.metadata_items) as usize;
        anchored + self.blocks.iter().map(|b| b.metadata.len()).sum::<usize>()
    }

    /// Collapses every block strictly below `cut` into a signed
    /// [`ChainAnchor`], chaining onto any existing anchor. Returns the
    /// number of blocks pruned — 0 when `cut` is not above the current
    /// base or would not leave at least one retained block.
    ///
    /// Derived state ([`Blockchain::derive_ledger`],
    /// [`Blockchain::blocks_mined_by`],
    /// [`Blockchain::total_metadata_items`]) and all height arithmetic
    /// are unchanged by pruning; only [`Blockchain::get`] and the slice
    /// views lose access to the collapsed blocks.
    pub fn prune_below(&mut self, cut: u64, keys: &KeyPair) -> u64 {
        if cut <= self.base || cut > self.height() {
            return 0;
        }
        let pruned: Vec<Block> = self.blocks.drain(..(cut - self.base) as usize).collect();
        let segment_root =
            MerkleTree::from_leaf_hashes(pruned.iter().map(|b| b.hash).collect()).root();
        let prev_commitment = self.anchor.as_ref().map_or(Digest::ZERO, |a| a.commitment);
        let commitment = sha256_pair(prev_commitment.as_bytes(), segment_root.as_bytes());

        let mut mined: BTreeMap<AccountId, u64> = self
            .anchor
            .as_ref()
            .map(|a| a.mined.iter().copied().collect())
            .unwrap_or_default();
        let mut metadata_items = self.anchor.as_ref().map_or(0, |a| a.metadata_items);
        for b in &pruned {
            if b.index > 0 {
                *mined.entry(b.miner).or_insert(0) += 1;
            }
            metadata_items += b.metadata.len() as u64;
        }

        let boundary = pruned.last().expect("cut > base implies non-empty drain");
        let anchor = ChainAnchor::seal(
            cut - 1,
            boundary.hash,
            boundary.pos_hash,
            boundary.timestamp_secs,
            commitment,
            mined.into_iter().collect(),
            metadata_items,
            keys,
        );
        self.anchor_history.push((anchor.height, anchor.commitment));
        self.anchor = Some(anchor);
        self.base = cut;
        pruned.len() as u64
    }

    /// The pruned-prefix commitment this chain recorded for an anchor at
    /// `height`, if it ever sealed or adopted one there. This is the
    /// audit hook for pruned-prefix integrity: two honest nodes that
    /// pruned the same prefix must agree here.
    pub fn commitment_at(&self, height: u64) -> Option<Digest> {
        self.anchor_history
            .iter()
            .find(|(h, _)| *h == height)
            .map(|(_, c)| *c)
    }
}

/// Full verification an honest node applies to a block received from the
/// wire before adopting it onto `prev`: structural linkage
/// ([`Block::validate_against`]), every metadata producer signature, and
/// the Eq. 7 PoS-hash chaining ([`Block::check_pos_link`]). Blocks a node
/// sealed itself skip this — only foreign blocks can lie.
///
/// # Errors
///
/// Returns the first [`BlockError`] found, in the order above.
pub fn verify_wire_block(prev: &Block, block: &Block) -> Result<(), BlockError> {
    block.validate_against(prev)?;
    Blockchain::verify_block_signatures(block)?;
    block.check_pos_link(prev)
}

impl<'a> IntoIterator for &'a Blockchain {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

/// Checkpointing policy for [`Blockchain::try_adopt_checkpointed`]: every
/// block whose height is a multiple of `interval` is a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint spacing in blocks (clamped to ≥ 1).
    pub interval: u64,
}

impl Default for CheckpointPolicy {
    /// One checkpoint every 10 blocks.
    fn default() -> Self {
        CheckpointPolicy { interval: 10 }
    }
}

/// Whole-chain validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// No blocks at all.
    Empty,
    /// First block is not the canonical genesis.
    BadGenesis,
    /// First retained block does not attach to the anchor boundary.
    DetachedAnchor,
    /// A block failed linkage validation.
    Invalid {
        /// Index of the offending block.
        index: u64,
        /// The underlying block error.
        source: BlockError,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Empty => write!(f, "chain has no blocks"),
            ChainError::BadGenesis => write!(f, "chain does not start at genesis"),
            ChainError::DetachedAnchor => {
                write!(f, "chain does not attach to its anchor boundary")
            }
            ChainError::Invalid { index, source } => {
                write!(f, "invalid block {index}: {source}")
            }
        }
    }
}

impl std::error::Error for ChainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChainError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;
    use crate::metadata::{DataId, DataType, Location, MetadataItem};
    use crate::pos::Amendment;
    use edgechain_sim::NodeId;

    fn mined_block(prev: &Block, miner_seed: u64, ts: u64) -> Block {
        Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            crate::pos::next_pos_hash(&prev.pos_hash, &Identity::from_seed(miner_seed).account()),
            Identity::from_seed(miner_seed).account(),
            60,
            Amendment::from_fraction(1, 1000),
            Vec::new(),
            vec![NodeId(0)],
            prev.storing_nodes.clone(),
            Vec::new(),
        )
    }

    fn chain_of(n: u64) -> Blockchain {
        let mut chain = Blockchain::new();
        for i in 0..n {
            let b = mined_block(chain.tip(), i % 3, (i + 1) * 60);
            chain.push(b).unwrap();
        }
        chain
    }

    #[test]
    fn new_chain_has_genesis() {
        let chain = Blockchain::new();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.len(), 1);
        assert!(!chain.is_empty());
        assert_eq!(chain.tip().index, 0);
    }

    #[test]
    fn push_and_get() {
        let chain = chain_of(5);
        assert_eq!(chain.height(), 5);
        assert_eq!(chain.get(3).unwrap().index, 3);
        assert!(chain.get(9).is_none());
    }

    #[test]
    fn fork_point_and_divergence_depth() {
        let trunk = chain_of(5);
        // Branch that shares the first 3 blocks then diverges.
        let mut branch = Blockchain::from_blocks(trunk.as_slice()[..4].to_vec()).unwrap();
        branch
            .push(mined_block(branch.tip(), 7, 1_000))
            .expect("divergent block links");
        assert_eq!(trunk.fork_point(branch.as_slice()), 4);
        assert_eq!(trunk.divergence_depth(branch.as_slice()), 2);
        assert_eq!(branch.divergence_depth(trunk.as_slice()), 1);
        // A strict prefix never diverges.
        let prefix = &trunk.as_slice()[..3];
        assert_eq!(trunk.fork_point(prefix), 3);
        assert_eq!(trunk.divergence_depth(prefix), 3);
        assert_eq!(trunk.divergence_depth(trunk.as_slice()), 0);
    }

    #[test]
    fn push_rejects_bad_link() {
        let mut chain = chain_of(2);
        let orphan = mined_block(chain.get(0).unwrap(), 1, 300);
        assert!(chain.push(orphan).is_err());
        assert_eq!(chain.height(), 2);
    }

    #[test]
    fn push_sealed_matches_push() {
        let mut honest = Blockchain::new();
        let mut sealed = Blockchain::new();
        for i in 0..4 {
            let b = mined_block(honest.tip(), i % 3, (i + 1) * 60);
            honest.push(b.clone()).unwrap();
            sealed.push_sealed(b).unwrap();
        }
        assert_eq!(honest, sealed);

        let orphan = mined_block(sealed.get(0).unwrap(), 1, 600);
        assert_eq!(
            sealed.push_sealed(orphan.clone()),
            honest.push(orphan),
            "linkage errors must be identical on both paths"
        );
        assert_eq!(sealed.height(), 4);
    }

    #[test]
    fn from_blocks_roundtrip() {
        let chain = chain_of(4);
        let rebuilt = Blockchain::from_blocks(chain.as_slice().to_vec()).unwrap();
        assert_eq!(rebuilt, chain);
    }

    #[test]
    fn from_blocks_rejects_tampering() {
        let chain = chain_of(4);
        let mut blocks = chain.as_slice().to_vec();
        blocks[2].timestamp_secs += 1; // breaks its own hash
        assert!(matches!(
            Blockchain::from_blocks(blocks),
            Err(ChainError::Invalid { index: 2, .. })
        ));
    }

    #[test]
    fn from_blocks_rejects_fake_genesis() {
        let chain = chain_of(2);
        let mut blocks = chain.as_slice().to_vec();
        blocks.remove(0);
        assert_eq!(Blockchain::from_blocks(blocks), Err(ChainError::BadGenesis));
        assert_eq!(Blockchain::from_blocks(vec![]), Err(ChainError::Empty));
    }

    #[test]
    fn fork_choice_adopts_longer_only() {
        let mut short = chain_of(2);
        let long = chain_of(5);
        let snapshot = short.clone();
        assert!(!short.try_adopt(&long.as_slice()[..2])); // shorter
        assert!(!short.try_adopt(short.clone().as_slice())); // equal
        assert_eq!(short, snapshot);
        assert!(short.try_adopt(long.as_slice()));
        assert_eq!(short, long);
    }

    #[test]
    fn fork_choice_rejects_longer_but_invalid() {
        let mut chain = chain_of(2);
        let long = chain_of(5);
        let mut tampered = long.as_slice().to_vec();
        tampered[4].delay_secs = 999; // breaks block 4's hash
        assert!(!chain.try_adopt(&tampered));
        assert_eq!(chain.height(), 2);
    }

    /// Extends `base` with `n` extra blocks mined by `seed_offset`-shifted
    /// miners, producing a fork when two calls use different offsets.
    fn extend(base: &Blockchain, n: u64, seed_offset: u64) -> Blockchain {
        let mut chain = base.clone();
        for i in 0..n {
            let ts = chain.tip().timestamp_secs + 60;
            let b = mined_block(chain.tip(), seed_offset + i, ts);
            chain.push(b).unwrap();
        }
        chain
    }

    #[test]
    fn checkpointed_adoption_refuses_deep_reorg() {
        let trunk = chain_of(4);
        // Our chain: trunk + 8 blocks (height 12; checkpoint at 10).
        let ours = extend(&trunk, 8, 100);
        // Attacker: longer fork diverging from the trunk below our
        // checkpoint.
        let attacker = extend(&trunk, 12, 200);
        let policy = CheckpointPolicy { interval: 10 };
        let mut chain = ours.clone();
        assert_eq!(chain.latest_checkpoint(policy), 10);
        assert!(!chain.try_adopt_checkpointed(attacker.as_slice(), policy));
        assert_eq!(chain, ours, "checkpointed chain must not reorg");
        // Plain longest-chain *would* have adopted it (the §V-D hazard).
        let mut plain = ours.clone();
        assert!(plain.try_adopt(attacker.as_slice()));
    }

    #[test]
    fn checkpointed_adoption_allows_shallow_extension() {
        let trunk = chain_of(11); // height 11; checkpoint at 10
                                  // A longer chain that shares everything through the checkpoint.
        let longer = extend(&trunk, 4, 300);
        let mut chain = trunk.clone();
        let policy = CheckpointPolicy { interval: 10 };
        assert!(chain.try_adopt_checkpointed(longer.as_slice(), policy));
        assert_eq!(chain.height(), 15);
    }

    #[test]
    fn checkpointed_adoption_before_first_checkpoint_is_plain() {
        let trunk = chain_of(2);
        let a = extend(&trunk, 3, 400);
        let b = extend(&trunk, 5, 500);
        let mut chain = a.clone();
        let policy = CheckpointPolicy { interval: 10 };
        assert_eq!(chain.latest_checkpoint(policy), 0);
        // No checkpoint reached yet: longest chain wins as usual.
        assert!(chain.try_adopt_checkpointed(b.as_slice(), policy));
        assert_eq!(chain.height(), 7);
    }

    #[test]
    fn ledger_credits_miners() {
        let chain = chain_of(6); // miners cycle over seeds 0,1,2
        let ledger = chain.derive_ledger();
        for seed in 0..3u64 {
            let acct = Identity::from_seed(seed).account();
            // initial 1 + 2 mined each
            assert_eq!(ledger.balance(&acct), 3);
            assert_eq!(chain.blocks_mined_by(&acct), 2);
        }
    }

    #[test]
    fn signature_verification_catches_forged_item() {
        let mut item = MetadataItem::new_signed(
            Identity::from_seed(1).keys(),
            DataId(1),
            DataType::KeyExchange,
            0,
            Location::default(),
            60,
            None,
            100,
        );
        item.data_size = 999; // invalidates signature
        let prev = Block::genesis();
        let block = Block::new(
            1,
            prev.hash,
            60,
            prev.pos_hash,
            Identity::from_seed(1).account(),
            60,
            Amendment::from_fraction(1, 1),
            vec![item],
            vec![],
            vec![],
            vec![],
        );
        assert_eq!(
            Blockchain::verify_block_signatures(&block),
            Err(BlockError::BadMetadataSignature { index: 1, item: 0 })
        );
    }

    #[test]
    fn metadata_counting() {
        let chain = chain_of(3);
        assert_eq!(chain.total_metadata_items(), 0);
    }

    #[test]
    fn iteration_orders_by_index() {
        let chain = chain_of(4);
        let indices: Vec<u64> = (&chain).into_iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }

    fn prune_keys() -> &'static crate::account::Identity {
        use std::sync::OnceLock;
        static ID: OnceLock<Identity> = OnceLock::new();
        ID.get_or_init(|| Identity::from_seed(42))
    }

    #[test]
    fn pruning_preserves_heights_and_derived_state() {
        let mut chain = chain_of(25);
        let ledger_before = chain.derive_ledger();
        let mined_before: Vec<u64> = (0..3)
            .map(|s| chain.blocks_mined_by(&Identity::from_seed(s).account()))
            .collect();
        let items_before = chain.total_metadata_items();

        let pruned = chain.prune_below(10, prune_keys().keys());
        assert_eq!(pruned, 10);
        assert_eq!(chain.base_index(), 10);
        assert_eq!(chain.height(), 25);
        assert_eq!(chain.len(), 26);
        assert_eq!(chain.retained_len(), 16);
        assert!(chain.get(9).is_none());
        assert_eq!(chain.get(10).unwrap().index, 10);
        assert_eq!(chain.tip().index, 25);
        assert_eq!(chain.derive_ledger(), ledger_before);
        let mined_after: Vec<u64> = (0..3)
            .map(|s| chain.blocks_mined_by(&Identity::from_seed(s).account()))
            .collect();
        assert_eq!(mined_after, mined_before);
        assert_eq!(chain.total_metadata_items(), items_before);
        // Pushing past the pruned base still works.
        let next = mined_block(chain.tip(), 1, chain.tip().timestamp_secs + 60);
        chain.push(next).unwrap();
        assert_eq!(chain.height(), 26);
    }

    #[test]
    fn prune_rejects_bad_cuts() {
        let mut chain = chain_of(5);
        assert_eq!(chain.prune_below(0, prune_keys().keys()), 0);
        assert_eq!(
            chain.prune_below(6, prune_keys().keys()),
            0,
            "cannot prune the tip away"
        );
        assert_eq!(chain.prune_below(3, prune_keys().keys()), 3);
        assert_eq!(
            chain.prune_below(2, prune_keys().keys()),
            0,
            "cut below base is a no-op"
        );
    }

    #[test]
    fn anchor_signature_verifies_and_catches_tampering() {
        let mut chain = chain_of(12);
        chain.prune_below(8, prune_keys().keys());
        let anchor = chain.anchor().unwrap().clone();
        assert!(anchor.verify());
        assert_eq!(anchor.height, 7);
        assert_eq!(anchor.tip_hash, chain.get(8).unwrap().prev_hash);

        let mut forged = anchor.clone();
        forged.metadata_items += 1;
        assert!(!forged.verify());
        let mut reassigned = anchor.clone();
        reassigned.signer = Identity::from_seed(7).account();
        assert!(!reassigned.verify());
    }

    #[test]
    fn commitment_chains_across_successive_prunes() {
        let reference = chain_of(20);
        let mut chain = reference.clone();
        chain.prune_below(5, prune_keys().keys());
        let first = chain.anchor().unwrap().commitment;
        chain.prune_below(12, prune_keys().keys());
        let second = chain.anchor().unwrap().commitment;
        assert_ne!(first, second);
        assert_eq!(chain.commitment_at(4), Some(first));
        assert_eq!(chain.commitment_at(11), Some(second));
        assert_eq!(chain.commitment_at(5), None);

        // A node that prunes straight to 12 folds the same hashes in a
        // different segmentation, so commitments are only comparable at
        // matching cut heights — recompute the two-step chain by hand.
        use edgechain_crypto::{sha256_pair, Digest, MerkleTree};
        let seg = |lo: usize, hi: usize| {
            MerkleTree::from_leaf_hashes(
                reference.as_slice()[lo..hi]
                    .iter()
                    .map(|b| b.hash)
                    .collect(),
            )
            .root()
        };
        let c1 = sha256_pair(Digest::ZERO.as_bytes(), seg(0, 5).as_bytes());
        let c2 = sha256_pair(c1.as_bytes(), seg(5, 12).as_bytes());
        assert_eq!(first, c1);
        assert_eq!(second, c2);
    }

    #[test]
    fn from_anchor_rebuilds_a_pruned_chain() {
        let mut chain = chain_of(15);
        chain.prune_below(6, prune_keys().keys());
        let anchor = chain.anchor().unwrap().clone();
        let suffix = chain.as_slice().to_vec();

        let rebuilt = Blockchain::from_anchor(anchor.clone(), suffix.clone()).unwrap();
        assert_eq!(rebuilt.height(), chain.height());
        assert_eq!(rebuilt.base_index(), 6);
        assert_eq!(rebuilt.tip(), chain.tip());
        assert_eq!(rebuilt.commitment_at(5), Some(anchor.commitment));
        assert_eq!(rebuilt.derive_ledger(), chain.derive_ledger());

        // Detached suffixes are refused.
        assert_eq!(
            Blockchain::from_anchor(anchor.clone(), suffix[1..].to_vec()),
            Err(ChainError::DetachedAnchor)
        );
        assert_eq!(
            Blockchain::from_anchor(anchor, Vec::new()),
            Err(ChainError::Empty)
        );
    }

    #[test]
    fn pruned_chain_adopts_suffix_and_full_candidates() {
        let trunk = chain_of(14);
        let longer = extend(&trunk, 4, 600);

        // Suffix candidate: just the blocks above our base.
        let mut pruned = trunk.clone();
        pruned.prune_below(8, prune_keys().keys());
        assert!(pruned.try_adopt(longer.retained_after(10)));
        assert_eq!(pruned.height(), 18);
        assert_eq!(pruned.base_index(), 8);

        // Full candidate from genesis also splices across the base.
        let mut pruned = trunk.clone();
        pruned.prune_below(8, prune_keys().keys());
        assert!(pruned.try_adopt(longer.as_slice()));
        assert_eq!(pruned.height(), 18);
        assert!(pruned.anchor().is_some(), "anchor survives adoption");

        // A bare suffix starting below the base cannot be attached: its
        // predecessor is pruned.
        let mut pruned = trunk.clone();
        pruned.prune_below(8, prune_keys().keys());
        assert!(!pruned.try_adopt(&longer.as_slice()[4..]));
    }

    #[test]
    fn pruned_chain_refuses_divergence_below_base() {
        let trunk = chain_of(6);
        let ours = extend(&trunk, 6, 100);
        // Attacker forks below the eventual prune base and out-mines us.
        let attacker = extend(&trunk, 10, 200);
        let mut pruned = ours.clone();
        pruned.prune_below(9, prune_keys().keys());
        assert!(
            !pruned.try_adopt(attacker.as_slice()),
            "divergence inside the pruned prefix must be refused"
        );
        assert_eq!(pruned.height(), 12);
    }

    #[test]
    fn checkpointed_adoption_is_index_aligned_after_pruning() {
        let trunk = chain_of(11); // checkpoint at 10
        let longer = extend(&trunk, 4, 300);
        let mut chain = trunk.clone();
        chain.prune_below(7, prune_keys().keys());
        let policy = CheckpointPolicy { interval: 10 };
        assert!(chain.try_adopt_checkpointed(longer.retained_after(9), policy));
        assert_eq!(chain.height(), 15);

        // A fork that rewrites the checkpoint block is still refused.
        let early = Blockchain::from_blocks(trunk.as_slice()[..10].to_vec()).unwrap();
        let attacker = extend(&early, 9, 400); // rewrites block 10
        let mut chain = extend(&trunk, 2, 300);
        chain.prune_below(7, prune_keys().keys());
        assert!(!chain.try_adopt_checkpointed(attacker.retained_after(9), policy));
    }

    #[test]
    fn fork_point_aligns_suffix_slices() {
        let trunk = chain_of(10);
        let mut pruned = trunk.clone();
        pruned.prune_below(4, prune_keys().keys());
        // Suffix of the same chain: agreement through the overlap.
        assert_eq!(pruned.fork_point(trunk.retained_after(5)), 11);
        // Divergent suffix.
        let fork = extend(
            &Blockchain::from_blocks(trunk.as_slice()[..8].to_vec()).unwrap(),
            3,
            900,
        );
        assert_eq!(pruned.fork_point(fork.retained_after(6)), 8);
        assert_eq!(pruned.divergence_depth(fork.retained_after(6)), 3);
    }
}
