//! The blockchain container: validation, fork choice, and derived state.
//!
//! Every node keeps (a view of) the chain. Validation checks linkage
//! (index, hash, timestamp), structural integrity (block hash + Merkle
//! root), and optionally every metadata producer signature. Fork choice is
//! the paper's longest-chain rule: a node that receives a strictly longer
//! valid chain adopts it. Token balances are always *derived* from chain
//! history (one token per mined block), so any node can audit any `S_i`.

use crate::account::{AccountId, Ledger};
use crate::block::{Block, BlockError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated chain of blocks starting at genesis.
///
/// # Examples
///
/// ```
/// use edgechain_core::{Blockchain, Block};
///
/// let mut chain = Blockchain::new();
/// assert_eq!(chain.height(), 0);
/// assert_eq!(chain.tip(), &Block::genesis());
/// // Chains rebuilt from raw blocks are re-validated link by link.
/// let same = Blockchain::from_blocks(chain.as_slice().to_vec())?;
/// assert_eq!(same, chain);
/// # Ok::<(), edgechain_core::ChainError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Blockchain {
    blocks: Vec<Block>,
}

impl Default for Blockchain {
    fn default() -> Self {
        Self::new()
    }
}

impl Blockchain {
    /// A chain containing only the genesis block.
    pub fn new() -> Self {
        Blockchain {
            blocks: vec![Block::genesis()],
        }
    }

    /// Reconstructs a chain from blocks, validating linkage.
    ///
    /// # Errors
    ///
    /// Returns [`ChainError`] when the sequence is empty, does not start at
    /// the canonical genesis, or fails linkage validation anywhere.
    pub fn from_blocks(blocks: Vec<Block>) -> Result<Self, ChainError> {
        if blocks.is_empty() {
            return Err(ChainError::Empty);
        }
        if blocks[0] != Block::genesis() {
            return Err(ChainError::BadGenesis);
        }
        for i in 1..blocks.len() {
            blocks[i]
                .validate_against(&blocks[i - 1])
                .map_err(|e| ChainError::Invalid {
                    index: blocks[i].index,
                    source: e,
                })?;
        }
        Ok(Blockchain { blocks })
    }

    /// Number of blocks including genesis.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// A chain is never empty (genesis is always present).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Index of the newest block.
    pub fn height(&self) -> u64 {
        self.blocks.len() as u64 - 1
    }

    /// The newest block.
    pub fn tip(&self) -> &Block {
        self.blocks.last().expect("chain always has genesis")
    }

    /// Block at `index`, if present.
    pub fn get(&self, index: u64) -> Option<&Block> {
        self.blocks.get(index as usize)
    }

    /// Iterates blocks from genesis to tip.
    pub fn iter(&self) -> std::slice::Iter<'_, Block> {
        self.blocks.iter()
    }

    /// All blocks as a slice.
    pub fn as_slice(&self) -> &[Block] {
        &self.blocks
    }

    /// Appends a block after validating linkage against the tip.
    ///
    /// # Errors
    ///
    /// Returns the [`BlockError`] from [`Block::validate_against`].
    pub fn push(&mut self, block: Block) -> Result<(), BlockError> {
        block.validate_against(self.tip())?;
        self.blocks.push(block);
        Ok(())
    }

    /// [`Blockchain::push`] for a block **this process sealed**: linkage
    /// is validated in full, but the structural check reuses the block's
    /// cached Merkle leaf digests ([`Block::validate_sealed_against`])
    /// instead of rehashing every metadata item. Blocks of unknown
    /// provenance (decoded from the wire, fork candidates) must go
    /// through [`Blockchain::push`].
    ///
    /// # Errors
    ///
    /// Returns the [`BlockError`] from [`Block::validate_sealed_against`].
    pub fn push_sealed(&mut self, block: Block) -> Result<(), BlockError> {
        block.validate_sealed_against(self.tip())?;
        self.blocks.push(block);
        Ok(())
    }

    /// Verifies every metadata producer signature in `block`.
    ///
    /// # Errors
    ///
    /// Returns [`BlockError::BadMetadataSignature`] naming the first bad
    /// item.
    pub fn verify_block_signatures(block: &Block) -> Result<(), BlockError> {
        for (i, item) in block.metadata.iter().enumerate() {
            if !item.verify() {
                return Err(BlockError::BadMetadataSignature {
                    index: block.index,
                    item: i,
                });
            }
        }
        Ok(())
    }

    /// Longest-chain fork choice: adopts `candidate` iff it is strictly
    /// longer and fully valid. Returns whether adoption happened.
    ///
    /// (Receiving "a blockchain longer than its previous received
    /// blockchain" is also how a node detects that it missed blocks,
    /// §IV-D.)
    pub fn try_adopt(&mut self, candidate: &[Block]) -> bool {
        if candidate.len() <= self.blocks.len() {
            return false;
        }
        match Self::from_blocks(candidate.to_vec()) {
            Ok(chain) => {
                *self = chain;
                true
            }
            Err(_) => false,
        }
    }

    /// Checkpointed fork choice (paper §V-D): because PoS makes working on
    /// multiple branches cheap, "solutions about inserting checkpoint
    /// block are proposed to force nodes working on the chain that has
    /// checkpoint blocks". A candidate chain is adopted only if it is
    /// strictly longer, fully valid, **and agrees with this chain's
    /// checkpoint blocks** — every block at a height that is a multiple of
    /// `policy.interval` (and within both chains) must be identical, so no
    /// reorganisation can cross a checkpoint.
    pub fn try_adopt_checkpointed(
        &mut self,
        candidate: &[Block],
        policy: CheckpointPolicy,
    ) -> bool {
        if candidate.len() <= self.blocks.len() {
            return false;
        }
        let shared = self.blocks.len().min(candidate.len());
        let interval = policy.interval.max(1) as usize;
        for idx in (interval..shared).step_by(interval) {
            if self.blocks[idx] != candidate[idx] {
                return false;
            }
        }
        self.try_adopt(candidate)
    }

    /// First height at which this chain and `other` disagree — equivalently
    /// the length of their common prefix. Both start from the same genesis,
    /// so the result is at least 1 for any two chains built by this crate;
    /// it equals the shorter length when one is a prefix of the other.
    pub fn fork_point(&self, other: &[Block]) -> u64 {
        let shared = self.blocks.len().min(other.len());
        for (i, theirs) in other.iter().enumerate().take(shared) {
            if self.blocks[i].hash != theirs.hash {
                return i as u64;
            }
        }
        shared as u64
    }

    /// How many of this chain's blocks a reorg onto `candidate` would
    /// discard: everything above the common prefix. Zero when `candidate`
    /// extends this chain.
    pub fn divergence_depth(&self, candidate: &[Block]) -> u64 {
        self.blocks.len() as u64 - self.fork_point(candidate)
    }

    /// Height of the newest checkpoint block under `policy` (0 when the
    /// chain has not reached the first checkpoint yet). Blocks at or below
    /// this height are final: [`Blockchain::try_adopt_checkpointed`] never
    /// reorganises them away.
    pub fn latest_checkpoint(&self, policy: CheckpointPolicy) -> u64 {
        let interval = policy.interval.max(1);
        (self.height() / interval) * interval
    }

    /// Derives token balances from history: each block credits its miner
    /// one token (the paper's mining incentive), on top of the one-token
    /// initial grant.
    pub fn derive_ledger(&self) -> Ledger {
        let mut ledger = Ledger::new();
        for block in self.blocks.iter().skip(1) {
            ledger.credit(block.miner, 1);
        }
        ledger
    }

    /// Number of blocks mined by `account`.
    pub fn blocks_mined_by(&self, account: &AccountId) -> u64 {
        self.blocks
            .iter()
            .skip(1)
            .filter(|b| &b.miner == account)
            .count() as u64
    }

    /// Total count of metadata items recorded on-chain.
    pub fn total_metadata_items(&self) -> usize {
        self.blocks.iter().map(|b| b.metadata.len()).sum()
    }
}

/// Full verification an honest node applies to a block received from the
/// wire before adopting it onto `prev`: structural linkage
/// ([`Block::validate_against`]), every metadata producer signature, and
/// the Eq. 7 PoS-hash chaining ([`Block::check_pos_link`]). Blocks a node
/// sealed itself skip this — only foreign blocks can lie.
///
/// # Errors
///
/// Returns the first [`BlockError`] found, in the order above.
pub fn verify_wire_block(prev: &Block, block: &Block) -> Result<(), BlockError> {
    block.validate_against(prev)?;
    Blockchain::verify_block_signatures(block)?;
    block.check_pos_link(prev)
}

impl<'a> IntoIterator for &'a Blockchain {
    type Item = &'a Block;
    type IntoIter = std::slice::Iter<'a, Block>;
    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

/// Checkpointing policy for [`Blockchain::try_adopt_checkpointed`]: every
/// block whose height is a multiple of `interval` is a checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointPolicy {
    /// Checkpoint spacing in blocks (clamped to ≥ 1).
    pub interval: u64,
}

impl Default for CheckpointPolicy {
    /// One checkpoint every 10 blocks.
    fn default() -> Self {
        CheckpointPolicy { interval: 10 }
    }
}

/// Whole-chain validation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainError {
    /// No blocks at all.
    Empty,
    /// First block is not the canonical genesis.
    BadGenesis,
    /// A block failed linkage validation.
    Invalid {
        /// Index of the offending block.
        index: u64,
        /// The underlying block error.
        source: BlockError,
    },
}

impl fmt::Display for ChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChainError::Empty => write!(f, "chain has no blocks"),
            ChainError::BadGenesis => write!(f, "chain does not start at genesis"),
            ChainError::Invalid { index, source } => {
                write!(f, "invalid block {index}: {source}")
            }
        }
    }
}

impl std::error::Error for ChainError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChainError::Invalid { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;
    use crate::metadata::{DataId, DataType, Location, MetadataItem};
    use crate::pos::Amendment;
    use edgechain_sim::NodeId;

    fn mined_block(prev: &Block, miner_seed: u64, ts: u64) -> Block {
        Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            crate::pos::next_pos_hash(&prev.pos_hash, &Identity::from_seed(miner_seed).account()),
            Identity::from_seed(miner_seed).account(),
            60,
            Amendment::from_fraction(1, 1000),
            Vec::new(),
            vec![NodeId(0)],
            prev.storing_nodes.clone(),
            Vec::new(),
        )
    }

    fn chain_of(n: u64) -> Blockchain {
        let mut chain = Blockchain::new();
        for i in 0..n {
            let b = mined_block(chain.tip(), i % 3, (i + 1) * 60);
            chain.push(b).unwrap();
        }
        chain
    }

    #[test]
    fn new_chain_has_genesis() {
        let chain = Blockchain::new();
        assert_eq!(chain.height(), 0);
        assert_eq!(chain.len(), 1);
        assert!(!chain.is_empty());
        assert_eq!(chain.tip().index, 0);
    }

    #[test]
    fn push_and_get() {
        let chain = chain_of(5);
        assert_eq!(chain.height(), 5);
        assert_eq!(chain.get(3).unwrap().index, 3);
        assert!(chain.get(9).is_none());
    }

    #[test]
    fn fork_point_and_divergence_depth() {
        let trunk = chain_of(5);
        // Branch that shares the first 3 blocks then diverges.
        let mut branch = Blockchain::from_blocks(trunk.as_slice()[..4].to_vec()).unwrap();
        branch
            .push(mined_block(branch.tip(), 7, 1_000))
            .expect("divergent block links");
        assert_eq!(trunk.fork_point(branch.as_slice()), 4);
        assert_eq!(trunk.divergence_depth(branch.as_slice()), 2);
        assert_eq!(branch.divergence_depth(trunk.as_slice()), 1);
        // A strict prefix never diverges.
        let prefix = &trunk.as_slice()[..3];
        assert_eq!(trunk.fork_point(prefix), 3);
        assert_eq!(trunk.divergence_depth(prefix), 3);
        assert_eq!(trunk.divergence_depth(trunk.as_slice()), 0);
    }

    #[test]
    fn push_rejects_bad_link() {
        let mut chain = chain_of(2);
        let orphan = mined_block(chain.get(0).unwrap(), 1, 300);
        assert!(chain.push(orphan).is_err());
        assert_eq!(chain.height(), 2);
    }

    #[test]
    fn push_sealed_matches_push() {
        let mut honest = Blockchain::new();
        let mut sealed = Blockchain::new();
        for i in 0..4 {
            let b = mined_block(honest.tip(), i % 3, (i + 1) * 60);
            honest.push(b.clone()).unwrap();
            sealed.push_sealed(b).unwrap();
        }
        assert_eq!(honest, sealed);

        let orphan = mined_block(sealed.get(0).unwrap(), 1, 600);
        assert_eq!(
            sealed.push_sealed(orphan.clone()),
            honest.push(orphan),
            "linkage errors must be identical on both paths"
        );
        assert_eq!(sealed.height(), 4);
    }

    #[test]
    fn from_blocks_roundtrip() {
        let chain = chain_of(4);
        let rebuilt = Blockchain::from_blocks(chain.as_slice().to_vec()).unwrap();
        assert_eq!(rebuilt, chain);
    }

    #[test]
    fn from_blocks_rejects_tampering() {
        let chain = chain_of(4);
        let mut blocks = chain.as_slice().to_vec();
        blocks[2].timestamp_secs += 1; // breaks its own hash
        assert!(matches!(
            Blockchain::from_blocks(blocks),
            Err(ChainError::Invalid { index: 2, .. })
        ));
    }

    #[test]
    fn from_blocks_rejects_fake_genesis() {
        let chain = chain_of(2);
        let mut blocks = chain.as_slice().to_vec();
        blocks.remove(0);
        assert_eq!(Blockchain::from_blocks(blocks), Err(ChainError::BadGenesis));
        assert_eq!(Blockchain::from_blocks(vec![]), Err(ChainError::Empty));
    }

    #[test]
    fn fork_choice_adopts_longer_only() {
        let mut short = chain_of(2);
        let long = chain_of(5);
        let snapshot = short.clone();
        assert!(!short.try_adopt(&long.as_slice()[..2])); // shorter
        assert!(!short.try_adopt(short.clone().as_slice())); // equal
        assert_eq!(short, snapshot);
        assert!(short.try_adopt(long.as_slice()));
        assert_eq!(short, long);
    }

    #[test]
    fn fork_choice_rejects_longer_but_invalid() {
        let mut chain = chain_of(2);
        let long = chain_of(5);
        let mut tampered = long.as_slice().to_vec();
        tampered[4].delay_secs = 999; // breaks block 4's hash
        assert!(!chain.try_adopt(&tampered));
        assert_eq!(chain.height(), 2);
    }

    /// Extends `base` with `n` extra blocks mined by `seed_offset`-shifted
    /// miners, producing a fork when two calls use different offsets.
    fn extend(base: &Blockchain, n: u64, seed_offset: u64) -> Blockchain {
        let mut chain = base.clone();
        for i in 0..n {
            let ts = chain.tip().timestamp_secs + 60;
            let b = mined_block(chain.tip(), seed_offset + i, ts);
            chain.push(b).unwrap();
        }
        chain
    }

    #[test]
    fn checkpointed_adoption_refuses_deep_reorg() {
        let trunk = chain_of(4);
        // Our chain: trunk + 8 blocks (height 12; checkpoint at 10).
        let ours = extend(&trunk, 8, 100);
        // Attacker: longer fork diverging from the trunk below our
        // checkpoint.
        let attacker = extend(&trunk, 12, 200);
        let policy = CheckpointPolicy { interval: 10 };
        let mut chain = ours.clone();
        assert_eq!(chain.latest_checkpoint(policy), 10);
        assert!(!chain.try_adopt_checkpointed(attacker.as_slice(), policy));
        assert_eq!(chain, ours, "checkpointed chain must not reorg");
        // Plain longest-chain *would* have adopted it (the §V-D hazard).
        let mut plain = ours.clone();
        assert!(plain.try_adopt(attacker.as_slice()));
    }

    #[test]
    fn checkpointed_adoption_allows_shallow_extension() {
        let trunk = chain_of(11); // height 11; checkpoint at 10
                                  // A longer chain that shares everything through the checkpoint.
        let longer = extend(&trunk, 4, 300);
        let mut chain = trunk.clone();
        let policy = CheckpointPolicy { interval: 10 };
        assert!(chain.try_adopt_checkpointed(longer.as_slice(), policy));
        assert_eq!(chain.height(), 15);
    }

    #[test]
    fn checkpointed_adoption_before_first_checkpoint_is_plain() {
        let trunk = chain_of(2);
        let a = extend(&trunk, 3, 400);
        let b = extend(&trunk, 5, 500);
        let mut chain = a.clone();
        let policy = CheckpointPolicy { interval: 10 };
        assert_eq!(chain.latest_checkpoint(policy), 0);
        // No checkpoint reached yet: longest chain wins as usual.
        assert!(chain.try_adopt_checkpointed(b.as_slice(), policy));
        assert_eq!(chain.height(), 7);
    }

    #[test]
    fn ledger_credits_miners() {
        let chain = chain_of(6); // miners cycle over seeds 0,1,2
        let ledger = chain.derive_ledger();
        for seed in 0..3u64 {
            let acct = Identity::from_seed(seed).account();
            // initial 1 + 2 mined each
            assert_eq!(ledger.balance(&acct), 3);
            assert_eq!(chain.blocks_mined_by(&acct), 2);
        }
    }

    #[test]
    fn signature_verification_catches_forged_item() {
        let mut item = MetadataItem::new_signed(
            Identity::from_seed(1).keys(),
            DataId(1),
            DataType::KeyExchange,
            0,
            Location::default(),
            60,
            None,
            100,
        );
        item.data_size = 999; // invalidates signature
        let prev = Block::genesis();
        let block = Block::new(
            1,
            prev.hash,
            60,
            prev.pos_hash,
            Identity::from_seed(1).account(),
            60,
            Amendment::from_fraction(1, 1),
            vec![item],
            vec![],
            vec![],
            vec![],
        );
        assert_eq!(
            Blockchain::verify_block_signatures(&block),
            Err(BlockError::BadMetadataSignature { index: 1, item: 0 })
        );
    }

    #[test]
    fn metadata_counting() {
        let chain = chain_of(3);
        assert_eq!(chain.total_metadata_items(), 0);
    }

    #[test]
    fn iteration_orders_by_index() {
        let chain = chain_of(4);
        let indices: Vec<u64> = (&chain).into_iter().map(|b| b.index).collect();
        assert_eq!(indices, vec![0, 1, 2, 3, 4]);
    }
}
