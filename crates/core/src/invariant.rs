//! Run-time safety invariants checked under fault injection.
//!
//! [`InvariantChecker`] is consulted by [`crate::network::EdgeNetwork`]
//! after every simulation event whenever a fault plan is active. It
//! distinguishes two severities:
//!
//! * **Hard violations** (counted in [`InvariantChecker::violations`]) —
//!   states the protocol must never reach, no matter what the fault plan
//!   does, as long as one honest node survives:
//!   * *durable loss*: a valid data item with **zero** copies on honest
//!     nodes, counting crashed nodes too (a crash makes storage
//!     unavailable but never wipes it, so the only honest-copy count that
//!     can legitimately hit zero is the live one);
//!   * *prefix inconsistency*: a node whose recovered view of the chain
//!     is not a contiguous prefix of the canonical chain, or which claims
//!     blocks the canonical chain never produced.
//! * **Transient degradation** — a valid item with zero *live* honest
//!   copies (every replica holder and the producer currently crashed).
//!   This is survivable: the copies come back when the nodes restart. It
//!   is metered as `under_replicated_item_seconds` and feeds the
//!   availability figure rather than tripping the checker.

use crate::chain::Blockchain;
use crate::metadata::MetadataItem;
use crate::storage::NodeStorage;
use edgechain_sim::{NodeId, SimTime, Topology};

/// Tracks replica-durability and chain-prefix invariants across a run.
///
/// Feed it an [`InvariantView`] of the live network after each event via
/// [`InvariantChecker::observe`]; read the accumulated counters at the end
/// of the run.
#[derive(Debug, Clone)]
pub struct InvariantChecker {
    /// Hard invariant violations observed so far (should stay 0).
    pub violations: u64,
    /// Integral of (valid items with zero live honest copies) over time,
    /// in item-seconds.
    pub under_replicated_item_seconds: f64,
    last_observe: SimTime,
    under_replicated_now: usize,
}

/// A borrowed snapshot of the network state the checker needs.
pub struct InvariantView<'a> {
    /// Current topology (activity flags included).
    pub topo: &'a Topology,
    /// Per-node storage managers (indexed by node id).
    pub storage: &'a [NodeStorage],
    /// Per-node malicious flags.
    pub malicious: &'a [bool],
    /// Valid data items under protection: `(metadata, producer node)`.
    pub items: &'a [(MetadataItem, Option<NodeId>)],
    /// Canonical chain height.
    pub chain_height: u64,
    /// Highest contiguous block index per node.
    pub node_height: &'a [u64],
    /// Highest block index each node has seen at all.
    pub node_max_known: &'a [u64],
    /// Items present in the live registry whose `DataId` was already
    /// expired and swept. Expiry is final: a swept item reappearing means
    /// the lifecycle resurrected finalized state (each one is a hard
    /// violation).
    pub resurrected_items: u64,
    /// Per-node fork state, present only when a Byzantine adversary engine
    /// is live (honest runs never fork, so there is nothing to check).
    pub forks: Option<ForkView<'a>>,
}

/// Per-node chain views checked for fork-safety under Byzantine faults.
pub struct ForkView<'a> {
    /// The canonical (longest adopted) chain.
    pub canonical: &'a Blockchain,
    /// Each node's locally adopted chain, indexed by node id.
    pub node_chains: &'a [Blockchain],
    /// Which nodes are honest (no Byzantine role); only honest views are
    /// held to the fork invariants.
    pub honest: &'a [bool],
    /// Checkpoint spacing in blocks: reorgs never cross a checkpoint, and
    /// honest tips must rejoin the canonical chain within this many
    /// blocks.
    pub checkpoint_interval: u64,
}

impl InvariantChecker {
    /// A fresh checker starting its clock at `start`.
    pub fn new(start: SimTime) -> Self {
        InvariantChecker {
            violations: 0,
            under_replicated_item_seconds: 0.0,
            last_observe: start,
            under_replicated_now: 0,
        }
    }

    /// Closes the elapsed interval against the previous observation and
    /// re-evaluates every invariant on the given snapshot.
    pub fn observe(&mut self, now: SimTime, view: &InvariantView<'_>) {
        let dt = now.saturating_since(self.last_observe).as_secs_f64();
        self.under_replicated_item_seconds += self.under_replicated_now as f64 * dt;
        self.last_observe = now;

        let mut zero_live = 0usize;
        for (item, producer) in view.items {
            let (durable, live) = Self::honest_copies(view, item, *producer);
            if durable == 0 {
                // Crashes never wipe disks, so this can only be a protocol
                // bug (e.g. eviction of the last replica of a valid item).
                self.violations += 1;
            } else if live == 0 {
                zero_live += 1;
            }
        }
        self.under_replicated_now = zero_live;

        // Expired-and-swept data is finalized; the registry re-listing such
        // an id means pruning or a reorg resurrected dead state.
        self.violations += view.resurrected_items;

        for v in 0..view.node_height.len() {
            // A node's contiguous height and everything it has recovered
            // must stay within the canonical chain: heights beyond the tip
            // or "known" blocks nobody mined mean recovery corrupted the
            // node's prefix.
            if view.node_height[v] > view.chain_height
                || view.node_max_known[v] > view.chain_height
                || view.node_height[v] > view.node_max_known[v]
            {
                self.violations += 1;
            }
        }

        if let Some(forks) = &view.forks {
            self.observe_forks(forks);
        }
    }

    /// Fork-safety rules for honest per-node chain views:
    ///
    /// 1. *Checkpoint finality*: no honest node finalizes a block below
    ///    checkpoint depth that conflicts with the canonical chain — every
    ///    honest chain's latest checkpoint block must equal the canonical
    ///    block at that height.
    /// 2. *Bounded divergence*: every honest tip rejoins the canonical
    ///    chain within one checkpoint interval — walking back at most
    ///    `checkpoint_interval` blocks from an honest tip must reach a
    ///    block the canonical chain also contains.
    /// 3. *Pruned-prefix integrity*: a node chain that pruned its prefix
    ///    into a [`crate::chain::ChainAnchor`] must carry the exact Merkle
    ///    commitment the canonical chain recorded at the same cut height,
    ///    and its retained blocks must start right above the anchor.
    ///
    /// Nodes whose entire view sits below the canonical pruned base are
    /// skipped: every block they could be compared on is gone, and the
    /// snapshot-bootstrap path (not fork choice) is responsible for them.
    fn observe_forks(&mut self, forks: &ForkView<'_>) {
        let interval = forks.checkpoint_interval.max(1);
        for (v, chain) in forks.node_chains.iter().enumerate() {
            if !forks.honest[v] {
                continue;
            }
            if let Some(a) = chain.anchor() {
                if forks.canonical.commitment_at(a.height) != Some(a.commitment) {
                    self.violations += 1;
                }
                if chain.base_index() != a.height + 1 {
                    self.violations += 1;
                }
            }
            if chain.height() < forks.canonical.base_index() {
                continue;
            }
            let cp = (chain.height() / interval) * interval;
            match (chain.get(cp), forks.canonical.get(cp)) {
                (Some(ours), Some(canon)) if ours.hash != canon.hash => {
                    self.violations += 1;
                }
                _ => {}
            }
            let tip = chain.height();
            let floor = tip.saturating_sub(interval);
            let rejoined = (floor..=tip).rev().any(|h| {
                matches!(
                    (chain.get(h), forks.canonical.get(h)),
                    (Some(a), Some(b)) if a.hash == b.hash
                )
            });
            if !rejoined {
                self.violations += 1;
            }
        }
    }

    /// Counts `(durable, live)` honest copies of one item. The producer's
    /// origin copy always exists (producers keep their own data), so it
    /// counts even without a [`NodeStorage`] entry.
    fn honest_copies(
        view: &InvariantView<'_>,
        item: &MetadataItem,
        producer: Option<NodeId>,
    ) -> (usize, usize) {
        let mut durable = 0usize;
        let mut live = 0usize;
        let mut count = |v: NodeId, has: bool| {
            if has && !view.malicious[v.0] {
                durable += 1;
                if view.topo.is_active(v) {
                    live += 1;
                }
            }
        };
        for &h in &item.storing_nodes {
            if Some(h) != producer {
                count(h, view.storage[h.0].has_data(item.data_id));
            }
        }
        if let Some(p) = producer {
            // Malicious producers still serve their own data (§III-B.2's
            // denial model only covers third-party storers), so the origin
            // copy counts unconditionally.
            durable += 1;
            if view.topo.is_active(p) {
                live += 1;
            }
        }
        (durable, live)
    }

    /// Number of items with zero live honest copies at the last
    /// observation.
    pub fn under_replicated_now(&self) -> usize {
        self.under_replicated_now
    }
}

/// Convenience: builds the `items` vector for [`InvariantView`] from a
/// registry iterator, keeping only items valid at `now`.
pub fn valid_items<'a, I>(
    registry: I,
    now_secs: u64,
    producer_of: impl Fn(&MetadataItem) -> Option<NodeId>,
) -> Vec<(MetadataItem, Option<NodeId>)>
where
    I: Iterator<Item = &'a (MetadataItem, u64)>,
{
    let mut items: Vec<(MetadataItem, Option<NodeId>)> = registry
        .filter(|(m, _)| m.is_valid_at(now_secs))
        .map(|(m, _)| (m.clone(), producer_of(m)))
        .collect();
    items.sort_by_key(|(m, _)| m.data_id);
    items
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metadata::{DataId, DataType, Location};
    use edgechain_sim::Point;

    fn item(id: u64, storers: Vec<NodeId>) -> MetadataItem {
        let identity = crate::account::Identity::from_seed(42);
        let mut m = MetadataItem::new_signed(
            identity.keys(),
            DataId(id),
            DataType::Sensing("PM2.5".into()),
            0,
            Location {
                label: "t".into(),
                x: 0.0,
                y: 0.0,
            },
            60,
            None,
            1_000,
        );
        m.storing_nodes = storers;
        m
    }

    fn line(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    #[test]
    fn crashed_replicas_degrade_but_do_not_violate() {
        let mut topo = line(3);
        let mut storage = vec![NodeStorage::new(10); 3];
        storage[1].store_data(DataId(0));
        let items = vec![(item(0, vec![NodeId(1)]), None)];
        let malicious = vec![false; 3];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        fn view<'a>(
            topo: &'a Topology,
            storage: &'a [NodeStorage],
            malicious: &'a [bool],
            items: &'a [(MetadataItem, Option<NodeId>)],
        ) -> InvariantView<'a> {
            InvariantView {
                topo,
                storage,
                malicious,
                items,
                chain_height: 0,
                node_height: &[0, 0, 0],
                node_max_known: &[0, 0, 0],
                resurrected_items: 0,
                forks: None,
            }
        }
        checker.observe(SimTime::ZERO, &view(&topo, &storage, &malicious, &items));
        assert_eq!(checker.violations, 0);
        assert_eq!(checker.under_replicated_now(), 0);

        // Crash the only holder: transiently unavailable, not lost.
        topo.set_active(NodeId(1), false);
        checker.observe(
            SimTime::from_secs(10),
            &view(&topo, &storage, &malicious, &items),
        );
        assert_eq!(checker.violations, 0);
        assert_eq!(checker.under_replicated_now(), 1);

        // Ten more seconds of downtime accrue item-seconds.
        checker.observe(
            SimTime::from_secs(20),
            &view(&topo, &storage, &malicious, &items),
        );
        assert!((checker.under_replicated_item_seconds - 10.0).abs() < 1e-9);

        // Restart: availability restored, meter stops.
        topo.set_active(NodeId(1), true);
        checker.observe(
            SimTime::from_secs(25),
            &view(&topo, &storage, &malicious, &items),
        );
        assert_eq!(checker.under_replicated_now(), 0);
        assert_eq!(checker.violations, 0);
    }

    #[test]
    fn wiped_last_copy_is_a_hard_violation() {
        let topo = line(2);
        let storage = vec![NodeStorage::new(10); 2]; // nobody stored it
        let items = vec![(item(0, vec![NodeId(1)]), None)];
        let malicious = vec![false; 2];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(
            SimTime::from_secs(1),
            &InvariantView {
                topo: &topo,
                storage: &storage,
                malicious: &malicious,
                items: &items,
                chain_height: 0,
                node_height: &[0, 0],
                node_max_known: &[0, 0],
                resurrected_items: 0,
                forks: None,
            },
        );
        assert_eq!(checker.violations, 1);
    }

    #[test]
    fn producer_origin_copy_protects_the_item() {
        let topo = line(2);
        let storage = vec![NodeStorage::new(10); 2]; // no replica stored
        let items = vec![(item(0, vec![NodeId(1)]), Some(NodeId(0)))];
        let malicious = vec![false; 2];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(
            SimTime::from_secs(1),
            &InvariantView {
                topo: &topo,
                storage: &storage,
                malicious: &malicious,
                items: &items,
                chain_height: 0,
                node_height: &[0, 0],
                node_max_known: &[0, 0],
                resurrected_items: 0,
                forks: None,
            },
        );
        assert_eq!(checker.violations, 0);
    }

    #[test]
    fn height_beyond_canonical_chain_is_a_violation() {
        let topo = line(2);
        let storage = vec![NodeStorage::new(10); 2];
        let malicious = vec![false; 2];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(
            SimTime::from_secs(1),
            &InvariantView {
                topo: &topo,
                storage: &storage,
                malicious: &malicious,
                items: &[],
                chain_height: 3,
                node_height: &[5, 2],
                node_max_known: &[5, 3],
                resurrected_items: 0,
                forks: None,
            },
        );
        assert_eq!(checker.violations, 1);
    }

    #[test]
    fn resurrected_items_are_hard_violations() {
        let topo = line(2);
        let storage = vec![NodeStorage::new(10); 2];
        let malicious = vec![false; 2];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(
            SimTime::from_secs(1),
            &InvariantView {
                topo: &topo,
                storage: &storage,
                malicious: &malicious,
                items: &[],
                chain_height: 0,
                node_height: &[0, 0],
                node_max_known: &[0, 0],
                resurrected_items: 2,
                forks: None,
            },
        );
        assert_eq!(checker.violations, 2);
    }

    fn mined(prev: &crate::block::Block, seed: u64, ts: u64) -> crate::block::Block {
        let account = crate::account::Identity::from_seed(seed).account();
        crate::block::Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            crate::pos::next_pos_hash(&prev.pos_hash, &account),
            account,
            60,
            crate::pos::Amendment::from_fraction(1, 1000),
            Vec::new(),
            vec![NodeId(0)],
            prev.storing_nodes.clone(),
            Vec::new(),
        )
    }

    #[test]
    fn fork_rules_catch_checkpoint_conflicts_and_unbounded_divergence() {
        let mut canonical = Blockchain::new();
        for i in 0..6u64 {
            let b = mined(canonical.tip(), i % 2, (i + 1) * 60);
            canonical.push(b).unwrap();
        }
        // Node 0: exact copy (fine). Node 1: lagging prefix (fine).
        // Node 2: diverges at height 5 only (within the interval bound).
        let lagging = Blockchain::from_blocks(canonical.as_slice()[..4].to_vec()).unwrap();
        let mut near_fork = Blockchain::from_blocks(canonical.as_slice()[..5].to_vec()).unwrap();
        near_fork.push(mined(near_fork.tip(), 3, 900)).unwrap();
        // Node 3: diverges from genesis — both a checkpoint conflict (its
        // checkpoint block at height 2 disagrees) and unbounded divergence.
        let mut alien = Blockchain::new();
        for i in 0..4u64 {
            let b = mined(alien.tip(), 9, (i + 1) * 60 + 7);
            alien.push(b).unwrap();
        }
        let chains = vec![canonical.clone(), lagging, near_fork, alien];
        let topo = line(4);
        let storage = vec![NodeStorage::new(10); 4];
        let malicious = vec![false; 4];
        let view = |honest: &'static [bool]| InvariantView {
            topo: &topo,
            storage: &storage,
            malicious: &malicious,
            items: &[],
            chain_height: 6,
            node_height: &[6, 3, 4, 0],
            node_max_known: &[6, 3, 5, 0],
            resurrected_items: 0,
            forks: Some(ForkView {
                canonical: &canonical,
                node_chains: &chains,
                honest,
                checkpoint_interval: 2,
            }),
        };
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(SimTime::from_secs(1), &view(&[true, true, true, false]));
        assert_eq!(checker.violations, 0, "bounded forks by honest nodes pass");
        let mut strict = InvariantChecker::new(SimTime::ZERO);
        strict.observe(SimTime::from_secs(1), &view(&[true, true, true, true]));
        assert_eq!(
            strict.violations, 2,
            "an honest node on an alien fork trips both fork rules"
        );
    }

    #[test]
    fn pruned_prefix_rules_check_anchors_and_skip_deep_laggards() {
        let identity = crate::account::Identity::from_seed(42);
        let mut canonical = Blockchain::new();
        for i in 0..8u64 {
            let b = mined(canonical.tip(), i % 2, (i + 1) * 60);
            canonical.push(b).unwrap();
        }
        let full = canonical.clone();
        canonical.prune_below(5, identity.keys());
        let anchor = canonical.anchor().unwrap().clone();

        // Node 0 pruned in lockstep (shares the canonical anchor): clean.
        // Node 1 is a deep laggard entirely below the pruned base: the
        // fork rules cannot compare it against pruned blocks, so it is
        // skipped rather than flagged — snapshot bootstrap owns it.
        // Node 2 carries an anchor whose Merkle commitment disagrees with
        // the canonical history at the same cut: one hard violation.
        let pruned =
            Blockchain::from_anchor(anchor.clone(), canonical.as_slice().to_vec()).unwrap();
        let laggard = Blockchain::from_blocks(full.as_slice()[..3].to_vec()).unwrap();
        let mut forged_anchor = anchor;
        forged_anchor.commitment = edgechain_crypto::sha256(b"not the pruned history");
        let forged = Blockchain::from_anchor(forged_anchor, canonical.as_slice().to_vec()).unwrap();

        let chains = vec![pruned, laggard, forged];
        let topo = line(3);
        let storage = vec![NodeStorage::new(10); 3];
        let malicious = vec![false; 3];
        let mut checker = InvariantChecker::new(SimTime::ZERO);
        checker.observe(
            SimTime::from_secs(1),
            &InvariantView {
                topo: &topo,
                storage: &storage,
                malicious: &malicious,
                items: &[],
                chain_height: 8,
                node_height: &[8, 2, 8],
                node_max_known: &[8, 2, 8],
                resurrected_items: 0,
                forks: Some(ForkView {
                    canonical: &canonical,
                    node_chains: &chains,
                    honest: &[true, true, true],
                    checkpoint_interval: 2,
                }),
            },
        );
        assert_eq!(
            checker.violations, 1,
            "only the forged anchor commitment trips the checker"
        );
    }
}
