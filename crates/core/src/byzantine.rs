//! Byzantine adversary engine: per-node chain views, misbehavior
//! bookkeeping, detection proofs, and quarantine state.
//!
//! The paper's threat model (§III-B.2) includes nodes that misbehave in
//! consensus, not just ones that deny storage service. This module holds
//! the state the network layer needs to make that real: each node tracks
//! its *own* adopted chain (so conflicting tips can actually exist),
//! foreign blocks are verified in full before adoption
//! ([`crate::chain::verify_wire_block`]), divergent views reconcile
//! through live [`Blockchain::try_adopt_checkpointed`] fork choice, and
//! proofs of misbehavior — equivocation (two valid headers, same height
//! and miner), forged PoS claims, tampered signatures, undecodable
//! payloads, repeated denials — feed a per-node quarantine with stake
//! slashing (Eq. 7's `S_i`) and eventual re-admission.
//!
//! Everything here is deterministic: the engine's RNG is a dedicated
//! stream seeded from the run seed, artifacts are counted by identity
//! (an equivocation pair is *one* injected artifact however many nodes
//! observe it), and no wall clock is consulted — reruns are bit-identical.

use crate::account::AccountId;
use crate::block::{Block, BlockError};
use crate::chain::{verify_wire_block, Blockchain, ChainAnchor, CheckpointPolicy};
use edgechain_sim::{ByzantineAction, NodeId, SimTime};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, VecDeque};

/// A private fork a withholding miner has sealed but not yet released.
#[derive(Debug, Clone)]
pub struct WithheldFork {
    /// The withholding miner.
    pub miner: NodeId,
    /// Canonical height the fork diverges after (the fork's first block
    /// sits at `base_height + 1`).
    pub base_height: u64,
    /// The withheld blocks, in order.
    pub blocks: Vec<Block>,
    /// Artifact id counted under `byz.injected`.
    pub artifact: u64,
}

/// What happened when a node processed a block received from the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ByzantineOutcome {
    /// The block verified and extended the node's chain.
    Extended,
    /// The block is at or below the node's tip and consistent (or from a
    /// different miner); nothing to do.
    Stale,
    /// The block skips ahead of the node's tip; the node must reconcile
    /// with the canonical chain ([`ByzantineEngine::sync`]).
    NeedsSync,
    /// Verification failed — the block is invalid and was dropped.
    Rejected(BlockError),
    /// The block conflicts with one the node already holds at the same
    /// height from the same miner: an equivocation proof.
    Equivocation {
        /// Height of the conflicting pair.
        height: u64,
        /// The equivocating miner.
        miner: AccountId,
    },
}

/// Verdict on a stashed orphan block once its node has synced far enough
/// to judge it (see [`ByzantineEngine::resolve_orphans`]).
#[derive(Debug, Clone, PartialEq)]
pub enum OrphanVerdict {
    /// The orphan was a Byzantine wire artifact (forged PoS claim or
    /// tampered signatures) now disproven by the adopted honest block at
    /// its height.
    Forged {
        /// Artifact id counted under `byz.injected`.
        artifact: u64,
        /// Trace kind the artifact was injected under.
        kind: &'static str,
        /// The claimed miner, to be quarantined.
        miner: AccountId,
    },
    /// The orphan conflicts with the adopted block at the same height
    /// from the same miner: a two-headers equivocation proof.
    Equivocation {
        /// Height of the conflicting pair.
        height: u64,
        /// The equivocating miner.
        miner: AccountId,
    },
}

/// A stashed orphan block plus its injected-artifact tag (`(artifact id,
/// trace kind)`) when the sender was Byzantine; `None` for honest or
/// equivocation-variant traffic.
type StashedOrphan = (Block, Option<(u64, &'static str)>);

/// Result of reconciling one node's chain with the canonical chain.
#[derive(Debug, Clone, Default)]
pub struct SyncResult {
    /// Number of blocks the node discarded, when fork choice adopted the
    /// canonical branch over a divergent local one.
    pub reorg_depth: Option<u64>,
    /// Equivocation proofs surfaced by the reorg: replaced local blocks
    /// whose canonical counterpart has the same miner but a different
    /// hash.
    pub equivocations: Vec<(u64, AccountId)>,
}

/// Deterministic Byzantine adversary state for one run. Allocated only
/// when the fault plan schedules Byzantine actions, so honest runs carry
/// no per-node chains and stay bit-identical to earlier releases.
#[derive(Debug, Clone)]
pub struct ByzantineEngine {
    /// Each node's locally adopted chain, indexed by node id.
    pub chains: Vec<Blockchain>,
    /// Whether each node holds any Byzantine role in the plan.
    pub byz_role: Vec<bool>,
    /// Armed mining-triggered actions per node, consumed FIFO at the
    /// node's next election win.
    pending: Vec<VecDeque<ByzantineAction>>,
    /// Per-node quarantine expiry (None = not quarantined).
    quarantined_until: Vec<Option<SimTime>>,
    /// Per-node denial strikes toward the quarantine threshold.
    strikes: Vec<u32>,
    /// Cumulative tokens slashed per node, re-applied after ledger
    /// re-derivation on trunk reorgs.
    slashed: Vec<u64>,
    /// Canonical height at which each node is sitting out elections (a
    /// failed Byzantine round must not deterministically re-elect its
    /// author at the same height forever).
    sit_out: Vec<Option<u64>>,
    /// The single private fork in flight, if any.
    pub withheld: Option<WithheldFork>,
    /// Per-node orphan pool: wire blocks ahead of the node's tip, kept
    /// until the node syncs far enough to judge them (bounded FIFO).
    orphans: Vec<VecDeque<StashedOrphan>>,
    /// Artifact ids of known equivocations, keyed by `(height, miner)`.
    equivocation_artifacts: HashMap<(u64, AccountId), u64>,
    detected_artifacts: Vec<bool>,
    injected: u64,
    detected: u64,
    reorgs: u64,
    max_reorg_depth: u64,
    quarantine_events: u64,
    readmissions: u64,
    rng: StdRng,
    policy: CheckpointPolicy,
    quarantine_secs: u64,
    denial_threshold: u32,
}

impl ByzantineEngine {
    /// Builds the engine for a network of `nodes` nodes. `byz_nodes` are
    /// the nodes the plan names in any Byzantine action; `seed` feeds the
    /// engine's dedicated RNG stream (forged hashes, garbage bytes).
    pub fn new(
        nodes: usize,
        byz_nodes: &[NodeId],
        seed: u64,
        policy: CheckpointPolicy,
        quarantine_secs: u64,
        denial_threshold: u32,
    ) -> Self {
        let mut byz_role = vec![false; nodes];
        for v in byz_nodes {
            byz_role[v.0] = true;
        }
        ByzantineEngine {
            chains: vec![Blockchain::new(); nodes],
            byz_role,
            pending: vec![VecDeque::new(); nodes],
            quarantined_until: vec![None; nodes],
            strikes: vec![0; nodes],
            slashed: vec![0; nodes],
            sit_out: vec![None; nodes],
            withheld: None,
            orphans: vec![VecDeque::new(); nodes],
            equivocation_artifacts: HashMap::new(),
            detected_artifacts: Vec::new(),
            injected: 0,
            detected: 0,
            reorgs: 0,
            max_reorg_depth: 0,
            quarantine_events: 0,
            readmissions: 0,
            rng: StdRng::seed_from_u64(seed),
            policy,
            quarantine_secs,
            denial_threshold,
        }
    }

    /// The checkpoint policy governing every fork-choice decision.
    pub fn policy(&self) -> CheckpointPolicy {
        self.policy
    }

    // ---- roles & arming -------------------------------------------------

    /// Arms a mining-triggered action for `node` (consumed at its next
    /// election win).
    pub fn arm(&mut self, node: NodeId, action: ByzantineAction) {
        self.pending[node.0].push_back(action);
    }

    /// Pops the next armed action for a freshly elected miner.
    /// [`ByzantineAction::TamperSignature`] stays armed until the round
    /// actually packs metadata (there is no signature to corrupt in an
    /// empty block).
    pub fn next_mining_action(
        &mut self,
        node: NodeId,
        has_pending_metadata: bool,
    ) -> Option<ByzantineAction> {
        match self.pending[node.0].front() {
            Some(ByzantineAction::TamperSignature) if !has_pending_metadata => None,
            Some(_) => self.pending[node.0].pop_front(),
            None => None,
        }
    }

    // ---- artifact accounting -------------------------------------------

    /// Registers one injected Byzantine artifact and returns its id.
    pub fn note_injected(&mut self) -> u64 {
        let id = self.detected_artifacts.len() as u64;
        self.detected_artifacts.push(false);
        self.injected += 1;
        id
    }

    /// Marks an artifact detected; returns `true` the first time.
    pub fn note_detected(&mut self, artifact: u64) -> bool {
        let slot = &mut self.detected_artifacts[artifact as usize];
        if *slot {
            false
        } else {
            *slot = true;
            self.detected += 1;
            true
        }
    }

    /// Registers (or retrieves) the artifact id of an equivocation pair.
    pub fn register_equivocation(&mut self, height: u64, miner: AccountId) -> u64 {
        if let Some(&id) = self.equivocation_artifacts.get(&(height, miner)) {
            return id;
        }
        let id = self.note_injected();
        self.equivocation_artifacts.insert((height, miner), id);
        id
    }

    /// Looks up the artifact id of a proven equivocation, if the pair was
    /// an injected one.
    pub fn lookup_equivocation(&self, height: u64, miner: AccountId) -> Option<u64> {
        self.equivocation_artifacts.get(&(height, miner)).copied()
    }

    /// Total injected artifacts so far.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Total artifacts detected by at least one honest node.
    pub fn detected(&self) -> u64 {
        self.detected
    }

    // ---- quarantine ----------------------------------------------------

    /// Quarantines `node` until `now + quarantine_secs`. Returns `true`
    /// when this is a new quarantine (not an extension of an active one).
    pub fn quarantine(&mut self, node: NodeId, now: SimTime) -> bool {
        let fresh = !self.is_quarantined(node, now);
        if fresh {
            self.quarantine_events += 1;
        }
        self.quarantined_until[node.0] = Some(now + SimTime::from_secs(self.quarantine_secs));
        fresh
    }

    /// Whether `node` is quarantined at `now`.
    pub fn is_quarantined(&self, node: NodeId, now: SimTime) -> bool {
        matches!(self.quarantined_until[node.0], Some(until) if until > now)
    }

    /// Clears expired quarantines, counting re-admissions. Returns the
    /// nodes re-admitted at this sweep (ascending id order).
    pub fn readmit_due(&mut self, now: SimTime) -> Vec<NodeId> {
        let mut readmitted = Vec::new();
        for (i, slot) in self.quarantined_until.iter_mut().enumerate() {
            if matches!(slot, Some(until) if *until <= now) {
                *slot = None;
                readmitted.push(NodeId(i));
            }
        }
        self.readmissions += readmitted.len() as u64;
        readmitted
    }

    /// Nodes currently quarantined at `now`.
    pub fn active_quarantines(&self, now: SimTime) -> usize {
        (0..self.quarantined_until.len())
            .filter(|&v| self.is_quarantined(NodeId(v), now))
            .count()
    }

    /// Records a denial strike against a storer; returns `true` when the
    /// strike crosses the quarantine threshold.
    pub fn strike(&mut self, node: NodeId) -> bool {
        self.strikes[node.0] += 1;
        self.strikes[node.0] == self.denial_threshold
    }

    /// Records `amount` tokens slashed from `node` (re-applied after
    /// ledger re-derivation on trunk reorgs).
    pub fn record_slash(&mut self, node: NodeId, amount: u64) {
        self.slashed[node.0] += amount;
    }

    /// Cumulative slash per node, indexed by node id.
    pub fn slashes(&self) -> &[u64] {
        &self.slashed
    }

    // ---- election gating -----------------------------------------------

    /// Whether `node` must be excluded from the election at the given
    /// canonical height (quarantined, or sitting out after a failed
    /// Byzantine round at this height).
    pub fn is_excluded(&self, node: NodeId, now: SimTime, canonical_height: u64) -> bool {
        self.is_quarantined(node, now) || self.sit_out[node.0] == Some(canonical_height)
    }

    /// Benches `node` from elections while the canonical chain stays at
    /// `height` (progress guarantee: a failed Byzantine round must hand
    /// the election to the runner-up instead of re-electing its author in
    /// an infinite loop at one instant).
    pub fn bench(&mut self, node: NodeId, height: u64) {
        self.sit_out[node.0] = Some(height);
    }

    /// Lifts a bench early (e.g. when the private fork resolves).
    pub fn unbench(&mut self, node: NodeId) {
        self.sit_out[node.0] = None;
    }

    // ---- reorg accounting ----------------------------------------------

    /// Counts one reorg of `depth` discarded blocks.
    pub fn record_reorg(&mut self, depth: u64) {
        self.reorgs += 1;
        self.max_reorg_depth = self.max_reorg_depth.max(depth);
    }

    /// Total reorgs (per-node adoptions and trunk reorgs).
    pub fn reorgs(&self) -> u64 {
        self.reorgs
    }

    /// Deepest reorg seen, in discarded blocks.
    pub fn max_reorg_depth(&self) -> u64 {
        self.max_reorg_depth
    }

    /// Quarantine events so far.
    pub fn quarantine_events(&self) -> u64 {
        self.quarantine_events
    }

    /// Re-admissions so far.
    pub fn readmissions(&self) -> u64 {
        self.readmissions
    }

    // ---- adversarial material ------------------------------------------

    /// A fresh digest from the engine's dedicated RNG stream (forged PoS
    /// claims).
    pub fn next_digest(&mut self) -> edgechain_crypto::Digest {
        let mut raw = [0u8; 32];
        self.rng.fill(&mut raw);
        edgechain_crypto::Digest(raw)
    }

    /// `n` deterministic garbage bytes from the engine's RNG stream.
    pub fn garbage_bytes(&mut self, n: usize) -> Vec<u8> {
        let mut out = vec![0u8; n];
        self.rng.fill(&mut out[..]);
        out
    }

    /// A draw from the engine's RNG in `[0, bound)` (payload-shape
    /// choices).
    pub fn draw(&mut self, bound: u64) -> u64 {
        self.rng.gen_range(0..bound)
    }

    // ---- per-node chain views ------------------------------------------

    /// Processes a wire-received block against node `v`'s chain view:
    /// verifies in full when it extends the tip, flags conflicting
    /// same-height/same-miner headers as equivocation proofs, and asks for
    /// a sync when the block skips ahead.
    pub fn deliver(&mut self, v: NodeId, block: &Block) -> ByzantineOutcome {
        let chain = &mut self.chains[v.0];
        let tip_index = chain.tip().index;
        if block.index == tip_index + 1 {
            match verify_wire_block(chain.tip(), block) {
                Ok(()) => {
                    chain
                        .push(block.clone())
                        .expect("verified block must push cleanly");
                    ByzantineOutcome::Extended
                }
                Err(e) => ByzantineOutcome::Rejected(e),
            }
        } else if block.index <= tip_index {
            match chain.get(block.index) {
                Some(ours)
                    if ours.hash != block.hash
                        && ours.miner == block.miner
                        && block.is_well_formed() =>
                {
                    ByzantineOutcome::Equivocation {
                        height: block.index,
                        miner: block.miner,
                    }
                }
                _ => ByzantineOutcome::Stale,
            }
        } else {
            ByzantineOutcome::NeedsSync
        }
    }

    /// Stashes a wire block that skipped ahead of node `v`'s tip. A
    /// lagging node cannot verify such a block yet (its parent is
    /// unknown), so it is kept — with the injected-artifact tag when the
    /// sender was Byzantine — until a later [`Self::sync`] lands the
    /// honest block at that height and [`Self::resolve_orphans`] can
    /// judge it. The pool is a small FIFO; honest traffic cycles through
    /// it without growing it.
    pub fn stash_orphan(&mut self, v: NodeId, block: Block, artifact: Option<(u64, &'static str)>) {
        let pool = &mut self.orphans[v.0];
        if pool.iter().any(|(b, _)| b.hash == block.hash) {
            return;
        }
        pool.push_back((block, artifact));
        while pool.len() > 8 {
            // Evict an untagged (honest-looking) orphan first: tagged
            // ones are the proofs-in-waiting and there are at most a
            // handful per run.
            match pool.iter().position(|(_, a)| a.is_none()) {
                Some(i) => {
                    pool.remove(i);
                }
                None => {
                    pool.pop_front();
                }
            }
        }
    }

    /// Total stashed orphan blocks across every node's pool. Each pool is
    /// already bounded (8 entries, honest-looking evicted first); this
    /// accessor feeds the run report's peak tracking-state accounting.
    pub fn orphan_entries(&self) -> usize {
        self.orphans.iter().map(VecDeque::len).sum()
    }

    /// Judges node `v`'s stashed orphans against its (freshly synced)
    /// chain: an orphan matching the adopted block at its height was
    /// honest and is dropped; a mismatching one is proof — of forgery or
    /// tampering when it carries an artifact tag, of equivocation when
    /// the adopted block has the same miner. A mismatching untagged
    /// orphan from a *different* miner is a block displaced by a trunk
    /// reorg: honest, dropped. Orphans still ahead of the tip stay
    /// stashed.
    pub fn resolve_orphans(&mut self, v: NodeId) -> Vec<OrphanVerdict> {
        let height = self.chains[v.0].height();
        let mut verdicts = Vec::new();
        let pool = std::mem::take(&mut self.orphans[v.0]);
        for (block, artifact) in pool {
            if block.index > height {
                self.orphans[v.0].push_back((block, artifact));
                continue;
            }
            let Some(ours) = self.chains[v.0].get(block.index) else {
                // Below the node's pruned base: the adopted block at that
                // height is gone, so the orphan can never be judged. Drop
                // it rather than keep it stashed forever.
                continue;
            };
            if ours.hash == block.hash {
                continue;
            }
            match artifact {
                Some((artifact, kind)) => verdicts.push(OrphanVerdict::Forged {
                    artifact,
                    kind,
                    miner: block.miner,
                }),
                None if ours.miner == block.miner => {
                    verdicts.push(OrphanVerdict::Equivocation {
                        height: block.index,
                        miner: block.miner,
                    });
                }
                None => {}
            }
        }
        verdicts
    }

    /// Reconciles node `v`'s chain with the canonical chain up to block
    /// `target` (the node's contiguous recovered height): extends with
    /// canonical blocks while the linkage holds, and on divergence runs
    /// checkpointed fork choice over the canonical prefix, surfacing any
    /// equivocation proofs among the replaced blocks.
    pub fn sync(&mut self, v: NodeId, canonical: &Blockchain, target: u64) -> SyncResult {
        let mut result = SyncResult::default();
        let target = target.min(canonical.height());
        let chain = &mut self.chains[v.0];
        if chain.height() + 1 < canonical.base_index() {
            // The node is so far behind that the next block it needs has
            // been pruned from the canonical chain. Block-by-block sync is
            // impossible; the caller must bootstrap from a snapshot
            // ([`Self::bootstrap_from_snapshot`]).
            return result;
        }
        while chain.height() < target {
            let next = canonical
                .get(chain.height() + 1)
                .expect("target within canonical chain");
            if next.prev_hash == chain.tip().hash {
                chain
                    .push(next.clone())
                    .expect("canonical block must extend a canonical prefix");
            } else {
                break;
            }
        }
        if chain.height() >= target || chain.fork_point(canonical.as_slice()) > chain.height() {
            return result;
        }
        // Divergence: the node sits on a fork. Adopt the canonical prefix
        // up to `target` under checkpoint rules. `retained_up_to` aligns
        // with the canonical pruned base; `try_adopt` attaches the slice
        // by block index, so a suffix candidate splices correctly.
        let candidate = canonical.retained_up_to(target);
        let fork_point = chain.fork_point(candidate);
        for h in fork_point..=chain.height() {
            let (ours, canon) = (chain.get(h), canonical.get(h));
            if let (Some(a), Some(b)) = (ours, canon) {
                if a.miner == b.miner && a.hash != b.hash {
                    result.equivocations.push((h, a.miner));
                }
            }
        }
        let depth = chain.divergence_depth(candidate);
        if chain.try_adopt_checkpointed(candidate, self.policy) {
            result.reorg_depth = Some(depth);
            self.record_reorg(depth);
        }
        result
    }

    // ---- chain lifecycle ------------------------------------------------

    /// Mirrors a canonical prune into the per-node chain views.
    ///
    /// A node chain whose block at the anchor boundary matches the
    /// canonical one shares the entire pruned prefix (the hash chain
    /// guarantees it), so it re-bases onto the same signed anchor. Chains
    /// lagging behind the boundary, or sitting on a fork there, are left
    /// intact — they reconcile later through [`Self::sync`] or a snapshot
    /// bootstrap. Orphans below the new base are unjudgeable (the adopted
    /// blocks at their heights are gone everywhere) and are dropped; the
    /// caller should collect pending [`Self::resolve_orphans`] verdicts
    /// first.
    pub fn prune_below(&mut self, anchor: &ChainAnchor) {
        let cut = anchor.height + 1;
        for chain in &mut self.chains {
            if chain.base_index() >= cut || chain.height() < cut {
                continue;
            }
            if chain.get(anchor.height).map(|b| b.hash) != Some(anchor.tip_hash) {
                continue;
            }
            let suffix = chain.retained_after(anchor.height).to_vec();
            *chain = Blockchain::from_anchor(anchor.clone(), suffix)
                .expect("retained suffix attaches to its own boundary block");
        }
        for pool in &mut self.orphans {
            pool.retain(|(b, _)| b.index >= cut);
        }
    }

    /// Replaces node `v`'s chain view with one rebuilt from a verified
    /// snapshot (a deep rejoin past the canonical pruned base). Stashed
    /// orphans below the snapshot base can no longer be judged and are
    /// dropped; ones ahead of it stay for the next resolution pass.
    pub fn bootstrap_from_snapshot(&mut self, v: NodeId, chain: Blockchain) {
        let base = chain.base_index();
        self.orphans[v.0].retain(|(b, _)| b.index >= base);
        self.chains[v.0] = chain;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;
    use crate::pos::{next_pos_hash, Amendment};

    fn mined(prev: &Block, seed: u64, ts: u64) -> Block {
        let account = Identity::from_seed(seed).account();
        Block::new(
            prev.index + 1,
            prev.hash,
            ts,
            next_pos_hash(&prev.pos_hash, &account),
            account,
            60,
            Amendment::from_fraction(1, 1000),
            Vec::new(),
            vec![NodeId(0)],
            prev.storing_nodes.clone(),
            Vec::new(),
        )
    }

    fn engine(nodes: usize) -> ByzantineEngine {
        ByzantineEngine::new(
            nodes,
            &[NodeId(0)],
            7,
            CheckpointPolicy { interval: 4 },
            600,
            3,
        )
    }

    #[test]
    fn deliver_extends_rejects_and_proves_equivocation() {
        let mut eng = engine(2);
        let genesis = Block::genesis();
        let good = mined(&genesis, 1, 60);
        assert_eq!(eng.deliver(NodeId(1), &good), ByzantineOutcome::Extended);
        assert_eq!(eng.chains[1].height(), 1);

        // A forged PoS claim is rejected at the wire.
        let mut forged = mined(&good, 2, 120);
        forged.pos_hash = edgechain_crypto::sha256(b"never earned");
        let forged = Block::new(
            forged.index,
            forged.prev_hash,
            forged.timestamp_secs,
            forged.pos_hash,
            forged.miner,
            forged.delay_secs,
            forged.amendment,
            vec![],
            vec![],
            vec![],
            vec![],
        );
        assert!(matches!(
            eng.deliver(NodeId(1), &forged),
            ByzantineOutcome::Rejected(BlockError::BadPosClaim { .. })
        ));

        // Same height, same miner, different hash: equivocation proof.
        let variant = {
            let account = Identity::from_seed(1).account();
            Block::new(
                1,
                genesis.hash,
                61,
                next_pos_hash(&genesis.pos_hash, &account),
                account,
                60,
                Amendment::from_fraction(1, 1000),
                Vec::new(),
                Vec::new(),
                genesis.storing_nodes.clone(),
                Vec::new(),
            )
        };
        assert_eq!(
            eng.deliver(NodeId(1), &variant),
            ByzantineOutcome::Equivocation {
                height: 1,
                miner: Identity::from_seed(1).account()
            }
        );

        // A block far ahead asks for a sync.
        let mut canonical = Blockchain::new();
        for i in 0..4 {
            let b = mined(canonical.tip(), 1, (i + 1) * 60);
            canonical.push(b).unwrap();
        }
        assert_eq!(
            eng.deliver(NodeId(1), canonical.get(4).unwrap()),
            ByzantineOutcome::NeedsSync
        );
    }

    #[test]
    fn sync_reorgs_a_divergent_view_and_surfaces_equivocations() {
        let mut eng = engine(2);
        let mut canonical = Blockchain::new();
        for i in 0..3 {
            let b = mined(canonical.tip(), 1, (i + 1) * 60);
            canonical.push(b).unwrap();
        }
        // Node 1 adopted an equivocating variant at height 1 (same miner).
        let variant = {
            let account = Identity::from_seed(1).account();
            Block::new(
                1,
                Block::genesis().hash,
                61,
                next_pos_hash(&Block::genesis().pos_hash, &account),
                account,
                60,
                Amendment::from_fraction(1, 1000),
                Vec::new(),
                Vec::new(),
                Block::genesis().storing_nodes.clone(),
                Vec::new(),
            )
        };
        assert_eq!(eng.deliver(NodeId(1), &variant), ByzantineOutcome::Extended);
        let result = eng.sync(NodeId(1), &canonical, 3);
        assert_eq!(result.reorg_depth, Some(1));
        assert_eq!(
            result.equivocations,
            vec![(1, Identity::from_seed(1).account())]
        );
        assert_eq!(eng.chains[1], canonical);
        assert_eq!(eng.reorgs(), 1);
        assert_eq!(eng.max_reorg_depth(), 1);

        // A lagging prefix syncs without a reorg.
        let r2 = eng.sync(NodeId(0), &canonical, 2);
        assert_eq!(r2.reorg_depth, None);
        assert!(r2.equivocations.is_empty());
        assert_eq!(eng.chains[0].height(), 2);
    }

    #[test]
    fn quarantine_strikes_and_readmission() {
        let mut eng = engine(3);
        let now = SimTime::from_secs(100);
        assert!(!eng.strike(NodeId(2)));
        assert!(!eng.strike(NodeId(2)));
        assert!(eng.strike(NodeId(2)), "third strike crosses the threshold");
        assert!(eng.quarantine(NodeId(2), now));
        assert!(!eng.quarantine(NodeId(2), now), "already quarantined");
        assert!(eng.is_quarantined(NodeId(2), now));
        assert!(eng.is_excluded(NodeId(2), now, 0));
        assert_eq!(eng.active_quarantines(now), 1);
        assert_eq!(eng.quarantine_events(), 1);
        let later = now + SimTime::from_secs(600);
        assert!(!eng.is_quarantined(NodeId(2), later));
        assert_eq!(eng.readmit_due(later), vec![NodeId(2)]);
        assert_eq!(eng.readmissions(), 1);
        assert_eq!(eng.active_quarantines(later), 0);
    }

    #[test]
    fn artifact_accounting_counts_each_artifact_once() {
        let mut eng = engine(2);
        let a = eng.note_injected();
        let b = eng.register_equivocation(5, Identity::from_seed(1).account());
        assert_eq!(
            eng.register_equivocation(5, Identity::from_seed(1).account()),
            b
        );
        assert_eq!(eng.injected(), 2);
        assert!(eng.note_detected(a));
        assert!(!eng.note_detected(a), "second observation does not recount");
        assert!(eng.note_detected(b));
        assert_eq!(eng.detected(), 2);
        assert_eq!(
            eng.lookup_equivocation(5, Identity::from_seed(1).account()),
            Some(b)
        );
        assert_eq!(
            eng.lookup_equivocation(6, Identity::from_seed(1).account()),
            None
        );
    }

    #[test]
    fn bench_excludes_only_at_the_benched_height() {
        let mut eng = engine(2);
        eng.bench(NodeId(0), 7);
        assert!(eng.is_excluded(NodeId(0), SimTime::ZERO, 7));
        assert!(!eng.is_excluded(NodeId(0), SimTime::ZERO, 8));
        eng.unbench(NodeId(0));
        assert!(!eng.is_excluded(NodeId(0), SimTime::ZERO, 7));
    }

    #[test]
    fn adversarial_material_is_deterministic() {
        let mut a = engine(2);
        let mut b = engine(2);
        assert_eq!(a.next_digest(), b.next_digest());
        assert_eq!(a.garbage_bytes(64), b.garbage_bytes(64));
        assert_eq!(a.draw(10), b.draw(10));
    }

    #[test]
    fn canonical_pruning_re_bases_agreeing_views_and_stays_safe() {
        let mut eng = engine(3);
        let mut canonical = Blockchain::new();
        for i in 0..9u64 {
            let b = mined(canonical.tip(), 1, (i + 1) * 60);
            canonical.push(b).unwrap();
        }
        // Node 1 is fully synced; node 2 lags at height 2.
        eng.sync(NodeId(1), &canonical, 9);
        eng.sync(NodeId(2), &canonical, 2);
        // A tagged orphan at height 4 on node 2: once the canonical chain
        // prunes past it, it can never be judged and must be dropped.
        let full = canonical.clone();
        let orphan = mined(full.get(3).unwrap(), 5, 241);
        eng.stash_orphan(NodeId(2), orphan, Some((0, "byz_forge")));

        let identity = Identity::from_seed(42);
        canonical.prune_below(5, identity.keys());
        let anchor = canonical.anchor().unwrap().clone();
        eng.prune_below(&anchor);

        assert_eq!(eng.chains[1].base_index(), 5);
        assert_eq!(eng.chains[1].height(), 9);
        assert_eq!(eng.chains[1], canonical);
        assert_eq!(eng.chains[2].base_index(), 0, "laggard view left intact");
        assert!(
            eng.resolve_orphans(NodeId(2)).is_empty(),
            "below-base orphan dropped at the prune"
        );

        // An orphan below a re-based node's own pruned base resolves as a
        // graceful drop, never a panic.
        let stale = mined(full.get(2).unwrap(), 6, 200);
        eng.stash_orphan(NodeId(1), stale, None);
        assert!(eng.resolve_orphans(NodeId(1)).is_empty());

        // A deep laggard cannot sync block-by-block across the pruned gap:
        // the call is a no-op asking for a snapshot, not a panic.
        let r = eng.sync(NodeId(2), &canonical, 9);
        assert_eq!(r.reorg_depth, None);
        assert_eq!(eng.chains[2].height(), 2);

        // Snapshot bootstrap lands the laggard on the pruned canonical
        // view, after which normal sync works again.
        let rebuilt = Blockchain::from_anchor(anchor, canonical.as_slice().to_vec()).unwrap();
        eng.bootstrap_from_snapshot(NodeId(2), rebuilt);
        assert_eq!(eng.chains[2], canonical);
        let r = eng.sync(NodeId(2), &canonical, 9);
        assert_eq!(r.reorg_depth, None);
        assert_eq!(eng.chains[2].height(), 9);
    }

    #[test]
    fn orphan_pool_defers_judgement_and_keeps_tagged_entries() {
        let mut eng = engine(2);
        let genesis = Block::genesis();
        let honest = mined(&genesis, 1, 60);

        // Node 1 is still at genesis; a forged block claiming height 1
        // lands as a tagged orphan, then a flood of competing height-1
        // claims churns the FIFO — untagged entries must be evicted
        // before the tagged proof-in-waiting.
        let forged = mined(&genesis, 2, 61);
        eng.stash_orphan(NodeId(1), forged.clone(), Some((9, "byz_forge")));
        eng.stash_orphan(NodeId(1), forged, Some((9, "byz_forge"))); // dedup
        for seed in 3..13 {
            eng.stash_orphan(NodeId(1), mined(&genesis, seed, 60 + seed), None);
        }
        // A stashed copy of the block the node will adopt is dropped
        // silently at resolution (same hash ⇒ honest).
        eng.stash_orphan(NodeId(1), honest.clone(), None);
        // Nothing resolvable while the node is still behind.
        assert!(eng.resolve_orphans(NodeId(1)).is_empty());

        // Sync the honest block, then judge: the tagged forgery survived
        // the FIFO churn and is disproven; untagged blocks from other
        // miners count as reorg-displaced and are dropped.
        assert_eq!(eng.deliver(NodeId(1), &honest), ByzantineOutcome::Extended);
        let verdicts = eng.resolve_orphans(NodeId(1));
        assert!(
            verdicts.contains(&OrphanVerdict::Forged {
                artifact: 9,
                kind: "byz_forge",
                miner: Identity::from_seed(2).account(),
            }),
            "tagged orphan must survive eviction and be disproven: {verdicts:?}"
        );
        // A second resolution pass finds the pool judged and empty.
        assert!(eng.resolve_orphans(NodeId(1)).is_empty());
    }
}
