//! Proof-of-Work baseline (paper §VI-C comparison).
//!
//! The paper compares its PoS against classic PoW at "difficulty 4", i.e.
//! four zero hex digits at the beginning of the block hash (16 zero bits),
//! for which the expected search length is `16^4 = 65536` hashes. This
//! module implements that baseline with an explicit **attempt counter** so
//! the energy model can charge every hash evaluation.

use edgechain_crypto::{Digest, Sha256};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A PoW difficulty expressed in leading zero *hex digits* of the hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Difficulty(u32);

impl Difficulty {
    /// The paper's experimental setting: 4 leading zero hex digits.
    pub const PAPER: Difficulty = Difficulty(4);

    /// Creates a difficulty.
    ///
    /// # Panics
    ///
    /// Panics above 16 hex digits (64 bits) — such searches are
    /// astronomically long and certainly a configuration error here.
    pub fn new(zero_hex_digits: u32) -> Self {
        assert!(
            zero_hex_digits <= 16,
            "difficulty above 16 hex digits is absurd"
        );
        Difficulty(zero_hex_digits)
    }

    /// Leading zero hex digits required.
    pub fn zero_hex_digits(&self) -> u32 {
        self.0
    }

    /// Expected number of hash evaluations to find a block: `16^d`.
    pub fn expected_attempts(&self) -> u64 {
        16u64.pow(self.0)
    }

    /// Whether `digest` satisfies this difficulty.
    pub fn is_met_by(&self, digest: &Digest) -> bool {
        digest.has_leading_zero_hex_digits(self.0)
    }
}

impl fmt::Display for Difficulty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} hex zeros", self.0)
    }
}

/// A successful PoW solution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PowSolution {
    /// The winning nonce.
    pub nonce: u64,
    /// The block hash achieving the difficulty.
    pub hash: Digest,
    /// How many hash evaluations the search performed (energy ∝ this).
    pub attempts: u64,
}

/// Searches nonces `start_nonce, start_nonce+1, …` until
/// `SHA-256(header ‖ nonce)` meets `difficulty`, or `max_attempts` is
/// exhausted.
///
/// Returns `None` when the budget runs out — callers treat that as "keep
/// mining next tick", which keeps simulated mining interruptible.
///
/// # Examples
///
/// ```
/// use edgechain_core::pow::{mine, verify, Difficulty};
///
/// let easy = Difficulty::new(1);
/// let sol = mine(b"block header", easy, 0, 1 << 16).expect("found");
/// assert!(verify(b"block header", easy, &sol));
/// // The attempt count is what the energy model charges.
/// assert!(sol.attempts >= 1);
/// ```
pub fn mine(
    header: &[u8],
    difficulty: Difficulty,
    start_nonce: u64,
    max_attempts: u64,
) -> Option<PowSolution> {
    let mut nonce = start_nonce;
    for attempt in 1..=max_attempts {
        let mut h = Sha256::new();
        h.update(header);
        h.update(nonce.to_be_bytes());
        let digest = h.finalize();
        if difficulty.is_met_by(&digest) {
            return Some(PowSolution {
                nonce,
                hash: digest,
                attempts: attempt,
            });
        }
        nonce = nonce.wrapping_add(1);
    }
    None
}

/// Verifies a claimed solution with a single hash evaluation.
pub fn verify(header: &[u8], difficulty: Difficulty, solution: &PowSolution) -> bool {
    let mut h = Sha256::new();
    h.update(header);
    h.update(solution.nonce.to_be_bytes());
    let digest = h.finalize();
    digest == solution.hash && difficulty.is_met_by(&digest)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn easy_difficulty_found_quickly() {
        let sol = mine(b"block header", Difficulty::new(1), 0, 1_000)
            .expect("difficulty 1 found within 1000 attempts whp");
        assert!(Difficulty::new(1).is_met_by(&sol.hash));
        assert!(verify(b"block header", Difficulty::new(1), &sol));
    }

    #[test]
    fn verification_rejects_wrong_header() {
        let sol = mine(b"header A", Difficulty::new(1), 0, 10_000).unwrap();
        assert!(!verify(b"header B", Difficulty::new(1), &sol));
    }

    #[test]
    fn verification_rejects_insufficient_difficulty() {
        let sol = mine(b"header", Difficulty::new(1), 0, 10_000).unwrap();
        if !Difficulty::new(6).is_met_by(&sol.hash) {
            assert!(!verify(b"header", Difficulty::new(6), &sol));
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        // Difficulty 16 within 3 attempts is (practically) impossible.
        assert!(mine(b"x", Difficulty::new(16), 0, 3).is_none());
    }

    #[test]
    fn attempts_counted_correctly() {
        // Resume search: a solution found at attempt k from nonce 0 is found
        // at attempt 1 when starting from its own nonce.
        let sol = mine(b"count", Difficulty::new(1), 0, 100_000).unwrap();
        let resumed = mine(b"count", Difficulty::new(1), sol.nonce, 10).unwrap();
        assert_eq!(resumed.attempts, 1);
        assert_eq!(resumed.nonce, sol.nonce);
    }

    #[test]
    fn expected_attempts_formula() {
        assert_eq!(Difficulty::new(0).expected_attempts(), 1);
        assert_eq!(Difficulty::new(2).expected_attempts(), 256);
        assert_eq!(Difficulty::PAPER.expected_attempts(), 65_536);
    }

    #[test]
    fn paper_difficulty_statistics() {
        // Average attempts at difficulty 2 over several searches should be
        // within a factor ~3 of the expected 256.
        let mut total = 0u64;
        let runs = 24;
        for i in 0..runs {
            let header = format!("stat {i}");
            let sol = mine(header.as_bytes(), Difficulty::new(2), 0, 1 << 20).unwrap();
            total += sol.attempts;
        }
        let mean = total as f64 / runs as f64;
        assert!(mean > 256.0 / 3.0 && mean < 256.0 * 3.0, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "absurd")]
    fn excessive_difficulty_rejected() {
        let _ = Difficulty::new(17);
    }
}
