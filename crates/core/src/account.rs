//! Node identities, accounts, and the token ledger.
//!
//! Each participating edge device holds a key pair; the hash of the public
//! key is its **account address** (paper §III-A). Mining a block earns one
//! token; token balances (`S_i`) feed the PoS target value. The
//! [`Ledger`] is always *derived from the chain history*, so every node can
//! recompute and verify any balance ("S and Q of each node can be obtained
//! and validated through the history of the blockchain").

use edgechain_crypto::{Digest, KeyPair, PublicKey};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A node's account address (SHA-256 of its public key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AccountId(pub Digest);

impl AccountId {
    /// Derives the account id from a public key.
    pub fn from_public_key(pk: &PublicKey) -> Self {
        AccountId(pk.address())
    }

    /// The raw 32-byte address.
    pub fn as_bytes(&self) -> &[u8; 32] {
        self.0.as_bytes()
    }
}

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Short form: first 8 hex chars, like git.
        write!(f, "{}", &self.0.to_hex()[..8])
    }
}

/// A node's full identity: key pair plus cached account id.
///
/// # Examples
///
/// ```
/// use edgechain_core::Identity;
///
/// let node = Identity::from_seed(7);
/// // The address is the hash of the public key, never the reverse.
/// assert_eq!(node.account().0, node.public_key().address());
/// ```
#[derive(Debug, Clone)]
pub struct Identity {
    keys: KeyPair,
    account: AccountId,
}

impl Identity {
    /// Creates an identity deterministically from a seed (one per node in
    /// simulations).
    pub fn from_seed(seed: u64) -> Self {
        let keys = KeyPair::from_seed(seed);
        let account = AccountId::from_public_key(&keys.public_key());
        Identity { keys, account }
    }

    /// Creates an identity whose account address satisfies a pattern —
    /// the paper's §III-A: "Each account is unique … and has a unique
    /// address (hash value) satisfying a certain pattern". The pattern here
    /// is `zero_bits` leading zero bits; key candidates are ground from
    /// `seed` until one matches, which makes mass-producing identities
    /// proportionally expensive (a mild Sybil deterrent).
    ///
    /// Returns the identity and the number of candidate keys tried.
    ///
    /// # Panics
    ///
    /// Panics if `zero_bits > 24` (grinding cost doubles per bit; beyond
    /// 24 bits a simulation would stall).
    pub fn from_seed_with_pattern(seed: u64, zero_bits: u32) -> (Self, u64) {
        assert!(
            zero_bits <= 24,
            "address pattern above 24 bits is impractical"
        );
        let mut attempts = 0u64;
        let mut counter = seed;
        loop {
            attempts += 1;
            let candidate = Identity::from_seed(counter);
            if candidate.account.0.leading_zero_bits() >= zero_bits {
                return (candidate, attempts);
            }
            counter = counter.wrapping_add(0x9e37_79b9_7f4a_7c15);
        }
    }

    /// Whether this identity's address satisfies an `zero_bits` pattern.
    pub fn matches_pattern(&self, zero_bits: u32) -> bool {
        self.account.0.leading_zero_bits() >= zero_bits
    }

    /// The signing key pair.
    pub fn keys(&self) -> &KeyPair {
        &self.keys
    }

    /// The public key.
    pub fn public_key(&self) -> PublicKey {
        self.keys.public_key()
    }

    /// The account address.
    pub fn account(&self) -> AccountId {
        self.account
    }
}

/// Token balances by account, derived from chain history.
///
/// A new node "requires to have at least one token" (paper §V-A) — the
/// genesis grant — which [`Ledger::balance`] reflects by defaulting to
/// [`Ledger::initial_tokens`].
///
/// # Examples
///
/// ```
/// use edgechain_core::{Identity, Ledger};
///
/// let mut ledger = Ledger::new();
/// let miner = Identity::from_seed(1).account();
/// assert_eq!(ledger.balance(&miner), 1); // initial grant
/// ledger.credit(miner, 1);               // one mined block
/// assert_eq!(ledger.balance(&miner), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ledger {
    balances: HashMap<AccountId, u64>,
    initial_tokens: u64,
}

impl Default for Ledger {
    fn default() -> Self {
        Self::new()
    }
}

impl Ledger {
    /// A ledger where unknown accounts hold one token (the paper's initial
    /// grant).
    pub fn new() -> Self {
        Ledger {
            balances: HashMap::new(),
            initial_tokens: 1,
        }
    }

    /// A ledger with a custom initial grant.
    pub fn with_initial_tokens(initial_tokens: u64) -> Self {
        Ledger {
            balances: HashMap::new(),
            initial_tokens,
        }
    }

    /// The initial grant for unseen accounts.
    pub fn initial_tokens(&self) -> u64 {
        self.initial_tokens
    }

    /// Current balance of `account` (`S_i`).
    pub fn balance(&self, account: &AccountId) -> u64 {
        self.balances
            .get(account)
            .copied()
            .unwrap_or(self.initial_tokens)
    }

    /// Credits `amount` tokens (e.g., the one-token mining reward).
    pub fn credit(&mut self, account: AccountId, amount: u64) {
        let bal = self.balances.entry(account).or_insert(self.initial_tokens);
        *bal += amount;
    }

    /// Debits tokens, saturating at zero; returns the amount actually
    /// debited.
    pub fn debit(&mut self, account: AccountId, amount: u64) -> u64 {
        let bal = self.balances.entry(account).or_insert(self.initial_tokens);
        let taken = amount.min(*bal);
        *bal -= taken;
        taken
    }

    /// Debits tokens all-or-nothing: succeeds (and takes `amount`) only
    /// when the balance covers it. Admission pricing uses this so a shed
    /// request never partially drains an account.
    pub fn try_debit(&mut self, account: AccountId, amount: u64) -> bool {
        let bal = self.balances.entry(account).or_insert(self.initial_tokens);
        if *bal >= amount {
            *bal -= amount;
            true
        } else {
            false
        }
    }

    /// Halves every balance (rounding up, minimum 1). This is the paper's
    /// §V-B token rescaling: "decrease S_i for all nodes simultaneously (by
    /// ratio) after a certain number of blocks, and increase B by the same
    /// ratio", keeping relative mining advantage unchanged.
    pub fn rescale_halve(&mut self) {
        for bal in self.balances.values_mut() {
            *bal = (*bal).div_ceil(2).max(1);
        }
    }

    /// Number of accounts that have explicitly appeared on-chain.
    pub fn len(&self) -> usize {
        self.balances.len()
    }

    /// Whether no account has appeared on-chain yet.
    pub fn is_empty(&self) -> bool {
        self.balances.is_empty()
    }

    /// Iterates over explicitly tracked `(account, balance)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&AccountId, &u64)> {
        self.balances.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_deterministic() {
        let a = Identity::from_seed(1);
        let b = Identity::from_seed(1);
        let c = Identity::from_seed(2);
        assert_eq!(a.account(), b.account());
        assert_ne!(a.account(), c.account());
    }

    #[test]
    fn account_matches_public_key_hash() {
        let id = Identity::from_seed(5);
        assert_eq!(id.account().0, id.public_key().address());
    }

    #[test]
    fn unknown_accounts_hold_initial_grant() {
        let ledger = Ledger::new();
        let acct = Identity::from_seed(9).account();
        assert_eq!(ledger.balance(&acct), 1);
        assert!(ledger.is_empty());
    }

    #[test]
    fn credit_and_debit() {
        let mut ledger = Ledger::new();
        let acct = Identity::from_seed(3).account();
        ledger.credit(acct, 2); // initial 1 + 2
        assert_eq!(ledger.balance(&acct), 3);
        assert_eq!(ledger.debit(acct, 2), 2);
        assert_eq!(ledger.balance(&acct), 1);
        assert_eq!(ledger.debit(acct, 10), 1); // saturates
        assert_eq!(ledger.balance(&acct), 0);
        assert_eq!(ledger.len(), 1);
    }

    #[test]
    fn try_debit_is_all_or_nothing() {
        let mut ledger = Ledger::new();
        let acct = Identity::from_seed(4).account();
        ledger.credit(acct, 2); // balance 3
        assert!(!ledger.try_debit(acct, 5), "insufficient: must not drain");
        assert_eq!(ledger.balance(&acct), 3);
        assert!(ledger.try_debit(acct, 3));
        assert_eq!(ledger.balance(&acct), 0);
        assert!(ledger.try_debit(acct, 0), "zero price always admits");
    }

    #[test]
    fn rescale_preserves_order_and_floors_at_one() {
        let mut ledger = Ledger::new();
        let a = Identity::from_seed(10).account();
        let b = Identity::from_seed(11).account();
        ledger.credit(a, 9); // 10
        ledger.credit(b, 0); // 1
        ledger.rescale_halve();
        assert_eq!(ledger.balance(&a), 5);
        assert_eq!(ledger.balance(&b), 1);
        assert!(ledger.balance(&a) > ledger.balance(&b));
    }

    #[test]
    fn custom_initial_tokens() {
        let ledger = Ledger::with_initial_tokens(5);
        let acct = Identity::from_seed(1).account();
        assert_eq!(ledger.balance(&acct), 5);
        assert_eq!(ledger.initial_tokens(), 5);
    }

    #[test]
    fn pattern_grinding_finds_matching_address() {
        let (id, attempts) = Identity::from_seed_with_pattern(1, 4);
        assert!(id.matches_pattern(4));
        assert!(attempts >= 1);
        // Expected ~16 attempts for 4 bits; allow generous slack.
        assert!(attempts < 1000, "took {attempts} attempts");
        // Deterministic.
        let (id2, attempts2) = Identity::from_seed_with_pattern(1, 4);
        assert_eq!(id.account(), id2.account());
        assert_eq!(attempts, attempts2);
    }

    #[test]
    fn zero_bit_pattern_accepts_first_candidate() {
        let (_, attempts) = Identity::from_seed_with_pattern(9, 0);
        assert_eq!(attempts, 1);
    }

    #[test]
    #[should_panic(expected = "impractical")]
    fn excessive_pattern_rejected() {
        let _ = Identity::from_seed_with_pattern(1, 25);
    }

    #[test]
    fn display_is_short_hex() {
        let acct = Identity::from_seed(1).account();
        let s = format!("{acct}");
        assert_eq!(s.len(), 8);
        assert!(s.chars().all(|c| c.is_ascii_hexdigit()));
    }
}
