//! Binary wire codec for blocks and metadata items.
//!
//! The paper's prototype shipped JSON over sockets; a deployable system
//! needs a compact, versioned binary encoding. This module provides one:
//! little-endian fixed-width integers, length-prefixed byte strings, and a
//! one-byte format version so future revisions can evolve. Decoding is
//! total — malformed or truncated input yields [`DecodeError`], never a
//! panic (fuzz-style property tests assert this).
//!
//! [`Block::wire_size`](crate::Block::wire_size) reports the exact length
//! of this encoding, so every byte the simulator charges corresponds to a
//! byte a real deployment would transmit.
//!
//! # Examples
//!
//! ```
//! use edgechain_core::{codec, Block};
//!
//! let genesis = Block::genesis();
//! let bytes = codec::encode_block(&genesis);
//! let back = codec::decode_block(&bytes)?;
//! assert_eq!(back, genesis);
//! # Ok::<(), edgechain_core::codec::DecodeError>(())
//! ```

use crate::account::AccountId;
use crate::block::Block;
use crate::chain::{ChainAnchor, Snapshot};
use crate::metadata::{DataId, DataType, Location, MetadataItem};
use crate::pos::Amendment;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use edgechain_crypto::{Digest, PublicKey, Signature};
use edgechain_sim::NodeId;
use std::fmt;

/// Format version written as the first byte of every top-level object.
pub const FORMAT_VERSION: u8 = 1;

/// Decoding failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the object was complete.
    UnexpectedEnd,
    /// Unknown format version byte.
    BadVersion(u8),
    /// A tag byte did not match any known variant.
    BadTag(u8),
    /// A length prefix exceeded sane bounds.
    LengthOverflow(u64),
    /// An embedded string was not valid UTF-8.
    BadUtf8,
    /// A public key failed group-membership validation.
    BadKey,
    /// Trailing bytes remained after the object.
    TrailingBytes(usize),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::UnexpectedEnd => write!(f, "unexpected end of input"),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t}"),
            DecodeError::LengthOverflow(n) => write!(f, "length prefix {n} too large"),
            DecodeError::BadUtf8 => write!(f, "embedded string is not valid utf-8"),
            DecodeError::BadKey => write!(f, "invalid public key encoding"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Upper bound on any single length prefix (strings, lists); prevents
/// allocation bombs from hostile input.
const MAX_LEN: u64 = 16 * 1024 * 1024;

struct Reader {
    buf: Bytes,
}

impl Reader {
    fn new(data: &[u8]) -> Self {
        Reader {
            buf: Bytes::copy_from_slice(data),
        }
    }

    fn need(&self, n: usize) -> Result<(), DecodeError> {
        if self.buf.remaining() < n {
            Err(DecodeError::UnexpectedEnd)
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        self.need(1)?;
        Ok(self.buf.get_u8())
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_u64_le())
    }

    fn u128(&mut self) -> Result<u128, DecodeError> {
        self.need(16)?;
        Ok(self.buf.get_u128_le())
    }

    fn f64(&mut self) -> Result<f64, DecodeError> {
        self.need(8)?;
        Ok(self.buf.get_f64_le())
    }

    fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        if n > MAX_LEN {
            return Err(DecodeError::LengthOverflow(n));
        }
        Ok(n as usize)
    }

    fn bytes(&mut self, n: usize) -> Result<Vec<u8>, DecodeError> {
        self.need(n)?;
        let mut out = vec![0u8; n];
        self.buf.copy_to_slice(&mut out);
        Ok(out)
    }

    fn digest(&mut self) -> Result<Digest, DecodeError> {
        let raw = self.bytes(32)?;
        Ok(Digest(raw.try_into().expect("length checked")))
    }

    fn string(&mut self) -> Result<String, DecodeError> {
        let n = self.len()?;
        String::from_utf8(self.bytes(n)?).map_err(|_| DecodeError::BadUtf8)
    }

    fn node_list(&mut self) -> Result<Vec<NodeId>, DecodeError> {
        let n = self.len()?;
        let mut out = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            out.push(NodeId(self.u64()? as usize));
        }
        Ok(out)
    }

    fn finish(self) -> Result<(), DecodeError> {
        if self.buf.has_remaining() {
            Err(DecodeError::TrailingBytes(self.buf.remaining()))
        } else {
            Ok(())
        }
    }
}

fn put_string(buf: &mut BytesMut, s: &str) {
    buf.put_u64_le(s.len() as u64);
    buf.put_slice(s.as_bytes());
}

fn put_nodes(buf: &mut BytesMut, nodes: &[NodeId]) {
    buf.put_u64_le(nodes.len() as u64);
    for n in nodes {
        buf.put_u64_le(n.0 as u64);
    }
}

fn put_data_type(buf: &mut BytesMut, dt: &DataType) {
    match dt {
        DataType::Sensing(s) => {
            buf.put_u8(0);
            put_string(buf, s);
        }
        DataType::Media(s) => {
            buf.put_u8(1);
            put_string(buf, s);
        }
        DataType::KeyExchange => buf.put_u8(2),
        DataType::Other(s) => {
            buf.put_u8(3);
            put_string(buf, s);
        }
    }
}

fn read_data_type(r: &mut Reader) -> Result<DataType, DecodeError> {
    match r.u8()? {
        0 => Ok(DataType::Sensing(r.string()?)),
        1 => Ok(DataType::Media(r.string()?)),
        2 => Ok(DataType::KeyExchange),
        3 => Ok(DataType::Other(r.string()?)),
        t => Err(DecodeError::BadTag(t)),
    }
}

fn put_metadata(buf: &mut BytesMut, item: &MetadataItem) {
    buf.put_u64_le(item.data_id.0);
    put_data_type(buf, &item.data_type);
    buf.put_u64_le(item.produced_at_secs);
    put_string(buf, &item.location.label);
    buf.put_f64_le(item.location.x);
    buf.put_f64_le(item.location.y);
    buf.put_slice(item.producer.as_bytes());
    buf.put_slice(&item.producer_key.to_bytes());
    buf.put_slice(&item.signature.to_bytes());
    put_nodes(buf, &item.storing_nodes);
    buf.put_u64_le(item.valid_minutes);
    match &item.properties {
        Some(p) => {
            buf.put_u8(1);
            put_string(buf, p);
        }
        None => buf.put_u8(0),
    }
    buf.put_u64_le(item.data_size);
}

fn read_metadata(r: &mut Reader) -> Result<MetadataItem, DecodeError> {
    let data_id = DataId(r.u64()?);
    let data_type = read_data_type(r)?;
    let produced_at_secs = r.u64()?;
    let label = r.string()?;
    let x = r.f64()?;
    let y = r.f64()?;
    let producer = AccountId(r.digest()?);
    let key_bytes: [u8; 32] = r.bytes(32)?.try_into().expect("length checked");
    let producer_key = PublicKey::from_bytes(&key_bytes).map_err(|_| DecodeError::BadKey)?;
    let sig_bytes: [u8; 64] = r.bytes(64)?.try_into().expect("length checked");
    let signature = Signature::from_bytes(&sig_bytes);
    let storing_nodes = r.node_list()?;
    let valid_minutes = r.u64()?;
    let properties = match r.u8()? {
        0 => None,
        1 => Some(r.string()?),
        t => return Err(DecodeError::BadTag(t)),
    };
    let data_size = r.u64()?;
    Ok(MetadataItem {
        data_id,
        data_type,
        produced_at_secs,
        location: Location { label, x, y },
        producer,
        producer_key,
        signature,
        storing_nodes,
        valid_minutes,
        properties,
        data_size,
    })
}

/// Encodes a metadata item on its own (the form broadcast at generation
/// time, before any block packs it).
pub fn encode_metadata(item: &MetadataItem) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u8(FORMAT_VERSION);
    put_metadata(&mut buf, item);
    buf.to_vec()
}

/// Decodes a standalone metadata item.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input; never panics.
pub fn decode_metadata(data: &[u8]) -> Result<MetadataItem, DecodeError> {
    let mut r = Reader::new(data);
    match r.u8()? {
        FORMAT_VERSION => {}
        v => return Err(DecodeError::BadVersion(v)),
    }
    let item = read_metadata(&mut r)?;
    r.finish()?;
    Ok(item)
}

/// Encodes a block (header, PoS credentials, node lists, metadata items).
///
/// Counts each invocation under the `codec.block_encodes` telemetry
/// counter (and its wall time under `codec.encode_ns`) so tests and the
/// perf bench can assert how many times a path actually serialized a
/// block — [`Block::encoded`](crate::Block::encoded) exists to keep this
/// at one per sealed block.
pub fn encode_block(block: &Block) -> Vec<u8> {
    edgechain_telemetry::counter_add("codec.block_encodes", 1);
    edgechain_telemetry::time_wall("codec.encode_ns", || encode_block_inner(block))
}

fn encode_block_inner(block: &Block) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(512);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(block.index);
    buf.put_slice(block.prev_hash.as_bytes());
    buf.put_u64_le(block.timestamp_secs);
    buf.put_slice(block.pos_hash.as_bytes());
    buf.put_slice(block.miner.as_bytes());
    buf.put_u64_le(block.delay_secs);
    buf.put_u128_le(block.amendment.numerator());
    buf.put_u128_le(block.amendment.denominator());
    buf.put_slice(block.merkle_root.as_bytes());
    put_nodes(&mut buf, &block.storing_nodes);
    put_nodes(&mut buf, &block.prev_storing_nodes);
    put_nodes(&mut buf, &block.recent_cache_nodes);
    buf.put_u64_le(block.metadata.len() as u64);
    for item in &block.metadata {
        put_metadata(&mut buf, item);
    }
    buf.put_slice(block.hash.as_bytes());
    buf.to_vec()
}

/// Decodes a block.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input; never panics. Note that
/// decoding does **not** validate the block (hash, Merkle root,
/// signatures) — run [`Block::is_well_formed`] and
/// [`crate::Blockchain::verify_block_signatures`] afterwards.
pub fn decode_block(data: &[u8]) -> Result<Block, DecodeError> {
    let mut r = Reader::new(data);
    match r.u8()? {
        FORMAT_VERSION => {}
        v => return Err(DecodeError::BadVersion(v)),
    }
    let index = r.u64()?;
    let prev_hash = r.digest()?;
    let timestamp_secs = r.u64()?;
    let pos_hash = r.digest()?;
    let miner = AccountId(r.digest()?);
    let delay_secs = r.u64()?;
    let num = r.u128()?;
    let den = r.u128()?;
    if den == 0 {
        return Err(DecodeError::BadTag(0));
    }
    let amendment = Amendment::from_fraction(num, den);
    let merkle_root = r.digest()?;
    let storing_nodes = r.node_list()?;
    let prev_storing_nodes = r.node_list()?;
    let recent_cache_nodes = r.node_list()?;
    let n_items = r.len()?;
    let mut metadata = Vec::with_capacity(n_items.min(4096));
    for _ in 0..n_items {
        metadata.push(read_metadata(&mut r)?);
    }
    let hash = r.digest()?;
    r.finish()?;
    Ok(Block {
        index,
        prev_hash,
        timestamp_secs,
        pos_hash,
        miner,
        delay_secs,
        amendment,
        metadata,
        merkle_root,
        storing_nodes,
        prev_storing_nodes,
        recent_cache_nodes,
        hash,
        cache: Default::default(),
    })
}

/// Encodes a whole chain (e.g. for persistence or bootstrap transfer).
pub fn encode_chain(blocks: &[Block]) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_u8(FORMAT_VERSION);
    buf.put_u64_le(blocks.len() as u64);
    for b in blocks {
        let enc = encode_block(b);
        buf.put_u64_le(enc.len() as u64);
        buf.put_slice(&enc);
    }
    buf.to_vec()
}

/// Decodes a chain encoded by [`encode_chain`]. Linkage is *not* validated
/// here; feed the result to [`crate::Blockchain::from_blocks`].
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input.
pub fn decode_chain(data: &[u8]) -> Result<Vec<Block>, DecodeError> {
    let mut r = Reader::new(data);
    match r.u8()? {
        FORMAT_VERSION => {}
        v => return Err(DecodeError::BadVersion(v)),
    }
    let n = r.len()?;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let len = r.len()?;
        let raw = r.bytes(len)?;
        out.push(decode_block(&raw)?);
    }
    r.finish()?;
    Ok(out)
}

fn put_anchor(buf: &mut BytesMut, anchor: &ChainAnchor) {
    buf.put_u64_le(anchor.height);
    buf.put_slice(anchor.tip_hash.as_bytes());
    buf.put_slice(anchor.tip_pos_hash.as_bytes());
    buf.put_u64_le(anchor.tip_timestamp_secs);
    buf.put_slice(anchor.commitment.as_bytes());
    buf.put_u64_le(anchor.mined.len() as u64);
    for (acct, n) in &anchor.mined {
        buf.put_slice(acct.as_bytes());
        buf.put_u64_le(*n);
    }
    buf.put_u64_le(anchor.metadata_items);
    buf.put_slice(anchor.signer.as_bytes());
    buf.put_slice(&anchor.signer_key.to_bytes());
    buf.put_slice(&anchor.signature.to_bytes());
}

fn read_anchor(r: &mut Reader) -> Result<ChainAnchor, DecodeError> {
    let height = r.u64()?;
    let tip_hash = r.digest()?;
    let tip_pos_hash = r.digest()?;
    let tip_timestamp_secs = r.u64()?;
    let commitment = r.digest()?;
    let n_mined = r.len()?;
    let mut mined = Vec::with_capacity(n_mined.min(4096));
    for _ in 0..n_mined {
        let acct = AccountId(r.digest()?);
        let n = r.u64()?;
        mined.push((acct, n));
    }
    let metadata_items = r.u64()?;
    let signer = AccountId(r.digest()?);
    let key_bytes: [u8; 32] = r.bytes(32)?.try_into().expect("length checked");
    let signer_key = PublicKey::from_bytes(&key_bytes).map_err(|_| DecodeError::BadKey)?;
    let sig_bytes: [u8; 64] = r.bytes(64)?.try_into().expect("length checked");
    let signature = Signature::from_bytes(&sig_bytes);
    Ok(ChainAnchor {
        height,
        tip_hash,
        tip_pos_hash,
        tip_timestamp_secs,
        commitment,
        mined,
        metadata_items,
        signer,
        signer_key,
        signature,
    })
}

/// Encodes a pruned-prefix anchor.
pub fn encode_anchor(anchor: &ChainAnchor) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u8(FORMAT_VERSION);
    put_anchor(&mut buf, anchor);
    buf.to_vec()
}

/// Decodes a pruned-prefix anchor encoded by [`encode_anchor`].
///
/// Decoding does **not** verify the anchor signature — run
/// [`ChainAnchor::verify`] afterwards.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input; never panics.
pub fn decode_anchor(data: &[u8]) -> Result<ChainAnchor, DecodeError> {
    let mut r = Reader::new(data);
    match r.u8()? {
        FORMAT_VERSION => {}
        v => return Err(DecodeError::BadVersion(v)),
    }
    let anchor = read_anchor(&mut r)?;
    r.finish()?;
    Ok(anchor)
}

/// Encodes a bootstrap snapshot: anchor, retained block suffix (each
/// block length-prefixed, reusing the cached [`Block::encoded`] bytes),
/// the live registry with packing indices, and the server credentials.
pub fn encode_snapshot(snapshot: &Snapshot) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(4096);
    buf.put_u8(FORMAT_VERSION);
    put_anchor(&mut buf, &snapshot.anchor);
    buf.put_u64_le(snapshot.blocks.len() as u64);
    for b in &snapshot.blocks {
        let enc = b.encoded();
        buf.put_u64_le(enc.len() as u64);
        buf.put_slice(&enc);
    }
    buf.put_u64_le(snapshot.registry.len() as u64);
    for (item, packed_at) in &snapshot.registry {
        put_metadata(&mut buf, item);
        buf.put_u64_le(*packed_at);
    }
    buf.put_slice(snapshot.server.as_bytes());
    buf.put_slice(&snapshot.server_key.to_bytes());
    buf.put_slice(&snapshot.signature.to_bytes());
    buf.to_vec()
}

/// Decodes a snapshot encoded by [`encode_snapshot`].
///
/// Decoding does **not** verify anything — run [`Snapshot::verify`]
/// before trusting the contents.
///
/// # Errors
///
/// Returns [`DecodeError`] on malformed input; never panics.
pub fn decode_snapshot(data: &[u8]) -> Result<Snapshot, DecodeError> {
    let mut r = Reader::new(data);
    match r.u8()? {
        FORMAT_VERSION => {}
        v => return Err(DecodeError::BadVersion(v)),
    }
    let anchor = read_anchor(&mut r)?;
    let n_blocks = r.len()?;
    let mut blocks = Vec::with_capacity(n_blocks.min(4096));
    for _ in 0..n_blocks {
        let len = r.len()?;
        let raw = r.bytes(len)?;
        blocks.push(decode_block(&raw)?);
    }
    let n_items = r.len()?;
    let mut registry = Vec::with_capacity(n_items.min(4096));
    for _ in 0..n_items {
        let item = read_metadata(&mut r)?;
        let packed_at = r.u64()?;
        registry.push((item, packed_at));
    }
    let server = AccountId(r.digest()?);
    let key_bytes: [u8; 32] = r.bytes(32)?.try_into().expect("length checked");
    let server_key = PublicKey::from_bytes(&key_bytes).map_err(|_| DecodeError::BadKey)?;
    let sig_bytes: [u8; 64] = r.bytes(64)?.try_into().expect("length checked");
    let signature = Signature::from_bytes(&sig_bytes);
    r.finish()?;
    Ok(Snapshot {
        anchor,
        blocks,
        registry,
        server,
        server_key,
        signature,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::account::Identity;

    fn sample_item(seed: u64) -> MetadataItem {
        let mut item = MetadataItem::new_signed(
            Identity::from_seed(seed).keys(),
            DataId(7),
            DataType::Sensing("PM2.5".into()),
            660,
            Location {
                label: "NY".into(),
                x: 40.7,
                y: -74.0,
            },
            1440,
            Some("cam".into()),
            1_000_000,
        );
        item.storing_nodes = vec![NodeId(3), NodeId(9)];
        item
    }

    fn sample_block() -> Block {
        let g = Block::genesis();
        Block::new(
            1,
            g.hash,
            60,
            edgechain_crypto::sha256(b"pos"),
            Identity::from_seed(1).account(),
            42,
            Amendment::from_fraction(123456789, 987654321),
            vec![sample_item(2), sample_item(3)],
            vec![NodeId(1)],
            vec![NodeId(0), NodeId(2)],
            vec![NodeId(4)],
        )
    }

    #[test]
    fn metadata_roundtrip() {
        let item = sample_item(1);
        let enc = encode_metadata(&item);
        let dec = decode_metadata(&enc).unwrap();
        assert_eq!(dec, item);
        assert!(dec.verify());
    }

    #[test]
    fn metadata_roundtrip_no_properties() {
        let mut item = sample_item(4);
        item.properties = None;
        // Re-signing not needed for codec tests: equality is structural.
        let dec = decode_metadata(&encode_metadata(&item)).unwrap();
        assert_eq!(dec, item);
    }

    #[test]
    fn all_data_types_roundtrip() {
        for dt in [
            DataType::Sensing("a".into()),
            DataType::Media("b".into()),
            DataType::KeyExchange,
            DataType::Other("c".into()),
        ] {
            let mut item = sample_item(5);
            item.data_type = dt.clone();
            let dec = decode_metadata(&encode_metadata(&item)).unwrap();
            assert_eq!(dec.data_type, dt);
        }
    }

    #[test]
    fn block_roundtrip() {
        let block = sample_block();
        let enc = encode_block(&block);
        let dec = decode_block(&enc).unwrap();
        assert_eq!(dec, block);
        assert!(dec.is_well_formed());
    }

    #[test]
    fn genesis_roundtrip() {
        let g = Block::genesis();
        assert_eq!(decode_block(&encode_block(&g)).unwrap(), g);
    }

    #[test]
    fn chain_roundtrip() {
        let mut chain = crate::chain::Blockchain::new();
        let b = sample_block();
        chain.push(b).unwrap();
        let enc = encode_chain(chain.as_slice());
        let blocks = decode_chain(&enc).unwrap();
        let rebuilt = crate::chain::Blockchain::from_blocks(blocks).unwrap();
        assert_eq!(rebuilt, chain);
    }

    #[test]
    fn truncated_input_errors_cleanly() {
        let enc = encode_block(&sample_block());
        for cut in [0, 1, 8, enc.len() / 2, enc.len() - 1] {
            let err = decode_block(&enc[..cut]);
            assert!(err.is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut enc = encode_block(&sample_block());
        enc.push(0xFF);
        assert_eq!(decode_block(&enc), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn wrong_version_rejected() {
        let mut enc = encode_metadata(&sample_item(6));
        enc[0] = 99;
        assert_eq!(decode_metadata(&enc), Err(DecodeError::BadVersion(99)));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Version byte + index + hashes…, then a huge node-list length.
        let block = sample_block();
        let mut enc = encode_block(&block);
        // The first node-list length sits right after the fixed 193-byte
        // header (1 + 8 + 32 + 8 + 32 + 32 + 8 + 16 + 16 + 32); stomp it.
        let off = 1 + 8 + 32 + 8 + 32 + 32 + 8 + 16 + 16 + 32;
        enc[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        match decode_block(&enc) {
            Err(DecodeError::LengthOverflow(_)) | Err(DecodeError::UnexpectedEnd) => {}
            other => panic!("expected overflow error, got {other:?}"),
        }
    }

    #[test]
    fn bad_utf8_rejected() {
        let item = sample_item(8);
        let enc = encode_metadata(&item);
        // Find the location-label bytes ("NY") and corrupt them.
        let pos = enc
            .windows(2)
            .position(|w| w == b"NY")
            .expect("label present");
        let mut bad = enc.clone();
        bad[pos] = 0xFF;
        bad[pos + 1] = 0xFE;
        assert_eq!(decode_metadata(&bad), Err(DecodeError::BadUtf8));
    }

    fn sample_snapshot() -> Snapshot {
        use crate::chain::Blockchain;
        let mut chain = Blockchain::new();
        for i in 0..6u64 {
            let prev = chain.tip();
            let miner = Identity::from_seed(i % 3).account();
            let b = Block::new(
                prev.index + 1,
                prev.hash,
                (i + 1) * 60,
                crate::pos::next_pos_hash(&prev.pos_hash, &miner),
                miner,
                60,
                Amendment::from_fraction(1, 1000),
                Vec::new(),
                vec![NodeId(0)],
                prev.storing_nodes.clone(),
                Vec::new(),
            );
            chain.push(b).unwrap();
        }
        chain.prune_below(3, Identity::from_seed(9).keys());
        let registry = vec![(sample_item(2), 4u64), (sample_item(3), 5u64)];
        Snapshot::seal(
            chain.anchor().unwrap().clone(),
            chain.as_slice().to_vec(),
            registry,
            Identity::from_seed(1).keys(),
        )
    }

    #[test]
    fn anchor_roundtrip() {
        let snapshot = sample_snapshot();
        let enc = encode_anchor(&snapshot.anchor);
        let dec = decode_anchor(&enc).unwrap();
        assert_eq!(dec, snapshot.anchor);
        assert!(dec.verify(), "signature survives the roundtrip");
    }

    #[test]
    fn snapshot_roundtrip() {
        let snapshot = sample_snapshot();
        let enc = encode_snapshot(&snapshot);
        let dec = decode_snapshot(&enc).unwrap();
        assert_eq!(dec, snapshot);
        assert!(dec.verify(), "server signature survives the roundtrip");
    }

    #[test]
    fn truncated_snapshot_errors_cleanly() {
        let enc = encode_snapshot(&sample_snapshot());
        for cut in [0, 1, 9, enc.len() / 3, enc.len() / 2, enc.len() - 1] {
            assert!(
                decode_snapshot(&enc[..cut]).is_err(),
                "cut at {cut} decoded"
            );
        }
    }

    #[test]
    fn snapshot_trailing_bytes_rejected() {
        let mut enc = encode_snapshot(&sample_snapshot());
        enc.push(0x00);
        assert_eq!(decode_snapshot(&enc), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn tampered_snapshot_fails_verification() {
        let snapshot = sample_snapshot();
        assert!(snapshot.verify());
        // Rewriting a storer map — the classic tamper — breaks the server
        // signature even though every producer signature still holds.
        let mut storers = snapshot.clone();
        storers.registry[0].0.storing_nodes = vec![NodeId(13)];
        assert!(!storers.verify());
        // A detached suffix fails structurally.
        let mut detached = snapshot.clone();
        detached.blocks.remove(0);
        assert!(!detached.verify());
        // A forged anchor summary fails the anchor signature.
        let mut forged = snapshot;
        forged.anchor.metadata_items += 7;
        assert!(!forged.verify());
    }
}
