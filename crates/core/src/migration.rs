//! Data migration after topology change (paper §VII future work).
//!
//! "Over time, data items may become obsolete, and nodes will also change
//! the location. The distributed storage will not remain optimal during
//! that time. Calculating the optimal storage problem is not necessary if
//! the change over the network is small. In the future, we will discuss
//! the data migration problem, which will study how to use less operation
//! to achieve less offset from the optimal result."
//!
//! This module implements that future-work item:
//!
//! 1. [`placement_cost`] evaluates how well a *current* replica set serves
//!    the network under the live FDC/RDC costs (same objective as Eq. 3).
//! 2. [`plan_migration`] re-solves the allocation for an item and, only
//!    when the optimal placement beats the current one by more than a
//!    configurable relative threshold, emits a [`MigrationPlan`] whose
//!    moves are minimized: replicas already in the right place stay put,
//!    and every new location is sourced from its nearest current holder —
//!    "less operation, less offset".
//! 3. [`apply_migration`] executes the plan over the transport layer,
//!    charging the migration traffic like any other transfer.

use crate::alloc::build_instance_scaled;
use crate::metadata::DataId;
use crate::storage::NodeStorage;
use edgechain_facility::{SolveError, FDC_SCALE};
use edgechain_sim::{NodeId, SimTime, Topology, Transport};
use serde::{Deserialize, Serialize};

/// Tuning knobs for [`plan_migration`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationConfig {
    /// Minimum relative cost improvement that justifies moving data
    /// (e.g. 0.05 = the optimal placement must be ≥5 % cheaper). The
    /// objective includes the scaled FDC term, which is identical for
    /// equally-loaded holders, so even large *proximity* gains show up as
    /// single-digit relative improvements at the paper's A = 1000.
    pub improvement_threshold: f64,
    /// FDC weight `A` (the paper's 1000 by default).
    pub fdc_scale: f64,
}

impl Default for MigrationConfig {
    fn default() -> Self {
        MigrationConfig {
            improvement_threshold: 0.05,
            fdc_scale: FDC_SCALE,
        }
    }
}

/// One replica movement: copy `data` from `from` to `to` (and drop the
/// replica at `from` unless it is kept by the new placement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Move {
    /// The data item to move.
    pub data: DataId,
    /// Current holder serving as the copy source.
    pub from: NodeId,
    /// New storing node.
    pub to: NodeId,
}

/// A migration decision for one data item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The item under migration.
    pub data: DataId,
    /// Replica copies to perform (new locations, nearest sources).
    pub moves: Vec<Move>,
    /// Current holders that the new placement abandons.
    pub drops: Vec<NodeId>,
    /// Placement cost before migration.
    pub cost_before: f64,
    /// Placement cost the new allocation achieves.
    pub cost_after: f64,
}

impl MigrationPlan {
    /// Relative improvement `1 − after/before` (0 when `before` is 0).
    pub fn improvement(&self) -> f64 {
        if self.cost_before <= 0.0 {
            0.0
        } else {
            1.0 - self.cost_after / self.cost_before
        }
    }
}

/// Evaluates the Eq. 3 objective for a fixed set of open storers: scaled
/// FDC opening cost of each holder plus every node's cheapest RDC to a
/// holder. Returns `f64::INFINITY` for an empty holder set.
pub fn placement_cost(
    topology: &Topology,
    storage: &[NodeStorage],
    holders: &[NodeId],
    fdc_scale: f64,
) -> f64 {
    if holders.is_empty() {
        return f64::INFINITY;
    }
    let mut cost = 0.0;
    for &h in holders {
        cost += fdc_scale * storage[h.0].fdc() / 1.0;
    }
    for j in topology.nodes() {
        let best = holders
            .iter()
            .map(|&h| topology.rdc(h, j))
            .fold(f64::INFINITY, f64::min);
        cost += best;
    }
    cost
}

/// Decides whether (and how) to migrate one item whose replicas currently
/// sit at `current_holders`.
///
/// Returns `Ok(None)` when the optimal placement does not beat the current
/// one by at least `config.improvement_threshold`.
///
/// # Errors
///
/// Returns [`SolveError`] when the allocation problem is infeasible (all
/// nodes full).
pub fn plan_migration(
    data: DataId,
    topology: &Topology,
    storage: &[NodeStorage],
    current_holders: &[NodeId],
    config: MigrationConfig,
) -> Result<Option<MigrationPlan>, SolveError> {
    let instance = build_instance_scaled(topology, storage, config.fdc_scale);
    let solution = edgechain_facility::solve(&instance)?;
    let target: Vec<NodeId> = solution.open_facilities().into_iter().map(NodeId).collect();
    let cost_before = placement_cost(topology, storage, current_holders, config.fdc_scale);
    let cost_after = placement_cost(topology, storage, &target, config.fdc_scale);
    if cost_before.is_finite() && cost_after >= cost_before * (1.0 - config.improvement_threshold) {
        return Ok(None);
    }
    // Minimal operations: keep overlapping replicas, copy only into the
    // genuinely new locations, each from its nearest current holder.
    let mut moves = Vec::new();
    for &to in &target {
        if current_holders.contains(&to) {
            continue;
        }
        let source = current_holders
            .iter()
            .copied()
            .filter(|&h| topology.reachable(h, to) || h == to)
            .min_by_key(|&h| topology.hops(h, to));
        if let Some(from) = source {
            moves.push(Move { data, from, to });
        }
    }
    let drops: Vec<NodeId> = current_holders
        .iter()
        .copied()
        .filter(|h| !target.contains(h))
        .collect();
    Ok(Some(MigrationPlan {
        data,
        moves,
        drops,
        cost_before,
        cost_after,
    }))
}

/// Executes a plan: copies each replica over the transport (charging the
/// traffic), stores it at the destination, and finally evicts the dropped
/// replicas. Returns the number of successful copies.
pub fn apply_migration(
    plan: &MigrationPlan,
    topology: &Topology,
    storage: &mut [NodeStorage],
    transport: &mut Transport,
    data_size: u64,
    now: SimTime,
) -> usize {
    let mut copied = 0;
    for mv in &plan.moves {
        if transport
            .unicast(topology, mv.from, mv.to, data_size, now)
            .is_ok()
            && storage[mv.to.0].store_data(plan.data)
        {
            copied += 1;
        }
    }
    // Drop abandoned replicas only after the copies landed, so the item
    // never becomes unavailable mid-migration.
    for &d in &plan.drops {
        storage[d.0].evict_data(plan.data);
    }
    copied
}

#[cfg(test)]
mod tests {
    use super::*;
    use edgechain_sim::{Point, TransportConfig};

    fn line(n: usize) -> Topology {
        Topology::from_positions((0..n).map(|i| Point::new(i as f64 * 60.0, 0.0)).collect())
    }

    /// Mid-simulation storage: partially filled stores so facility costs
    /// are non-trivial (all-empty stores make every facility free and the
    /// solver degenerately opens everything).
    fn filled_storage(n: usize) -> Vec<NodeStorage> {
        let mut storage = vec![NodeStorage::paper_default(); n];
        for (i, s) in storage.iter_mut().enumerate() {
            for k in 0..10 {
                s.store_data(DataId(10_000 + (i as u64) * 100 + k));
            }
        }
        storage
    }

    #[test]
    fn cost_prefers_central_holder() {
        let topo = line(5);
        let storage = filled_storage(5);
        let center = placement_cost(&topo, &storage, &[NodeId(2)], FDC_SCALE);
        let edge = placement_cost(&topo, &storage, &[NodeId(0)], FDC_SCALE);
        assert!(center < edge);
        assert_eq!(
            placement_cost(&topo, &storage, &[], FDC_SCALE),
            f64::INFINITY
        );
    }

    #[test]
    fn bad_placement_triggers_migration() {
        let topo = line(7);
        let storage = filled_storage(7);
        // Replica stuck at the far end; the optimum is central.
        let plan = plan_migration(
            DataId(1),
            &topo,
            &storage,
            &[NodeId(6)],
            MigrationConfig::default(),
        )
        .unwrap()
        .expect("edge placement must be worth migrating");
        assert!(plan.improvement() > 0.05);
        assert!(!plan.moves.is_empty());
        // All moves source from the only current holder.
        assert!(plan.moves.iter().all(|m| m.from == NodeId(6)));
        assert!(plan.cost_after < plan.cost_before);
    }

    #[test]
    fn optimal_placement_is_left_alone() {
        let topo = line(7);
        let storage = filled_storage(7);
        // First find where the solver itself would put the item…
        let plan = plan_migration(
            DataId(2),
            &topo,
            &storage,
            &[NodeId(6)],
            MigrationConfig::default(),
        )
        .unwrap()
        .unwrap();
        // The new placement: copied-to locations plus kept replicas.
        let mut optimal: Vec<NodeId> = plan.moves.iter().map(|m| m.to).collect();
        if !plan.drops.contains(&NodeId(6)) {
            optimal.push(NodeId(6));
        }
        // …then ask again with the item already there: no migration.
        let again = plan_migration(
            DataId(2),
            &topo,
            &storage,
            &optimal,
            MigrationConfig::default(),
        )
        .unwrap();
        assert!(
            again.is_none(),
            "already-optimal placement migrated: {again:?}"
        );
    }

    #[test]
    fn overlapping_replicas_stay_put() {
        let topo = line(9);
        let storage = filled_storage(9);
        // Current: one good central replica plus one stray at the end.
        let plan = plan_migration(
            DataId(3),
            &topo,
            &storage,
            &[NodeId(4), NodeId(8)],
            MigrationConfig {
                improvement_threshold: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        if let Some(plan) = plan {
            // The kept replica never appears as a move destination.
            assert!(plan.moves.iter().all(|m| m.to != NodeId(4)));
        }
    }

    #[test]
    fn apply_copies_and_drops() {
        let topo = line(7);
        let mut storage = filled_storage(7);
        storage[6].store_data(DataId(9));
        let plan = plan_migration(
            DataId(9),
            &topo,
            &storage,
            &[NodeId(6)],
            MigrationConfig::default(),
        )
        .unwrap()
        .unwrap();
        let mut transport = Transport::new(TransportConfig::default());
        let copied = apply_migration(
            &plan,
            &topo,
            &mut storage,
            &mut transport,
            1_000_000,
            SimTime::ZERO,
        );
        assert_eq!(copied, plan.moves.len());
        for mv in &plan.moves {
            assert!(storage[mv.to.0].has_data(DataId(9)));
        }
        if plan.drops.contains(&NodeId(6)) {
            assert!(!storage[6].has_data(DataId(9)));
        }
        // Migration traffic was charged.
        assert!(transport.stats().total_sent() >= 1_000_000);
    }
}
