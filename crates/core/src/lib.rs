//! # edgechain-core
//!
//! A blockchain designed for pervasive edge computing environments —
//! a from-scratch reproduction of *"Resource Allocation and Consensus on
//! Edge Blockchain in Pervasive Edge Computing Environments"*
//! (ICDCS 2019).
//!
//! Edge devices trade for-profit data through micro-payments recorded on a
//! chain, but they cannot afford a conventional blockchain: storage is too
//! small to replicate everything everywhere and batteries cannot pay for
//! Proof of Work. This crate implements the paper's answers:
//!
//! * **Metadata blocks** ([`metadata`], [`block`]) — blocks carry small
//!   signed descriptors; megabyte data items live on a few chosen nodes.
//! * **Fair & efficient storage allocation** ([`storage`], [`alloc`]) —
//!   storing nodes are picked by solving an uncapacitated facility
//!   location problem over the Fairness Degree Cost (Eq. 1) and the
//!   Range-Distance Cost (Eq. 2).
//! * **Recent-block caching** ([`storage`]) — a FIFO cache with
//!   miner-granted quotas keeps fresh blocks pervasive so mobile nodes
//!   recover quickly from disconnections.
//! * **Contribution-weighted Proof of Stake** ([`pos`]) — nodes that hold
//!   more tokens and store more data mine sooner; the amendment `B` keeps
//!   the expected block interval at `t0`. A classic PoW baseline lives in
//!   [`pow`] for the Fig. 6 comparison.
//! * **The full simulated network** ([`network`]) — every protocol above
//!   running over a discrete-event wireless multi-hop simulation with
//!   byte-accurate overhead accounting.
//!
//! # Examples
//!
//! ```
//! use edgechain_core::network::{EdgeNetwork, NetworkConfig};
//!
//! let config = NetworkConfig {
//!     nodes: 10,
//!     sim_minutes: 10,
//!     ..NetworkConfig::default()
//! };
//! let report = EdgeNetwork::new(config)?.run();
//! assert!(report.blocks_mined > 0);
//! println!("{report}");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod account;
pub mod alloc;
pub mod block;
pub mod byzantine;
pub mod chain;
pub mod codec;
pub mod invariant;
pub mod metadata;
pub mod migration;
pub mod network;
pub mod pos;
pub mod pow;
pub mod slo;
pub mod storage;

pub use account::{AccountId, Identity, Ledger};
pub use alloc::{build_instance, select_storers, AllocationContext, Placement, RegionParams};
pub use block::{Block, BlockError};
pub use byzantine::{ByzantineEngine, ByzantineOutcome, OrphanVerdict, SyncResult, WithheldFork};
pub use chain::verify_wire_block;
pub use chain::{Blockchain, ChainAnchor, ChainError, CheckpointPolicy, Snapshot};
pub use invariant::{ForkView, InvariantChecker, InvariantView};
pub use metadata::{DataId, DataType, Location, MetadataItem};
pub use migration::{
    apply_migration, placement_cost, plan_migration, MigrationConfig, MigrationPlan, Move,
};
pub use network::{EdgeNetwork, NetworkConfig, RunReport};
pub use pos::{
    hit, next_pos_hash, run_round, verify_claim, Amendment, Candidate, MiningOutcome, HIT_MODULUS,
};
pub use pow::{mine, verify, Difficulty, PowSolution};
pub use slo::{LatencySummary, OverloadReport, SloAlert, SloMonitor, SloReport, SloThresholds};
pub use storage::NodeStorage;

// Open-workload configuration types, re-exported so downstream crates can
// build a `NetworkConfig` without depending on the workload crate directly.
pub use edgechain_workload::{
    ArrivalProcess, Burst, OpenArrivals, OverloadConfig, TokenBucket, WorkloadConfig, ZipfSampler,
};
