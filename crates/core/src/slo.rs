//! SLO health monitoring: rolling-window latency/availability evaluation
//! with threshold-breach alerts, summarized into [`SloReport`].
//!
//! The monitor runs **unconditionally** inside every simulation: it only
//! consumes numbers the network already computes (inclusion and fetch
//! latencies, request outcomes, reorg depths, quarantine counts), consumes
//! no RNG, and feeds nothing back into protocol decisions — so a run's
//! [`crate::network::RunReport`] carries an `slo` section whether or not a
//! telemetry session is armed, and reports stay bit-identical across
//! telemetry/span configurations.
//!
//! Evaluation rides the block cadence: each mined block trims every
//! rolling window to the configured span and compares the windowed p99
//! latencies, availability, deepest reorg, and quarantine count against
//! [`SloThresholds`]. Alerts are edge-triggered — one [`SloAlert`] per
//! breach episode, recorded when an objective *transitions* into breach —
//! so a sustained outage produces one alert, not one per block.

use edgechain_telemetry::SampleSet;
use std::collections::VecDeque;
use std::fmt;

/// SLO objective names, as they appear in alerts and trace events.
pub mod objective {
    /// Windowed p99 item inclusion latency (generate → packed) too high.
    pub const INCLUSION_P99: &str = "inclusion_p99_secs";
    /// Windowed p99 fetch/delivery latency too high.
    pub const FETCH_P99: &str = "fetch_p99_secs";
    /// Windowed fraction of resolved fetches that completed too low.
    pub const AVAILABILITY: &str = "availability";
    /// Deepest observed chain reorg exceeded the bound.
    pub const REORG_DEPTH: &str = "reorg_depth";
    /// Cumulative quarantine count exceeded the bound.
    pub const QUARANTINES: &str = "quarantines";
    /// Windowed shed fraction of offered operations too high.
    pub const SHED_RATE: &str = "shed_rate";
    /// Pending-queue depth exceeded the bound.
    pub const QUEUE_DEPTH: &str = "queue_depth";
}

/// Thresholds and window geometry for the health monitor. The defaults
/// are sized for the paper's §VI setup (60 s block interval, minutes-long
/// inclusion waits are normal under Poisson packing): a healthy seeded
/// chaos run stays at zero breaches, while a collapsed network (no
/// storers reachable, runaway reorgs) trips them.
#[derive(Debug, Clone, PartialEq)]
pub struct SloThresholds {
    /// Rolling-window span in seconds over which latency percentiles and
    /// availability are evaluated.
    pub window_secs: u64,
    /// Minimum windowed sample count before a percentile objective is
    /// evaluated (tiny windows make p99 meaningless).
    pub min_window_samples: usize,
    /// Maximum acceptable windowed p99 inclusion latency, seconds.
    pub inclusion_p99_max_secs: f64,
    /// Maximum acceptable windowed p99 fetch latency, seconds.
    pub fetch_p99_max_secs: f64,
    /// Minimum acceptable windowed availability (completed / resolved).
    pub availability_min: f64,
    /// Maximum acceptable reorg depth, in discarded blocks.
    pub max_reorg_depth: u64,
    /// Maximum acceptable cumulative quarantine count.
    pub max_quarantines: u64,
    /// Maximum acceptable windowed shed fraction (shed / offered) across
    /// item and fetch admission. `None` (the default) disables the
    /// objective — load-aware SLOs are opt-in, so existing configurations
    /// evaluate exactly as before.
    pub shed_rate_max: Option<f64>,
    /// Maximum acceptable pending-queue depth at evaluation time.
    /// `None` (the default) disables the objective.
    pub queue_depth_max: Option<u64>,
}

impl Default for SloThresholds {
    fn default() -> Self {
        SloThresholds {
            window_secs: 900,
            min_window_samples: 10,
            inclusion_p99_max_secs: 600.0,
            fetch_p99_max_secs: 120.0,
            availability_min: 0.75,
            max_reorg_depth: 8,
            max_quarantines: 20,
            shed_rate_max: None,
            queue_depth_max: None,
        }
    }
}

/// Overload accounting for one run, carried in
/// [`crate::network::RunReport::overload`]. Offered/admitted tallies and
/// queue high-water marks are maintained on every run; the *protection*
/// counters (sheds, denials, deferrals, ladder level) stay zero unless a
/// gate actually fired — [`OverloadReport::engaged`] — so a
/// default-configured run reports `offered == admitted` and nothing shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OverloadReport {
    /// Data items offered by the generator (open or closed loop).
    pub offered_items: u64,
    /// Items that passed admission and entered the pending queue.
    pub admitted_items: u64,
    /// Items shed at admission (bucket empty, queue full, or unpayable).
    pub shed_items: u64,
    /// Admitted items the streaming UFL solver could not place
    /// (`alloc.rejected` outcome).
    pub alloc_rejected: u64,
    /// Fetches offered (closed-loop requests plus open workload fetches).
    pub offered_fetches: u64,
    /// Fetches that passed admission and entered the retry pipeline.
    pub admitted_fetches: u64,
    /// Fetches shed at entry (bucket empty, inflight cap, degradation
    /// ladder, or unpayable).
    pub shed_fetches: u64,
    /// Fetches that exhausted every retry (explicit terminal failures).
    pub fetch_exhausted: u64,
    /// Retries denied by the global retry budget.
    pub retries_denied: u64,
    /// Proactive replications deferred by the degradation ladder (L2+).
    pub deferred_replications: u64,
    /// Repair sweeps deferred by the degradation ladder (L3).
    pub deferred_repairs: u64,
    /// High-water mark of the pending-metadata queue.
    pub peak_pending_items: u64,
    /// High-water mark of any node's in-flight fetch count.
    pub peak_inflight_fetches: u64,
    /// Deepest degradation-ladder rung reached (0–3).
    pub max_degrade_level: u8,
    /// Ledger tokens collected as admission fees.
    pub admission_tokens_charged: u64,
}

impl OverloadReport {
    /// Whether any overload-protection mechanism actually fired.
    pub fn engaged(&self) -> bool {
        self.shed_items > 0
            || self.shed_fetches > 0
            || self.alloc_rejected > 0
            || self.retries_denied > 0
            || self.deferred_replications > 0
            || self.deferred_repairs > 0
            || self.max_degrade_level > 0
    }
}

impl fmt::Display for OverloadReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "items {}/{} admitted ({} shed, {} alloc-rejected); fetches {}/{} \
             admitted ({} shed, {} exhausted); {} retries denied; deferred \
             {} replications / {} repairs; peak queue {} pending / {} \
             inflight; max degrade L{}; {} tokens charged",
            self.admitted_items,
            self.offered_items,
            self.shed_items,
            self.alloc_rejected,
            self.admitted_fetches,
            self.offered_fetches,
            self.shed_fetches,
            self.fetch_exhausted,
            self.retries_denied,
            self.deferred_replications,
            self.deferred_repairs,
            self.peak_pending_items,
            self.peak_inflight_fetches,
            self.max_degrade_level,
            self.admission_tokens_charged
        )
    }
}

/// Exact nearest-rank latency percentiles over a full run (or window).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: u64,
    /// Median, `None` when no sample was recorded.
    pub p50: Option<f64>,
    /// 95th percentile.
    pub p95: Option<f64>,
    /// 99th percentile.
    pub p99: Option<f64>,
}

impl LatencySummary {
    /// Summarizes a sample set (which it sorts in place).
    pub fn from_samples(samples: &mut SampleSet) -> LatencySummary {
        LatencySummary {
            count: samples.len() as u64,
            p50: samples.p50(),
            p95: samples.p95(),
            p99: samples.p99(),
        }
    }
}

impl fmt::Display for LatencySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.p50, self.p95, self.p99) {
            (Some(p50), Some(p95), Some(p99)) => write!(
                f,
                "p50/p95/p99 = {p50:.2}/{p95:.2}/{p99:.2} s (n={})",
                self.count
            ),
            _ => write!(f, "no samples"),
        }
    }
}

/// One edge-triggered threshold breach: the instant an objective crossed
/// its threshold, with the observed and allowed values.
#[derive(Debug, Clone, PartialEq)]
pub struct SloAlert {
    /// Sim-clock milliseconds of the evaluation that detected the breach.
    pub t_ms: u64,
    /// Objective name (see [`objective`]).
    pub slo: &'static str,
    /// Observed windowed value.
    pub observed: f64,
    /// Configured threshold it violated.
    pub threshold: f64,
}

/// Full-run SLO summary carried in [`crate::network::RunReport::slo`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloReport {
    /// Full-run inclusion latency percentiles (generate → packed).
    pub inclusion: LatencySummary,
    /// Full-run fetch/delivery latency percentiles.
    pub fetch: LatencySummary,
    /// Full-run availability (completed / resolved requests; 1.0 when
    /// nothing resolved).
    pub availability: f64,
    /// Deepest reorg observed over the run.
    pub max_reorg_depth: u64,
    /// Quarantines imposed over the run.
    pub quarantines: u64,
    /// Edge-triggered breach records, in detection order.
    pub alerts: Vec<SloAlert>,
    /// Number of breach episodes (equals `alerts.len()`).
    pub breaches: u64,
}

impl fmt::Display for SloReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} breaches; inclusion {}; fetch {}; availability {:.3}, \
             max reorg depth {}, quarantines {}",
            self.breaches,
            self.inclusion,
            self.fetch,
            self.availability,
            self.max_reorg_depth,
            self.quarantines
        )?;
        for a in &self.alerts {
            write!(
                f,
                "\n    breach @{:.1}s: {} = {:.3} (threshold {:.3})",
                a.t_ms as f64 / 1000.0,
                a.slo,
                a.observed,
                a.threshold
            )?;
        }
        Ok(())
    }
}

/// Tracks whether one objective is currently in breach, so alerts fire on
/// the ok→breach edge only.
#[derive(Debug, Clone, Default)]
struct BreachState {
    in_breach: bool,
}

impl BreachState {
    /// Returns `Some(alert)` exactly when the objective transitions into
    /// breach.
    fn update(
        &mut self,
        breached: bool,
        t_ms: u64,
        slo: &'static str,
        observed: f64,
        threshold: f64,
    ) -> Option<SloAlert> {
        let fresh = breached && !self.in_breach;
        self.in_breach = breached;
        fresh.then_some(SloAlert {
            t_ms,
            slo,
            observed,
            threshold,
        })
    }
}

/// The rolling-window health monitor. Record samples as they happen,
/// call [`SloMonitor::evaluate`] on the block cadence, and fold the
/// result into the run report with [`SloMonitor::into_report`].
#[derive(Debug, Clone)]
pub struct SloMonitor {
    thresholds: SloThresholds,
    // Rolling windows: (t_ms, sample) in arrival order, trimmed at each
    // evaluation. Request outcomes carry only their timestamp.
    inclusion_win: VecDeque<(u64, f64)>,
    fetch_win: VecDeque<(u64, f64)>,
    completed_win: VecDeque<u64>,
    failed_win: VecDeque<u64>,
    // Load-aware windows: offered/shed admission decisions (items and
    // fetches pooled) and the queue depth last seen at evaluation.
    offered_win: VecDeque<u64>,
    shed_win: VecDeque<u64>,
    queue_depth: u64,
    inclusion_state: BreachState,
    fetch_state: BreachState,
    availability_state: BreachState,
    reorg_state: BreachState,
    quarantine_state: BreachState,
    shed_state: BreachState,
    queue_state: BreachState,
    alerts: Vec<SloAlert>,
}

impl SloMonitor {
    /// Builds a monitor with the given thresholds.
    pub fn new(thresholds: SloThresholds) -> SloMonitor {
        SloMonitor {
            thresholds,
            inclusion_win: VecDeque::new(),
            fetch_win: VecDeque::new(),
            completed_win: VecDeque::new(),
            failed_win: VecDeque::new(),
            offered_win: VecDeque::new(),
            shed_win: VecDeque::new(),
            queue_depth: 0,
            inclusion_state: BreachState::default(),
            fetch_state: BreachState::default(),
            availability_state: BreachState::default(),
            reorg_state: BreachState::default(),
            quarantine_state: BreachState::default(),
            shed_state: BreachState::default(),
            queue_state: BreachState::default(),
            alerts: Vec::new(),
        }
    }

    /// Records one item inclusion latency sample.
    pub fn record_inclusion(&mut self, t_ms: u64, secs: f64) {
        self.inclusion_win.push_back((t_ms, secs));
    }

    /// Records one completed-fetch latency sample.
    pub fn record_fetch(&mut self, t_ms: u64, secs: f64) {
        self.fetch_win.push_back((t_ms, secs));
        self.completed_win.push_back(t_ms);
    }

    /// Records a fetch that exhausted its retries.
    pub fn record_failure(&mut self, t_ms: u64) {
        self.failed_win.push_back(t_ms);
    }

    /// Records one offered operation (item generation or fetch entry).
    pub fn record_offered(&mut self, t_ms: u64) {
        self.offered_win.push_back(t_ms);
    }

    /// Records one shed operation (failed admission).
    pub fn record_shed(&mut self, t_ms: u64) {
        self.shed_win.push_back(t_ms);
    }

    /// Notes the current pending-queue depth; the latest value is what
    /// the queue-depth objective evaluates against.
    pub fn note_queue_depth(&mut self, depth: u64) {
        self.queue_depth = depth;
    }

    /// Evaluates every objective over the rolling window ending at
    /// `t_ms`, given the run-wide deepest reorg and quarantine count.
    /// Returns the alerts raised by *this* evaluation (objectives that
    /// just transitioned into breach).
    pub fn evaluate(&mut self, t_ms: u64, max_reorg_depth: u64, quarantines: u64) -> Vec<SloAlert> {
        let cutoff = t_ms.saturating_sub(self.thresholds.window_secs.saturating_mul(1000));
        while self.inclusion_win.front().is_some_and(|(t, _)| *t < cutoff) {
            self.inclusion_win.pop_front();
        }
        while self.fetch_win.front().is_some_and(|(t, _)| *t < cutoff) {
            self.fetch_win.pop_front();
        }
        while self.completed_win.front().is_some_and(|t| *t < cutoff) {
            self.completed_win.pop_front();
        }
        while self.failed_win.front().is_some_and(|t| *t < cutoff) {
            self.failed_win.pop_front();
        }
        while self.offered_win.front().is_some_and(|t| *t < cutoff) {
            self.offered_win.pop_front();
        }
        while self.shed_win.front().is_some_and(|t| *t < cutoff) {
            self.shed_win.pop_front();
        }

        let mut raised = Vec::new();
        let windowed_p99 = |win: &VecDeque<(u64, f64)>| -> Option<f64> {
            if win.len() < self.thresholds.min_window_samples {
                return None;
            }
            let mut s: SampleSet = win.iter().map(|(_, v)| *v).collect();
            s.p99()
        };
        if let Some(p99) = windowed_p99(&self.inclusion_win) {
            raised.extend(self.inclusion_state.update(
                p99 > self.thresholds.inclusion_p99_max_secs,
                t_ms,
                objective::INCLUSION_P99,
                p99,
                self.thresholds.inclusion_p99_max_secs,
            ));
        }
        if let Some(p99) = windowed_p99(&self.fetch_win) {
            raised.extend(self.fetch_state.update(
                p99 > self.thresholds.fetch_p99_max_secs,
                t_ms,
                objective::FETCH_P99,
                p99,
                self.thresholds.fetch_p99_max_secs,
            ));
        }
        let resolved = self.completed_win.len() + self.failed_win.len();
        if resolved >= self.thresholds.min_window_samples {
            let availability = self.completed_win.len() as f64 / resolved as f64;
            raised.extend(self.availability_state.update(
                availability < self.thresholds.availability_min,
                t_ms,
                objective::AVAILABILITY,
                availability,
                self.thresholds.availability_min,
            ));
        }
        raised.extend(self.reorg_state.update(
            max_reorg_depth > self.thresholds.max_reorg_depth,
            t_ms,
            objective::REORG_DEPTH,
            max_reorg_depth as f64,
            self.thresholds.max_reorg_depth as f64,
        ));
        raised.extend(self.quarantine_state.update(
            quarantines > self.thresholds.max_quarantines,
            t_ms,
            objective::QUARANTINES,
            quarantines as f64,
            self.thresholds.max_quarantines as f64,
        ));
        if let Some(max_shed) = self.thresholds.shed_rate_max {
            let offered = self.offered_win.len();
            if offered >= self.thresholds.min_window_samples {
                let rate = self.shed_win.len() as f64 / offered as f64;
                raised.extend(self.shed_state.update(
                    rate > max_shed,
                    t_ms,
                    objective::SHED_RATE,
                    rate,
                    max_shed,
                ));
            }
        }
        if let Some(max_depth) = self.thresholds.queue_depth_max {
            raised.extend(self.queue_state.update(
                self.queue_depth > max_depth,
                t_ms,
                objective::QUEUE_DEPTH,
                self.queue_depth as f64,
                max_depth as f64,
            ));
        }
        self.alerts.extend(raised.iter().cloned());
        raised
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[SloAlert] {
        &self.alerts
    }

    /// Folds the monitor into the full-run report. The latency summaries
    /// come from the caller's **full-run** sample sets (the windows here
    /// only cover the trailing `window_secs`).
    pub fn into_report(
        self,
        inclusion: LatencySummary,
        fetch: LatencySummary,
        availability: f64,
        max_reorg_depth: u64,
        quarantines: u64,
    ) -> SloReport {
        let breaches = self.alerts.len() as u64;
        SloReport {
            inclusion,
            fetch,
            availability,
            max_reorg_depth,
            quarantines,
            alerts: self.alerts,
            breaches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn monitor(thresholds: SloThresholds) -> SloMonitor {
        SloMonitor::new(thresholds)
    }

    #[test]
    fn healthy_window_raises_nothing() {
        let mut m = monitor(SloThresholds::default());
        for i in 0..50 {
            m.record_inclusion(i * 1000, 30.0);
            m.record_fetch(i * 1000, 1.5);
        }
        let raised = m.evaluate(60_000, 0, 0);
        assert!(raised.is_empty());
        assert!(m.alerts().is_empty());
    }

    #[test]
    fn breach_is_edge_triggered_once_per_episode() {
        let t = SloThresholds {
            min_window_samples: 5,
            inclusion_p99_max_secs: 10.0,
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        for i in 0..10 {
            m.record_inclusion(i * 100, 50.0); // way over
        }
        let first = m.evaluate(1_000, 0, 0);
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].slo, objective::INCLUSION_P99);
        assert_eq!(first[0].observed, 50.0);
        // Still breached: no second alert.
        assert!(m.evaluate(2_000, 0, 0).is_empty());
        assert_eq!(m.alerts().len(), 1);
    }

    #[test]
    fn recovery_rearms_the_alert() {
        let t = SloThresholds {
            window_secs: 10,
            min_window_samples: 2,
            fetch_p99_max_secs: 1.0,
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        m.record_fetch(0, 5.0);
        m.record_fetch(100, 5.0);
        assert_eq!(m.evaluate(1_000, 0, 0).len(), 1);
        // Old samples age out; fresh healthy ones recover the objective.
        m.record_fetch(20_000, 0.1);
        m.record_fetch(20_100, 0.1);
        assert!(m.evaluate(21_000, 0, 0).is_empty());
        // Breach again → second episode, second alert.
        m.record_fetch(22_000, 9.0);
        m.record_fetch(22_100, 9.0);
        assert_eq!(m.evaluate(23_000, 0, 0).len(), 1);
        assert_eq!(m.alerts().len(), 2);
    }

    #[test]
    fn small_windows_skip_percentile_objectives() {
        let t = SloThresholds {
            min_window_samples: 10,
            inclusion_p99_max_secs: 0.001,
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        for i in 0..9 {
            m.record_inclusion(i, 100.0);
        }
        assert!(m.evaluate(1_000, 0, 0).is_empty(), "below min samples");
    }

    #[test]
    fn availability_reorg_and_quarantine_objectives() {
        let t = SloThresholds {
            min_window_samples: 4,
            availability_min: 0.9,
            max_reorg_depth: 2,
            max_quarantines: 1,
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        m.record_fetch(0, 0.1);
        m.record_failure(10);
        m.record_failure(20);
        m.record_failure(30);
        let raised = m.evaluate(1_000, 3, 2);
        let names: Vec<&str> = raised.iter().map(|a| a.slo).collect();
        assert!(names.contains(&objective::AVAILABILITY));
        assert!(names.contains(&objective::REORG_DEPTH));
        assert!(names.contains(&objective::QUARANTINES));
    }

    #[test]
    fn report_folding_keeps_alerts_and_counts() {
        let t = SloThresholds {
            min_window_samples: 1,
            max_quarantines: 0,
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        m.evaluate(5_000, 0, 3);
        let mut inc: SampleSet = [10.0, 20.0].into_iter().collect();
        let mut fet: SampleSet = [1.0].into_iter().collect();
        let report = m.into_report(
            LatencySummary::from_samples(&mut inc),
            LatencySummary::from_samples(&mut fet),
            0.97,
            0,
            3,
        );
        assert_eq!(report.breaches, 1);
        assert_eq!(report.alerts.len(), 1);
        assert_eq!(report.inclusion.count, 2);
        assert_eq!(report.inclusion.p99, Some(20.0));
        assert_eq!(report.fetch.p50, Some(1.0));
        let text = format!("{report}");
        assert!(text.contains("1 breaches"));
        assert!(text.contains("quarantines = 3")); // alert detail line
    }

    #[test]
    fn load_objectives_are_off_by_default() {
        let mut m = monitor(SloThresholds::default());
        for i in 0..100 {
            m.record_offered(i * 10);
            m.record_shed(i * 10); // 100% shed
        }
        m.note_queue_depth(1_000_000);
        assert!(
            m.evaluate(2_000, 0, 0).is_empty(),
            "load objectives must be opt-in"
        );
    }

    #[test]
    fn shed_rate_and_queue_depth_objectives() {
        let t = SloThresholds {
            min_window_samples: 4,
            shed_rate_max: Some(0.25),
            queue_depth_max: Some(10),
            ..SloThresholds::default()
        };
        let mut m = monitor(t);
        for i in 0..8 {
            m.record_offered(i * 10);
            if i % 2 == 0 {
                m.record_shed(i * 10); // 50% shed
            }
        }
        m.note_queue_depth(50);
        let raised = m.evaluate(1_000, 0, 0);
        let names: Vec<&str> = raised.iter().map(|a| a.slo).collect();
        assert!(names.contains(&objective::SHED_RATE));
        assert!(names.contains(&objective::QUEUE_DEPTH));
        // Recovery: sheds age out, queue drains → objectives re-arm.
        for i in 0..8 {
            m.record_offered(2_000_000 + i * 10);
        }
        m.note_queue_depth(2);
        assert!(m.evaluate(2_000_500, 0, 0).is_empty());
    }

    #[test]
    fn overload_report_default_is_zero_and_disengaged() {
        let r = OverloadReport::default();
        assert!(!r.engaged());
        assert_eq!(r.offered_items, 0);
        let text = format!("{r}");
        assert!(text.contains("items 0/0 admitted"));
    }

    #[test]
    fn overload_report_engages_on_any_protection() {
        let shed = OverloadReport {
            shed_fetches: 1,
            ..OverloadReport::default()
        };
        assert!(shed.engaged());
        let deferred = OverloadReport {
            deferred_repairs: 2,
            ..OverloadReport::default()
        };
        assert!(deferred.engaged());
    }

    #[test]
    fn latency_summary_display_handles_empty() {
        let s = LatencySummary::default();
        assert_eq!(format!("{s}"), "no samples");
    }
}
