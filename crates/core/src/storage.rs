//! Per-node storage manager.
//!
//! Each edge node has a bounded store (the evaluation gives every node 250
//! slots, each holding one 1 MB data item or one block). The manager tracks
//! three pools:
//!
//! * **data items** proactively cached because the allocation chose this
//!   node as a storer,
//! * **blocks** permanently assigned to this node by the block's
//!   `storing_nodes` list,
//! * the **recent-block cache** — a FIFO of the newest blocks with a
//!   per-node quota that starts at 1 ("all nodes store at least the last
//!   block for mining purposes") and grows when a miner's recent-block
//!   allocation picks this node (§IV-C).
//!
//! The Fairness Degree Cost and the PoS `Q_i` both read from here.

use crate::metadata::DataId;
use edgechain_facility::fdc;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// Bounded per-node storage.
///
/// # Examples
///
/// ```
/// use edgechain_core::{DataId, NodeStorage};
///
/// let mut store = NodeStorage::paper_default(); // 250 slots
/// assert!(store.store_data(DataId(1)));
/// store.cache_recent(5); // newest block, FIFO-evicted at quota
/// assert!(store.has_block(5));
/// assert_eq!(store.q_value(), 2); // the PoS Q_i term
/// assert!(store.fdc() > 0.0);     // fairness cost grows with usage
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeStorage {
    capacity_slots: u64,
    data_items: BTreeSet<DataId>,
    blocks: BTreeSet<u64>,
    recent_cache: VecDeque<u64>,
    recent_quota: usize,
}

impl NodeStorage {
    /// Creates empty storage with `capacity_slots` unit-size slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_slots` is zero.
    pub fn new(capacity_slots: u64) -> Self {
        assert!(capacity_slots > 0, "storage capacity must be positive");
        NodeStorage {
            capacity_slots,
            data_items: BTreeSet::new(),
            blocks: BTreeSet::new(),
            recent_cache: VecDeque::new(),
            recent_quota: 1,
        }
    }

    /// The paper's evaluation setting: 250 slots.
    pub fn paper_default() -> Self {
        Self::new(250)
    }

    /// Total capacity in slots.
    pub fn capacity(&self) -> u64 {
        self.capacity_slots
    }

    /// Slots in use across all pools.
    pub fn used_slots(&self) -> u64 {
        (self.data_items.len() + self.blocks.len() + self.recent_cache.len()) as u64
    }

    /// Free slots remaining.
    pub fn free_slots(&self) -> u64 {
        self.capacity_slots.saturating_sub(self.used_slots())
    }

    /// Whether no slot is free.
    pub fn is_full(&self) -> bool {
        self.free_slots() == 0
    }

    /// The Fairness Degree Cost of this node (Eq. 1); `+∞` when full.
    pub fn fdc(&self) -> f64 {
        fdc(self.used_slots(), self.capacity_slots)
    }

    /// The PoS contribution count `Q_i`: stored items of all kinds,
    /// floored at 1 (a fresh node at least stores the last block).
    pub fn q_value(&self) -> u64 {
        self.used_slots().max(1)
    }

    /// Slots taken by the two permanent pools (data + assigned blocks).
    fn bulk_used(&self) -> u64 {
        (self.data_items.len() + self.blocks.len()) as u64
    }

    /// Whether another permanent item (data or block) fits. One slot is
    /// always reserved for the recent-block cache, because "all nodes
    /// store at least the last block for mining purposes" (§IV-C).
    fn can_store_bulk(&self) -> bool {
        !self.is_full() && self.bulk_used() + 1 < self.capacity_slots
    }

    /// Stores a data item; returns `false` (and stores nothing) when no
    /// slot is available or the item is already present. One slot always
    /// stays reserved for the recent-block cache.
    pub fn store_data(&mut self, id: DataId) -> bool {
        if self.data_items.contains(&id) || !self.can_store_bulk() {
            return false;
        }
        self.data_items.insert(id)
    }

    /// Whether this node stores data item `id`.
    pub fn has_data(&self, id: DataId) -> bool {
        self.data_items.contains(&id)
    }

    /// Drops a data item (e.g., expired); returns whether it was present.
    pub fn evict_data(&mut self, id: DataId) -> bool {
        self.data_items.remove(&id)
    }

    /// Number of proactively stored data items.
    pub fn data_count(&self) -> usize {
        self.data_items.len()
    }

    /// Stores a block permanently; returns `false` when no slot is
    /// available or the block is already present (a block may also sit in
    /// the recent cache — the permanent pool is tracked separately,
    /// mirroring the paper's two allocation types).
    pub fn store_block(&mut self, index: u64) -> bool {
        if self.blocks.contains(&index) || !self.can_store_bulk() {
            return false;
        }
        self.blocks.insert(index)
    }

    /// Number of permanently stored blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the node can serve block `index` (permanent or recent pool).
    pub fn has_block(&self, index: u64) -> bool {
        self.blocks.contains(&index) || self.recent_cache.contains(&index)
    }

    /// Inserts the newest block into the recent cache, evicting the oldest
    /// entries FIFO once over quota (or over capacity — the permanent
    /// pools never squeeze the cache below one slot, so insertion always
    /// succeeds). Returns evicted indices.
    pub fn cache_recent(&mut self, index: u64) -> Vec<u64> {
        if self.recent_cache.contains(&index) {
            return Vec::new();
        }
        self.recent_cache.push_back(index);
        let mut evicted = Vec::new();
        while self.recent_cache.len() > self.recent_quota || self.used_slots() > self.capacity_slots
        {
            if let Some(old) = self.recent_cache.pop_front() {
                evicted.push(old);
            } else {
                break;
            }
        }
        evicted
    }

    /// Current recent-cache quota.
    pub fn recent_quota(&self) -> usize {
        self.recent_quota
    }

    /// Grows the recent-cache quota by one (this node was chosen by a
    /// miner's recent-block allocation), bounded by remaining capacity.
    /// Returns the new quota.
    pub fn grow_recent_quota(&mut self) -> usize {
        let ceiling = (self.capacity_slots as usize)
            .saturating_sub(self.data_items.len() + self.blocks.len());
        if self.recent_quota < ceiling {
            self.recent_quota += 1;
        }
        self.recent_quota
    }

    /// Blocks currently in the recent cache, oldest first.
    pub fn recent_blocks(&self) -> impl Iterator<Item = u64> + '_ {
        self.recent_cache.iter().copied()
    }

    /// Drops every stored block (permanent pool and recent cache) with an
    /// index strictly below `cut` — the storage half of chain pruning.
    /// Returns how many slots were reclaimed; the freed space is
    /// immediately visible to [`NodeStorage::fdc`], [`NodeStorage::q_value`],
    /// and the UFL occupancy costs built on [`NodeStorage::used_slots`].
    pub fn prune_blocks_below(&mut self, cut: u64) -> u64 {
        let keep = self.blocks.split_off(&cut);
        let dropped = self.blocks.len() as u64;
        self.blocks = keep;
        let before = self.recent_cache.len();
        self.recent_cache.retain(|&idx| idx >= cut);
        dropped + (before - self.recent_cache.len()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_storage_is_empty() {
        let s = NodeStorage::paper_default();
        assert_eq!(s.capacity(), 250);
        assert_eq!(s.used_slots(), 0);
        assert_eq!(s.free_slots(), 250);
        assert!(!s.is_full());
        assert_eq!(s.fdc(), 0.0);
        assert_eq!(s.q_value(), 1); // floored
    }

    #[test]
    fn store_data_and_duplicates() {
        let mut s = NodeStorage::new(10);
        assert!(s.store_data(DataId(1)));
        assert!(!s.store_data(DataId(1)));
        assert!(s.has_data(DataId(1)));
        assert!(!s.has_data(DataId(2)));
        assert_eq!(s.data_count(), 1);
        assert_eq!(s.used_slots(), 1);
    }

    #[test]
    fn capacity_enforced_with_reserved_recent_slot() {
        let mut s = NodeStorage::new(3);
        assert!(s.store_data(DataId(1)));
        assert!(s.store_data(DataId(2)));
        // The third slot is reserved for the recent-block cache.
        assert!(!s.store_data(DataId(3)));
        assert!(!s.store_block(7));
        assert!(!s.is_full());
        s.cache_recent(1);
        assert!(s.is_full());
        assert!(s.fdc().is_infinite());
        // The reserved slot still always accepts the newest block.
        let evicted = s.cache_recent(2);
        assert_eq!(evicted, vec![1]);
        assert!(s.has_block(2));
        assert_eq!(s.used_slots(), 3);
    }

    #[test]
    fn fdc_tracks_usage() {
        let mut s = NodeStorage::new(4);
        assert_eq!(s.fdc(), 0.0);
        s.store_data(DataId(1));
        assert!((s.fdc() - 1.0 / 3.0).abs() < 1e-12);
        s.store_data(DataId(2));
        assert!((s.fdc() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn evict_frees_slot() {
        let mut s = NodeStorage::new(2);
        s.store_data(DataId(1));
        assert!(!s.store_data(DataId(2)), "slot 2 is reserved for recents");
        assert!(s.evict_data(DataId(1)));
        assert!(!s.evict_data(DataId(1)));
        assert!(s.store_data(DataId(2)));
    }

    #[test]
    fn recent_cache_fifo_with_quota_one() {
        let mut s = NodeStorage::new(10);
        assert!(s.cache_recent(1).is_empty());
        assert!(s.has_block(1));
        let evicted = s.cache_recent(2);
        assert_eq!(evicted, vec![1]);
        assert!(!s.has_block(1));
        assert!(s.has_block(2));
    }

    #[test]
    fn grown_quota_holds_more() {
        let mut s = NodeStorage::new(10);
        assert_eq!(s.grow_recent_quota(), 2);
        assert_eq!(s.grow_recent_quota(), 3);
        s.cache_recent(1);
        s.cache_recent(2);
        s.cache_recent(3);
        assert!(s.has_block(1) && s.has_block(2) && s.has_block(3));
        let evicted = s.cache_recent(4);
        assert_eq!(evicted, vec![1]);
        assert_eq!(s.recent_blocks().collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn quota_growth_bounded_by_capacity() {
        let mut s = NodeStorage::new(3);
        s.store_data(DataId(1));
        s.store_data(DataId(2));
        // Only 1 slot left: quota may not exceed 1.
        assert_eq!(s.grow_recent_quota(), 1);
    }

    #[test]
    fn blocks_and_recent_counted_separately() {
        let mut s = NodeStorage::new(10);
        s.store_block(5);
        s.cache_recent(5); // dedup against recent pool only
        assert!(s.has_block(5));
        assert_eq!(s.block_count(), 1);
        // Permanent 5 + recent 5 both occupy slots (separate pools).
        assert_eq!(s.used_slots(), 2);
    }

    #[test]
    fn duplicate_recent_cache_is_noop() {
        let mut s = NodeStorage::new(10);
        s.cache_recent(3);
        assert!(s.cache_recent(3).is_empty());
        assert_eq!(s.used_slots(), 1);
    }

    #[test]
    fn q_value_counts_everything() {
        let mut s = NodeStorage::new(10);
        s.store_data(DataId(1));
        s.store_block(1);
        s.cache_recent(2);
        assert_eq!(s.q_value(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = NodeStorage::new(0);
    }

    #[test]
    fn prune_blocks_below_reclaims_slots() {
        let mut s = NodeStorage::new(20);
        for idx in 0..8 {
            assert!(s.store_block(idx));
        }
        s.store_data(DataId(1));
        s.grow_recent_quota();
        s.cache_recent(3);
        s.cache_recent(9);
        let used = s.used_slots();
        let reclaimed = s.prune_blocks_below(5);
        // Permanent blocks 0..=4 plus recent entry 3.
        assert_eq!(reclaimed, 6);
        assert_eq!(s.used_slots(), used - 6);
        assert!(!s.has_block(4));
        assert!(s.has_block(5));
        assert!(s.has_block(9), "recent entry at or above the cut survives");
        assert!(s.has_data(DataId(1)), "data items are untouched");
        assert_eq!(s.prune_blocks_below(5), 0, "idempotent at the same cut");
    }
}
