//! The end-to-end edge blockchain network simulation (paper §VI).
//!
//! [`EdgeNetwork`] wires every subsystem together over the discrete-event
//! simulator: nodes generate data and broadcast metadata; the PoS round
//! picks the next miner; the miner packs metadata, runs the allocation
//! engine for data items, the block itself, and the recent-block cache,
//! then broadcasts the block; storing nodes proactively fetch data from
//! producers; requester nodes fetch data items via the metadata they find
//! in blocks; nodes that miss blocks (mobility partitions) recover them
//! from neighbors' recent-block caches. Every byte rides the transport
//! layer and lands in the overhead metrics.
//!
//! ## Fidelity notes (vs. the paper's Docker prototype)
//!
//! * On honest runs the PoS winner is computed from the global round
//!   state (every node would reach the same verdict by Eq. 7–9), so
//!   competing forks never arise; what the paper's prototype experienced
//!   as "branches" appears here as nodes with *missing blocks*, handled
//!   by the §IV-D recovery protocol. When the fault plan schedules
//!   Byzantine actions, that shortcut is replaced by per-node tip
//!   tracking through [`crate::byzantine::ByzantineEngine`]: nodes can
//!   receive conflicting tips (equivocation, withheld private forks),
//!   every foreign block is verified in full before adoption, and
//!   divergent views reconcile via live checkpointed fork choice with
//!   reorg-driven storage/allocation reconciliation.
//! * Candidates with stale chain views still participate in mining; the
//!   paper's prototype behaves the same way (a stale miner's block simply
//!   loses the longest-chain race).

use crate::account::{AccountId, Identity, Ledger};
use crate::alloc::{select_storers_scaled, AllocationContext, Placement, RegionParams};
use crate::block::Block;
use crate::byzantine::{ByzantineEngine, ByzantineOutcome, OrphanVerdict, WithheldFork};
use crate::chain::{Blockchain, CheckpointPolicy, Snapshot};
use crate::invariant::{ForkView, InvariantChecker, InvariantView};
use crate::metadata::{DataId, DataType, Location, MetadataItem};
use crate::pos::{run_round, run_round_cached, Candidate, HitTable};
use crate::slo::{LatencySummary, OverloadReport, SloMonitor, SloReport, SloThresholds};
use crate::storage::NodeStorage;
use edgechain_energy::{Battery, DeviceProfile, EnergyCategory, EnergyMeter};
use edgechain_sim::{
    gini_counts, ByzantineAction, EventQueue, FaultInjector, FaultPlan, NodeId, RunningStats,
    SimTime, Topology, TopologyConfig, TopologyError, Transport, TransportConfig,
};
use edgechain_telemetry::{self as telemetry, trace_event, RegistrySnapshot, SpanId};
use edgechain_workload::{OverloadConfig, TokenBucket, WorkloadConfig, ZipfSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Wire size of a data request message.
const DATA_REQUEST_BYTES: u64 = 256;
/// Wire size of a missing-block request message.
const BLOCK_REQUEST_BYTES: u64 = 128;
/// How long a requester waits before concluding a storer denied service.
const DENIAL_TIMEOUT: SimTime = SimTime::from_secs(1);

/// Full configuration of a simulation run. Defaults reproduce the paper's
/// §VI setup.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkConfig {
    /// Number of edge nodes (paper sweeps 10–50).
    pub nodes: usize,
    /// Network-wide data generation rate, items per minute (paper: 1–3).
    pub data_items_per_min: f64,
    /// Simulated duration in minutes (paper: 500).
    pub sim_minutes: u64,
    /// Expected PoS block interval `t0` in seconds (paper: 60).
    pub block_interval_secs: u64,
    /// Per-node storage capacity in slots (paper: 250).
    pub storage_slots: u64,
    /// Size of each data item in bytes (paper: 1 MB).
    pub data_item_bytes: u64,
    /// Fraction of nodes acting as data requesters (paper: 10 %).
    pub requester_fraction: f64,
    /// How often each requester asks for a random known item (seconds).
    pub request_interval_secs: u64,
    /// Mobility re-randomization period (seconds).
    pub mobility_interval_secs: u64,
    /// Validity period stamped on generated data items (minutes).
    pub data_valid_minutes: u64,
    /// How often expired data items are swept from stores (seconds);
    /// 0 disables sweeping (the paper's §VII notes expiration is needed
    /// for long-running deployments).
    pub expiration_sweep_secs: u64,
    /// Halve all token balances every this many blocks (paper §V-B's
    /// rescaling that keeps `B` numerically tame); `None` disables.
    pub token_rescale_blocks: Option<u64>,
    /// Run the §VII data-migration pass every this many seconds, moving
    /// the worst-placed items toward the current optimum; `None` disables.
    pub migration_interval_secs: Option<u64>,
    /// Migration decision knobs (threshold, FDC weight).
    pub migration: crate::migration::MigrationConfig,
    /// Fraction of nodes that accept storage assignments but silently
    /// deny serving data and blocks (paper §III-B.2's malicious model).
    pub malicious_fraction: f64,
    /// Run a raft instance on every node for "general information
    /// consensus" (paper §VI), replicating mobility events; its traffic —
    /// heartbeats above all — is charged to the overhead metrics like any
    /// other bytes. Off by default so Figs. 4–5 isolate the blockchain
    /// protocols, matching the paper's accounting.
    pub raft_consensus: bool,
    /// Raft timer poll period in milliseconds (when `raft_consensus`).
    pub raft_tick_ms: u64,
    /// Placement strategy (Fig. 5 compares Optimal vs Random).
    pub placement: Placement,
    /// Geometric network parameters.
    pub topology: TopologyConfig,
    /// Transport parameters.
    pub transport: TransportConfig,
    /// Device energy profile.
    pub device: DeviceProfile,
    /// Verify metadata signatures at every receiving node (slower;
    /// enabled in integration tests, off for parameter sweeps).
    pub verify_signatures: bool,
    /// FDC weight `A` in the allocation objective (paper: 1000).
    pub fdc_scale: f64,
    /// Whether miners run the §IV-C recent-block allocation (growing
    /// chosen nodes' caches). Disabling it is an ablation: every node then
    /// keeps only the single newest block.
    pub recent_block_allocation: bool,
    /// Deterministic fault schedule injected during the run: node churn,
    /// partitions, lossy links, latency spikes. Empty by default, which
    /// leaves every fault-free code path bit-identical to a build without
    /// fault support.
    pub fault_plan: FaultPlan,
    /// Extra attempts granted to a data fetch or block recovery that found
    /// no reachable source, with exponential backoff between attempts.
    pub fetch_retries: u32,
    /// Base backoff before the first retry, milliseconds; each subsequent
    /// attempt doubles it.
    pub retry_backoff_ms: u64,
    /// Let miners re-run the UFL allocation for items that lost replicas
    /// to crashes, copying data from a surviving source to the new storers
    /// (charged as real transport traffic). Only consulted when
    /// `fault_plan` schedules something.
    pub replica_repair: bool,
    /// Route allocations through the cached [`AllocationContext`] (ISSUE 3
    /// fast path): the UFL instance is built once per topology/storage
    /// state and solutions are reused across a block's items. Output is
    /// observationally identical to the uncached path (same reports, same
    /// rng stream, byte-identical traces); disabling it is a debugging /
    /// equivalence-testing aid, not a feature switch.
    pub allocation_cache: bool,
    /// Route PoS rounds through the per-height [`crate::pos::HitTable`]
    /// (ISSUE 4 fast path): each candidate's hit `Hash(POSHash_prev ‖
    /// Account)` is computed once per block height and reused by every
    /// round at that height (a block takes ~2 rounds: schedule + mine).
    /// Output is bit-identical to [`crate::pos::run_round`] — same
    /// winners, same telemetry shape, no rng consumed — so disabling it
    /// is a debugging / equivalence-testing aid, not a feature switch.
    pub pos_hit_cache: bool,
    /// Checkpoint interval in blocks for the live fork-choice rules that
    /// activate under Byzantine fault plans: honest nodes never reorg a
    /// block at or below their latest checkpoint
    /// ([`crate::chain::CheckpointPolicy`]).
    pub checkpoint_interval: u64,
    /// How long a node stays quarantined after a proven misbehavior
    /// (equivocation, forged block, tampered signature, garbage payload,
    /// repeated denials), in simulated seconds. Quarantined nodes are
    /// excluded from PoS rounds and from serving fetches, and half their
    /// stake is slashed (Eq. 7's `S_i`); they are re-admitted when the
    /// window expires.
    pub quarantine_secs: u64,
    /// Service denials a storer gets away with before the denial strikes
    /// escalate to a quarantine (only metered when a Byzantine engine is
    /// active; plain `malicious_fraction` runs keep the paper's
    /// invalidate-and-route-around behavior unchanged).
    pub denial_quarantine_threshold: u32,
    /// Collapse blocks strictly below the latest checkpoint minus
    /// [`NetworkConfig::prune_retention_blocks`] into a signed,
    /// Merkle-committed [`crate::chain::ChainAnchor`], reclaiming the
    /// block slots they occupied on every node (visible to the UFL
    /// occupancy costs). Off by default: honest runs stay bit-identical
    /// to earlier releases, and the retained chain grows O(height).
    pub prune_blocks: bool,
    /// How many blocks below the latest checkpoint stay retained when
    /// pruning (the §IV-D block-by-block recovery window). Nodes that
    /// fall behind by more than this must bootstrap from a snapshot.
    pub prune_retention_blocks: u64,
    /// Serve deep-rejoining nodes (whose next needed block is already
    /// pruned) a signed [`crate::chain::Snapshot`] — anchor, retained
    /// blocks, live metadata registry with storer maps — instead of the
    /// impossible block-by-block walk. Receivers verify the snapshot
    /// against the anchor commitment and server signature; a tampered
    /// one is rejected, the server blacklisted, and the next-nearest
    /// provider tried. Only consulted when `prune_blocks` is on.
    pub snapshot_bootstrap: bool,
    /// Meter safety invariants after *every* event on fault runs (the
    /// legacy cadence, which walks all data items per event). Off by
    /// default: the checker observes at blocks, expiry sweeps, and fault
    /// ticks — the only instants state can change in a way the rules see.
    pub invariant_every_event: bool,
    /// SLO thresholds and rolling-window geometry for the health monitor
    /// (see [`crate::slo`]). The monitor always runs — it is pure
    /// observation over numbers the simulation computes anyway — and its
    /// verdicts land in [`RunReport::slo`].
    pub slo: SloThresholds,
    /// Trust seal-time block caches on the hot path (ISSUE 4 fast path):
    /// locally sealed blocks keep their wire encoding (`Arc<[u8]>`) and
    /// Merkle leaf digests, so `wire_size`, broadcast, `fetch_data`,
    /// block recovery, and tip validation stop re-encoding / re-hashing
    /// per call. Honest validation of foreign blocks is untouched;
    /// output is observationally identical with the flag off.
    pub block_seal_cache: bool,
    /// Route allocations through the region-decomposed UFL engine (ISSUE 9
    /// scale path): the field is partitioned into radio-connected regions
    /// and each allocation solves only the data origin's region, stitched
    /// against its neighbors' open facilities. Work per allocation becomes
    /// independent of total network size — the knob that makes n = 10,000
    /// runs tractable. Unlike the other fast-path toggles this is an
    /// *approximation* of the global solve (replicas concentrate near the
    /// origin), so it defaults off and carries no bit-equivalence contract.
    pub region_alloc: bool,
    /// Coarse partition cell side in meters for `region_alloc` (default
    /// 140 m — twice the paper's 70 m radio range).
    pub region_cell_m: f64,
    /// BFS hop horizon for regional connect costs; peers beyond it take
    /// the unreachable penalty.
    pub region_horizon: u32,
    /// Retention window, in simulated seconds, for tombstone tracking
    /// state: swept data ids (`expired_ids`) older than this are forgotten
    /// and invalidated-storer records are dropped with their item, keeping
    /// tracking memory O(retention window) instead of O(run history).
    /// Resurrection detection still covers the window — a block citing an
    /// id swept longer ago than this is treated as fresh.
    pub tracking_retention_secs: u64,
    /// Open-workload section (ISSUE 10): seeded arrival processes for
    /// item generation and (optionally) demand-skewed fetches. Disabled
    /// by default, which keeps the original closed-loop generator and
    /// leaves every existing seed bit-identical — the workload RNG is a
    /// dedicated stream (`seed ^ WORKLOAD_STREAM`), never the master.
    pub workload: WorkloadConfig,
    /// Overload-protection section (ISSUE 10): admission token buckets at
    /// item generation and fetch entry (priced against the token ledger),
    /// a bounded pending queue with shed accounting, per-node in-flight
    /// fetch caps, a global retry budget, and the degradation ladder.
    /// Every limit defaults to `None`/inert.
    pub overload: OverloadConfig,
    /// Ceiling on the exponential retry backoff, milliseconds. Without it
    /// `retry_backoff_ms << attempt` reaches ~9 h by attempt 16; the
    /// default (10 min) is far above what any shipped configuration can
    /// produce, so existing runs schedule identically.
    pub retry_backoff_max_ms: u64,
    /// Uniform jitter in `[0, retry_jitter_ms]` added to every backoff,
    /// drawn from a dedicated seeded stream (`seed ^ BACKOFF_STREAM`) so
    /// enabling it never perturbs the master RNG. 0 (the default)
    /// consumes no draws and reproduces the original schedule exactly.
    pub retry_jitter_ms: u64,
    /// Master RNG seed; identical configs+seeds give identical runs.
    pub seed: u64,
}

impl Default for NetworkConfig {
    fn default() -> Self {
        NetworkConfig {
            nodes: 20,
            data_items_per_min: 1.0,
            sim_minutes: 500,
            block_interval_secs: 60,
            storage_slots: 250,
            data_item_bytes: 1_000_000,
            requester_fraction: 0.10,
            request_interval_secs: 300,
            mobility_interval_secs: 60,
            data_valid_minutes: 1440,
            expiration_sweep_secs: 300,
            token_rescale_blocks: None,
            migration_interval_secs: None,
            migration: crate::migration::MigrationConfig::default(),
            malicious_fraction: 0.0,
            raft_consensus: false,
            raft_tick_ms: 100,
            placement: Placement::Optimal,
            topology: TopologyConfig::default(),
            transport: TransportConfig::default(),
            device: DeviceProfile::galaxy_s8(),
            verify_signatures: false,
            fdc_scale: edgechain_facility::FDC_SCALE,
            recent_block_allocation: true,
            fault_plan: FaultPlan::none(),
            fetch_retries: 3,
            retry_backoff_ms: 500,
            replica_repair: true,
            allocation_cache: true,
            pos_hit_cache: true,
            checkpoint_interval: 10,
            quarantine_secs: 900,
            denial_quarantine_threshold: 3,
            prune_blocks: false,
            prune_retention_blocks: 16,
            snapshot_bootstrap: false,
            invariant_every_event: false,
            slo: SloThresholds::default(),
            block_seal_cache: true,
            region_alloc: false,
            region_cell_m: 140.0,
            region_horizon: 8,
            tracking_retention_secs: 7200,
            workload: WorkloadConfig::default(),
            overload: OverloadConfig::default(),
            retry_backoff_max_ms: 600_000,
            retry_jitter_ms: 0,
            seed: 0xED6E,
        }
    }
}

#[derive(Debug)]
enum Event {
    GenerateData,
    MineBlock,
    IssueRequest {
        requester: NodeId,
    },
    MobilityStep,
    ExpireSweep,
    MigrateData,
    RaftTick,
    RaftDeliver {
        from: edgechain_raft::PeerId,
        envelope: edgechain_raft::Envelope<GeneralEvent>,
    },
    /// Apply every fault action due now and re-arm for the next one.
    FaultTick,
    /// Backoff expired: retry a data fetch that found no live source.
    RetryFetch {
        requester: NodeId,
        data_id: DataId,
        attempt: u32,
    },
    /// Backoff expired: retry recovering a node's missing blocks.
    RetryRecover {
        node: NodeId,
        attempt: u32,
    },
    /// One open-workload fetch arrival is due (requester and target item
    /// drawn from the dedicated workload RNG stream).
    WorkloadFetch,
}

/// A "general information" record replicated through raft when
/// [`NetworkConfig::raft_consensus`] is on — the paper's example payloads
/// are membership and mobility updates.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum GeneralEvent {
    /// A node re-randomized its position inside its mobility disc.
    MobilityUpdate {
        /// The node that moved.
        node: NodeId,
        /// New x coordinate (meters).
        x: f64,
        /// New y coordinate (meters).
        y: f64,
    },
}

impl GeneralEvent {
    fn wire_size(&self) -> u64 {
        24 // node id + two f64 coordinates
    }
}

/// Aggregated results of one simulation run — the raw material of
/// Figs. 4 and 5.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Node count of the run.
    pub nodes: usize,
    /// Blocks mined (excluding genesis).
    pub blocks_mined: u64,
    /// Data items generated.
    pub data_generated: u64,
    /// Data items that could not be stored anywhere (all nodes full).
    pub data_unstored: u64,
    /// Mean per-node transferred volume (sent + received) in MB — Fig. 4(a).
    pub mean_node_overhead_mb: f64,
    /// Total bytes transmitted network-wide, MB.
    pub total_sent_mb: f64,
    /// Gini coefficient of per-node used storage slots — Fig. 4(b).
    pub storage_gini: f64,
    /// Data delivery time statistics (seconds) — Fig. 4(c)/5(a).
    pub delivery: RunningStats,
    /// 95th-percentile data delivery time (seconds), when any completed.
    pub delivery_p95: Option<f64>,
    /// Requests that found no reachable storer (retried next round).
    pub failed_requests: u64,
    /// Completed data requests.
    pub completed_requests: u64,
    /// Missing-block recoveries performed.
    pub recoveries: u64,
    /// Recovery latency statistics (seconds).
    pub recovery: RunningStats,
    /// Hop distance to the node that served each recovered block.
    pub recovery_hops: RunningStats,
    /// Observed mean block interval (seconds).
    pub mean_block_interval_secs: f64,
    /// Mean remaining battery across nodes, percent.
    pub mean_battery_percent: f64,
    /// Average replicas per stored data item.
    pub mean_replicas: f64,
    /// Expired data items evicted from stores.
    pub data_expired: u64,
    /// Service denials observed from malicious storers (requests that got
    /// no answer and were retried elsewhere, §III-B.2).
    pub denials: u64,
    /// Replica copies performed by the §VII data-migration pass.
    pub migrations: u64,
    /// Raft messages transmitted for general information consensus.
    pub raft_messages: u64,
    /// Raft heartbeats among those (the paper's §VII overhead complaint).
    pub raft_heartbeats: u64,
    /// Bytes of raft traffic (already included in the overhead numbers).
    pub raft_bytes: u64,
    /// General events committed by every live raft replica.
    pub raft_committed: u64,
    /// Mean per-node radio energy (joules) implied by the traffic volume
    /// and the device profile's per-byte TX/RX costs.
    pub mean_radio_energy_j: f64,
    /// Fault actions applied by the injector (crashes, restarts, window
    /// starts/ends).
    pub faults_injected: u64,
    /// Messages the transport dropped inside lossy-link windows.
    pub messages_dropped: u64,
    /// Backoff retries performed by data fetches and block recoveries.
    pub retries: u64,
    /// Data items re-replicated by the miner's UFL repair sweep.
    pub repairs_triggered: u64,
    /// Integral over time of the number of valid items with zero live
    /// honest copies (item-seconds); 0 outside fault runs.
    pub under_replicated_item_seconds: f64,
    /// Fraction of resolved data requests that completed (1.0 when no
    /// request resolved either way).
    pub availability: f64,
    /// Byzantine artifacts injected by the adversary engine: equivocation
    /// pairs, forged blocks, withheld forks, tampered signatures, garbage
    /// payloads. Counted by identity (an equivocation pair observed by
    /// many nodes is one artifact).
    pub byz_injected: u64,
    /// Byzantine artifacts detected by at least one honest node
    /// (verification failure, equivocation proof, undecodable payload,
    /// late fork release).
    pub byz_detected: u64,
    /// Chain reorganizations performed by live fork choice: per-node
    /// adoptions of the canonical branch plus trunk reorgs from released
    /// private forks.
    pub reorgs: u64,
    /// Deepest reorg observed, in discarded blocks.
    pub max_reorg_depth: u64,
    /// Quarantines imposed on misbehaving nodes.
    pub quarantine_events: u64,
    /// Quarantined nodes re-admitted after their window expired.
    pub readmissions: u64,
    /// Blocks collapsed into the chain anchor by checkpoint-anchored
    /// pruning ([`NetworkConfig::prune_blocks`]).
    pub blocks_pruned: u64,
    /// Blocks physically retained at the end of the run (bounded by the
    /// checkpoint interval plus the retention window when pruning is on;
    /// equal to the chain height otherwise).
    pub retained_blocks: u64,
    /// Snapshots assembled and sent to deep-rejoining nodes.
    pub snapshots_served: u64,
    /// Snapshots that verified and were adopted by a rejoining node.
    pub snapshots_applied: u64,
    /// Snapshots rejected at verification (tampered or undecodable);
    /// each one blacklists its server for the requesting node.
    pub snapshots_rejected: u64,
    /// Peak network-wide storage occupancy (used slots summed over all
    /// nodes, sampled at every mined block). Flat under pruning; grows
    /// with the chain without it.
    pub peak_storage_slots: u64,
    /// Peak number of tombstone tracking entries held at once (swept ids +
    /// invalidated-storer pairs + snapshot blacklist pairs + stashed
    /// Byzantine orphans), sampled at every mined block. Bounded by the
    /// [`NetworkConfig::tracking_retention_secs`] window, not run length.
    pub peak_tracking_entries: u64,
    /// Hard safety violations caught by the invariant checker — durable
    /// data loss or a corrupted chain prefix. Must stay 0.
    pub invariant_violations: u64,
    /// Inclusion latency (data generation → packing block mined), seconds:
    /// count plus p50/p95/p99 over every packed item.
    pub inclusion_latency: LatencySummary,
    /// Fetch latency (request issued → payload delivered), seconds:
    /// count plus p50/p95/p99 over every completed request. The p95 here
    /// equals [`RunReport::delivery_p95`], kept for compatibility.
    pub fetch_latency: LatencySummary,
    /// SLO health verdict: rolling-window breach alerts plus the end-of-run
    /// latency/availability/safety summary (see [`crate::slo`]). Computed
    /// unconditionally — it never consults the RNG — so it is identical
    /// whether or not telemetry or spans were armed.
    pub slo: SloReport,
    /// Overload accounting: offered vs admitted vs shed load, retry-budget
    /// denials, degradation-ladder activity, and queue high-water marks
    /// (see [`crate::slo::OverloadReport`]). Offered/admitted counters and
    /// queue peaks are maintained on every run; the protection counters
    /// stay zero unless [`NetworkConfig::overload`] sets limits.
    pub overload: OverloadReport,
    /// Deterministic summary of the telemetry registry, when a session was
    /// armed ([`edgechain_telemetry::enable`]) for the run; `None`
    /// otherwise, so reports from un-instrumented runs stay bit-identical
    /// to pre-telemetry builds.
    pub telemetry: Option<RegistrySnapshot>,
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "run: {} nodes, {} blocks, {} items ({} unstored)",
            self.nodes, self.blocks_mined, self.data_generated, self.data_unstored
        )?;
        writeln!(
            f,
            "  overhead: {:.1} MB/node ({:.1} MB sent total)",
            self.mean_node_overhead_mb, self.total_sent_mb
        )?;
        writeln!(f, "  storage gini: {:.4}", self.storage_gini)?;
        writeln!(
            f,
            "  delivery: {} ({} failed)",
            self.delivery, self.failed_requests
        )?;
        writeln!(f, "  recoveries: {} ({})", self.recoveries, self.recovery)?;
        if self.data_expired > 0 || self.denials > 0 {
            writeln!(
                f,
                "  expired: {} items, denials: {}",
                self.data_expired, self.denials
            )?;
        }
        if self.faults_injected > 0 {
            writeln!(
                f,
                "  faults: {} injected, {} msgs dropped, {} retries, \
                 {} repairs, availability {:.3}, {} violations",
                self.faults_injected,
                self.messages_dropped,
                self.retries,
                self.repairs_triggered,
                self.availability,
                self.invariant_violations
            )?;
        }
        if self.byz_injected > 0 || self.quarantine_events > 0 {
            writeln!(
                f,
                "  byzantine: {} injected, {} detected, {} reorgs (max depth {}), \
                 {} quarantines, {} readmissions",
                self.byz_injected,
                self.byz_detected,
                self.reorgs,
                self.max_reorg_depth,
                self.quarantine_events,
                self.readmissions
            )?;
        }
        if self.blocks_pruned > 0 || self.snapshots_served > 0 {
            writeln!(
                f,
                "  lifecycle: {} blocks pruned ({} retained), snapshots \
                 {} served / {} applied / {} rejected, peak storage {} slots",
                self.blocks_pruned,
                self.retained_blocks,
                self.snapshots_served,
                self.snapshots_applied,
                self.snapshots_rejected,
                self.peak_storage_slots
            )?;
        }
        if self.peak_tracking_entries > 0 {
            writeln!(
                f,
                "  tracking: peak {} tombstone entries",
                self.peak_tracking_entries
            )?;
        }
        writeln!(f, "  inclusion latency: {}", self.inclusion_latency)?;
        writeln!(f, "  fetch latency: {}", self.fetch_latency)?;
        writeln!(f, "  slo: {}", self.slo)?;
        if self.overload.engaged() {
            writeln!(f, "  overload: {}", self.overload)?;
        }
        if let Some(snap) = &self.telemetry {
            writeln!(f, "  telemetry: {} metrics captured", snap.entries.len())?;
        }
        write!(
            f,
            "  block interval: {:.1} s, battery: {:.1} %",
            self.mean_block_interval_secs, self.mean_battery_percent
        )
    }
}

/// The running simulation.
pub struct EdgeNetwork {
    config: NetworkConfig,
    topo: Topology,
    transport: Transport,
    queue: EventQueue<Event>,
    rng: StdRng,

    identities: Vec<Identity>,
    account_of: Vec<AccountId>,
    node_of_account: HashMap<AccountId, NodeId>,
    storage: Vec<NodeStorage>,
    batteries: Vec<Battery>,
    meters: Vec<EnergyMeter>,

    chain: Blockchain,
    ledger: Ledger,
    /// Highest contiguous block index each node holds a view of.
    node_height: Vec<u64>,
    /// All block indices each node has seen (contiguous or not).
    node_known: Vec<BTreeSet<u64>>,

    pending_metadata: Vec<MetadataItem>,
    /// `data_id → (metadata, index of the packing block)`.
    data_registry: HashMap<DataId, (MetadataItem, u64)>,
    next_data_id: u64,
    requesters: Vec<NodeId>,
    malicious: Vec<bool>,
    /// Globally-known invalidated (data, storer) pairs ("everyone will be
    /// informed of this information", §III-B.2).
    invalid_storers: std::collections::HashSet<(DataId, NodeId)>,
    raft_nodes: Vec<edgechain_raft::RaftNode<GeneralEvent>>,
    raft_messages: u64,
    raft_heartbeats: u64,
    raft_bytes: u64,

    injector: FaultInjector,
    /// Byzantine adversary state: per-node chain views, armed actions,
    /// quarantine. `Some` only when the fault plan schedules Byzantine
    /// actions, so honest runs stay bit-identical to earlier releases.
    byz: Option<ByzantineEngine>,
    checker: InvariantChecker,
    retries: u64,
    repairs_triggered: u64,
    /// Cached UFL instance/solution shared by all allocation call sites
    /// (consulted when `config.allocation_cache` is on).
    alloc_ctx: AllocationContext,
    /// Per-height PoS hit cache shared by every round at one height
    /// (consulted when `config.pos_hit_cache` is on).
    pos_hits: HitTable,

    // metrics
    delivery: RunningStats,
    delivery_samples: edgechain_sim::SampleSet,
    /// Per-item inclusion latency samples (generation → packing block).
    inclusion_samples: edgechain_sim::SampleSet,
    /// Rolling-window SLO health monitor; pure observation, always on.
    slo: SloMonitor,
    /// Open-span bookkeeping for the causal trace layer. `Some` only when
    /// spans were armed ([`edgechain_telemetry::enable_spans`]) at run
    /// start, so untraced runs never touch it.
    spans: Option<SpanTracker>,
    recovery: RunningStats,
    failed_requests: u64,
    completed_requests: u64,
    recoveries: u64,
    recovery_hops: RunningStats,
    data_unstored: u64,
    data_expired: u64,
    denials: u64,
    migrations: u64,
    replica_total: u64,
    replica_items: u64,
    block_timestamps: Vec<u64>,

    // chain lifecycle
    /// Expiry-ordered queue over the live registry: `(expiry_secs, id)`
    /// min-heap so the sweep pops only what is actually due instead of
    /// scanning every live item.
    expiry_heap: std::collections::BinaryHeap<std::cmp::Reverse<(u64, DataId)>>,
    /// Ids that have been swept. A swept id reappearing in a later block
    /// is a finalized-then-resurrected violation. Entries older than
    /// [`NetworkConfig::tracking_retention_secs`] are garbage-collected
    /// via `expired_log`, bounding the set by the retention window.
    expired_ids: std::collections::HashSet<DataId>,
    /// Sweep-time FIFO over `expired_ids` (`(sweep_secs, id)`), popped by
    /// the retention GC.
    expired_log: std::collections::VecDeque<(u64, DataId)>,
    /// High-water mark of tombstone tracking entries, sampled per block.
    peak_tracking_entries: u64,
    /// Resurrections observed since the last invariant observation.
    resurrected_pending: u64,
    /// `(rejoiner, server)` pairs that served a tampered or undecodable
    /// snapshot — never asked again by that rejoiner.
    snapshot_blacklist: std::collections::HashSet<(NodeId, NodeId)>,
    blocks_pruned: u64,
    snapshots_served: u64,
    snapshots_applied: u64,
    snapshots_rejected: u64,
    peak_storage_slots: u64,

    // open workload & overload protection (ISSUE 10)
    /// Dedicated RNG stream for arrival sampling and popularity draws;
    /// disabled workloads never touch it, so the master stream is
    /// unaffected either way.
    workload_rng: StdRng,
    /// Dedicated RNG stream for retry-backoff jitter; consulted only when
    /// `retry_jitter_ms > 0`.
    backoff_rng: StdRng,
    /// Popularity sampler for open-workload fetches.
    zipf: ZipfSampler,
    /// Admission bucket at item generation (`None` = unlimited).
    item_bucket: Option<TokenBucket>,
    /// Admission bucket at fetch entry (`None` = unlimited).
    fetch_bucket: Option<TokenBucket>,
    /// Global retry budget (`None` = unlimited).
    retry_bucket: Option<TokenBucket>,
    /// Run-wide overload accounting (folds into the report).
    overload: OverloadReport,
    /// Current degradation-ladder rung, recomputed at each mined block.
    degrade_level: u8,
    /// Scheduled-but-unresolved `RetryFetch` events per `(requester,
    /// data_id)` key — the fetch backlog. Entries stranded past the sim
    /// horizon are explicit `exhausted` failures, never silent.
    fetch_backlog: HashMap<(usize, u64), u32>,
    /// Per-node count of backlogged fetches (mirror of `fetch_backlog`).
    inflight_fetches: Vec<u32>,
}

/// Open-span bookkeeping for the causal trace layer.
///
/// Span identity lives in the telemetry session; this side table only
/// remembers which [`SpanId`]s belong to which in-flight protocol
/// artifacts so lifecycle edges that fire many events apart (generate →
/// pack → replicate, request → retry → deliver) can find their span
/// again. Item entries are kept for the whole run — fetch spans link
/// `follows` edges back to the item lifecycle long after it closed.
#[derive(Debug, Default)]
struct SpanTracker {
    /// Root + PoS-child spans of the block scheduled to be mined next.
    next_block: Option<(SpanId, SpanId)>,
    /// `data id → (item.lifecycle root, item.pend child)`.
    items: HashMap<u64, (SpanId, SpanId)>,
    /// `(requester, data id) → fetch.lifecycle root` for in-flight fetches.
    fetches: HashMap<(usize, u64), SpanId>,
    /// `(requester, data id) → fetch.backoff span` awaiting its retry.
    fetch_backoffs: HashMap<(usize, u64), SpanId>,
    /// `node → quarantine.window span` for currently quarantined nodes.
    quarantines: HashMap<usize, SpanId>,
}

impl EdgeNetwork {
    /// Builds the network: places nodes, keys them, elects requester roles,
    /// and schedules the initial events.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError`] when no connected placement exists for the
    /// requested node count.
    ///
    /// # Panics
    ///
    /// Panics when [`NetworkConfig::fault_plan`] fails
    /// [`FaultPlan::validate`] for the configured node count (out-of-range
    /// node ids, empty windows, bad probabilities, …).
    pub fn new(config: NetworkConfig) -> Result<Self, TopologyError> {
        config
            .fault_plan
            .validate(config.nodes)
            .expect("fault plan must be valid for the configured node count");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let topo = Topology::random_connected(config.nodes, config.topology.clone(), &mut rng)?;
        let identities: Vec<Identity> = (0..config.nodes)
            .map(|i| Identity::from_seed(config.seed.wrapping_add(i as u64)))
            .collect();
        let account_of: Vec<AccountId> = identities.iter().map(|id| id.account()).collect();
        let node_of_account: HashMap<AccountId, NodeId> = account_of
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, NodeId(i)))
            .collect();
        let n_requesters =
            ((config.nodes as f64 * config.requester_fraction).ceil() as usize).max(1);
        let mut ids: Vec<NodeId> = (0..config.nodes).map(NodeId).collect();
        // Deterministic shuffle for requester roles.
        for i in (1..ids.len()).rev() {
            let j = rng.gen_range(0..=i);
            ids.swap(i, j);
        }
        let requesters: Vec<NodeId> = ids.iter().copied().take(n_requesters).collect();
        // Malicious role placement. With a seeded `FaultPlan::roles`
        // assignment, a dedicated RNG stream draws the roles from the
        // non-requester pool — the master stream is untouched, so varying
        // the role seed moves *only* who misbehaves. Without one, the
        // legacy deterministic tail draw applies (bit-identical to prior
        // releases): malicious nodes come from the non-requester tail so
        // every request exercises the denial path from the outside.
        let mut malicious = vec![false; config.nodes];
        match config.fault_plan.roles {
            Some(roles) => {
                let n = (config.nodes as f64 * roles.malicious_fraction).round() as usize;
                let mut role_rng = StdRng::seed_from_u64(roles.seed);
                let mut pool: Vec<NodeId> = ids.iter().copied().skip(n_requesters).collect();
                for _ in 0..n.min(pool.len()) {
                    let j = role_rng.gen_range(0..pool.len());
                    malicious[pool.swap_remove(j).0] = true;
                }
            }
            None => {
                let n_malicious =
                    (config.nodes as f64 * config.malicious_fraction).round() as usize;
                for v in ids.iter().rev().take(n_malicious) {
                    malicious[v.0] = true;
                }
            }
        }

        // Loss draws come from a dedicated stream derived from the master
        // seed, so lossy runs are a pure function of (config, seed) and
        // fault-free runs never consult it.
        let mut transport = Transport::new(config.transport);
        transport.seed_faults(config.seed ^ 0x70A5_F417);
        let injector = FaultInjector::new(&config.fault_plan);
        // The Byzantine engine exists only when the plan schedules
        // adversarial consensus actions; its RNG is a dedicated stream so
        // forged material never perturbs the honest draws.
        let byz = if config.fault_plan.has_byzantine() {
            Some(ByzantineEngine::new(
                config.nodes,
                &config.fault_plan.byzantine_nodes(),
                config.seed ^ 0xB12A_77E1,
                CheckpointPolicy {
                    interval: config.checkpoint_interval.max(1),
                },
                config.quarantine_secs,
                config.denial_quarantine_threshold.max(1),
            ))
        } else {
            None
        };

        // Overload machinery. Buckets are `None` (unlimited) unless the
        // config prices them; the dedicated RNG streams keep the master
        // stream untouched whether or not the workload engine is on.
        let workload_rng = StdRng::seed_from_u64(config.seed ^ edgechain_workload::WORKLOAD_STREAM);
        let backoff_rng = StdRng::seed_from_u64(config.seed ^ edgechain_workload::BACKOFF_STREAM);
        let zipf = ZipfSampler::new(config.workload.zipf_exponent);
        let item_bucket = config
            .overload
            .admission_items_per_min
            .map(|r| TokenBucket::per_minute(r, config.overload.admission_items_burst));
        let fetch_bucket = config
            .overload
            .admission_fetches_per_min
            .map(|r| TokenBucket::per_minute(r, config.overload.admission_fetches_burst));
        let retry_bucket = config
            .overload
            .retry_budget_per_min
            .map(|r| TokenBucket::per_minute(r, config.overload.retry_budget_burst));

        let mut network = EdgeNetwork {
            topo,
            transport,
            queue: EventQueue::new(),
            identities,
            account_of,
            node_of_account,
            storage: vec![NodeStorage::new(config.storage_slots); config.nodes],
            batteries: vec![Battery::full(&config.device); config.nodes],
            meters: vec![EnergyMeter::new(); config.nodes],
            chain: Blockchain::new(),
            ledger: Ledger::new(),
            node_height: vec![0; config.nodes],
            node_known: vec![BTreeSet::from([0u64]); config.nodes],
            pending_metadata: Vec::new(),
            data_registry: HashMap::new(),
            next_data_id: 0,
            requesters,
            malicious,
            invalid_storers: std::collections::HashSet::new(),
            raft_nodes: Vec::new(),
            delivery: RunningStats::new(),
            delivery_samples: edgechain_sim::SampleSet::new(),
            inclusion_samples: edgechain_sim::SampleSet::new(),
            slo: SloMonitor::new(config.slo.clone()),
            spans: None,
            recovery: RunningStats::new(),
            failed_requests: 0,
            completed_requests: 0,
            recoveries: 0,
            recovery_hops: RunningStats::new(),
            data_unstored: 0,
            data_expired: 0,
            denials: 0,
            migrations: 0,
            raft_messages: 0,
            raft_heartbeats: 0,
            raft_bytes: 0,
            injector,
            byz,
            checker: InvariantChecker::new(SimTime::ZERO),
            retries: 0,
            repairs_triggered: 0,
            alloc_ctx: {
                let ctx = AllocationContext::new(config.fdc_scale);
                if config.region_alloc {
                    ctx.with_regions(RegionParams {
                        cell_m: config.region_cell_m,
                        horizon: config.region_horizon,
                    })
                } else {
                    ctx
                }
            },
            pos_hits: HitTable::new(),
            replica_total: 0,
            replica_items: 0,
            block_timestamps: vec![0],
            expiry_heap: std::collections::BinaryHeap::new(),
            expired_ids: std::collections::HashSet::new(),
            expired_log: std::collections::VecDeque::new(),
            peak_tracking_entries: 0,
            resurrected_pending: 0,
            snapshot_blacklist: std::collections::HashSet::new(),
            blocks_pruned: 0,
            snapshots_served: 0,
            snapshots_applied: 0,
            snapshots_rejected: 0,
            peak_storage_slots: 0,
            workload_rng,
            backoff_rng,
            zipf,
            item_bucket,
            fetch_bucket,
            retry_bucket,
            overload: OverloadReport::default(),
            degrade_level: 0,
            fetch_backlog: HashMap::new(),
            inflight_fetches: vec![0; config.nodes],
            rng,
            config,
        };
        network.bootstrap_events();
        Ok(network)
    }

    fn bootstrap_events(&mut self) {
        // Everyone stores the genesis block in their recent cache.
        for s in &mut self.storage {
            s.cache_recent(0);
        }
        let first_gen = self.sample_generation_gap();
        self.queue.schedule(first_gen, Event::GenerateData);
        if self.config.workload.enabled && self.config.workload.fetches.is_some() {
            self.schedule_workload_fetch();
        }
        self.schedule_next_block();
        for r in self.requesters.clone() {
            let jitter = SimTime::from_secs(
                self.rng
                    .gen_range(1..=self.config.request_interval_secs.max(2)),
            );
            self.queue
                .schedule(jitter, Event::IssueRequest { requester: r });
        }
        self.queue.schedule(
            SimTime::from_secs(self.config.mobility_interval_secs),
            Event::MobilityStep,
        );
        if self.config.expiration_sweep_secs > 0 {
            self.queue.schedule(
                SimTime::from_secs(self.config.expiration_sweep_secs),
                Event::ExpireSweep,
            );
        }
        if let Some(every) = self.config.migration_interval_secs {
            if every > 0 {
                self.queue
                    .schedule(SimTime::from_secs(every), Event::MigrateData);
            }
        }
        if let Some(t) = self.injector.next_due() {
            self.queue.schedule(t, Event::FaultTick);
        }
        if self.config.raft_consensus {
            let peers: Vec<edgechain_raft::PeerId> =
                (0..self.config.nodes).map(edgechain_raft::PeerId).collect();
            self.raft_nodes = peers
                .iter()
                .map(|&p| {
                    edgechain_raft::RaftNode::new(
                        p,
                        peers.clone(),
                        edgechain_raft::RaftConfig {
                            // Raft's timing requirement (broadcast time <<
                            // election timeout) must hold on the *radio*: a
                            // single 1 MB data transfer occupies a link for
                            // ~410 ms per hop, so the library's 300-600 ms
                            // LAN-profile timeouts would fire on every bulk
                            // transfer and the cluster would live in election
                            // storms. Stretch the timeouts well past worst-case
                            // queueing delay and keep heartbeats proportional.
                            election_timeout_min: SimTime::from_millis(2_000),
                            election_timeout_max: SimTime::from_millis(4_000),
                            heartbeat_interval: SimTime::from_millis(500),
                            // Mobility keeps flapping links; without pre-vote a
                            // node that drifts out of range and back deposes a
                            // healthy leader on every return.
                            pre_vote: true,
                            ..edgechain_raft::RaftConfig::default()
                        },
                        self.config.seed ^ (p.0 as u64).rotate_left(17),
                    )
                })
                .collect();
            self.queue.schedule(
                SimTime::from_millis(self.config.raft_tick_ms.max(1)),
                Event::RaftTick,
            );
        }
    }

    fn sample_generation_gap(&mut self) -> SimTime {
        if self.config.workload.enabled {
            // Open workload: the arrival process dictates absolute arrival
            // times on its own seeded stream (Lewis–Shedler thinning for
            // the time-varying shapes). A silent process parks the next
            // event past the horizon so the queue still drains cleanly.
            let now_secs = self.queue.now().as_millis() as f64 / 1000.0;
            let t = self
                .config
                .workload
                .arrivals
                .next_arrival_secs(now_secs, &mut self.workload_rng);
            if !t.is_finite() {
                return SimTime::from_secs(self.config.sim_minutes * 60 + 3600);
            }
            return SimTime::from_millis((t * 1000.0).ceil() as u64)
                .max(self.queue.now() + SimTime::from_millis(1));
        }
        // Closed loop: exponential inter-arrivals with mean 60/rate seconds.
        let rate_per_sec = self.config.data_items_per_min / 60.0;
        let u: f64 = self.rng.gen_range(1e-9..1.0);
        let gap = -u.ln() / rate_per_sec;
        self.queue.now() + SimTime::from_secs_f64(gap.clamp(0.5, 3600.0))
    }

    /// Nodes currently able to take part in a PoS round: everyone the
    /// fault injector hasn't taken down. A crashed node's tokens and
    /// stored items still exist, but its miner process isn't running.
    /// Under a Byzantine engine, quarantined nodes (and a withholding
    /// miner sitting out its own failed round) are excluded as well.
    fn live_miners(&self, now: SimTime) -> Vec<usize> {
        (0..self.config.nodes)
            .filter(|&i| self.topo.is_active(NodeId(i)))
            .filter(|&i| {
                self.byz
                    .as_ref()
                    .is_none_or(|e| !e.is_excluded(NodeId(i), now, self.chain.height()))
            })
            .collect()
    }

    fn pos_candidates(&self, miners: &[usize]) -> Vec<Candidate> {
        miners
            .iter()
            .map(|&i| Candidate {
                account: self.account_of[i],
                tokens: self.ledger.balance(&self.account_of[i]),
                stored_items: self.storage[i].q_value(),
            })
            .collect()
    }

    /// Runs one PoS round from the live state and schedules the mining
    /// event at the winner's earliest time.
    fn schedule_next_block(&mut self) {
        if let Some(sp) = self.spans.as_mut() {
            // The block lifecycle starts when its PoS round is drawn: the
            // `block.pos` child covers the winner's mining delay, so the
            // root span captures schedule → adoption end to end.
            let t = self.queue.now().as_millis();
            let root = telemetry::span_start("block.lifecycle", t, SpanId::NONE);
            let pos = telemetry::span_start("block.pos", t, root);
            sp.next_block = Some((root, pos));
        }
        let miners = self.live_miners(self.queue.now());
        if miners.is_empty() {
            // Everyone is down. Poll again after a block interval; a
            // restart in the meantime revives mining.
            self.queue.schedule(
                self.queue.now() + SimTime::from_secs(self.config.block_interval_secs.max(1)),
                Event::MineBlock,
            );
            return;
        }
        let candidates = self.pos_candidates(&miners);
        let outcome = self.pos_round(&candidates);
        // Every live node runs the per-second check loop until the round
        // ends: charge PoS checking energy (Fig. 6's PoS cost model).
        for &i in &miners {
            let joules = self.config.device.pos_check_energy * outcome.delay_secs as f64;
            self.meters[i].record(EnergyCategory::PosChecking, joules);
            self.batteries[i].consume(joules);
        }
        let prev_ts = SimTime::from_secs(self.chain.tip().timestamp_secs);
        let fire_at = (prev_ts + SimTime::from_secs(outcome.delay_secs)).max(self.queue.now());
        self.queue.schedule(fire_at, Event::MineBlock);
    }

    /// Executes the whole run and returns the report.
    pub fn run(self) -> RunReport {
        self.run_with_chain().0
    }

    /// Executes the run and also hands back the final canonical chain,
    /// letting callers audit it (validation, ledger derivation, …).
    pub fn run_with_chain(mut self) -> (RunReport, Blockchain) {
        self.drive();
        let chain = self.chain.clone();
        (self.into_report(), chain)
    }

    /// Executes the run and also reports the end-of-run topology memory
    /// estimate (adjacency plus route-state bytes) — the scale bench's
    /// allocated-bytes column. Deliberately *not* a [`RunReport`] field:
    /// the dense and sparse route representations legitimately differ
    /// here while every simulation outcome stays byte-identical.
    pub fn run_with_memory(mut self) -> (RunReport, usize) {
        self.drive();
        let bytes = self.topo.memory_bytes();
        (self.into_report(), bytes)
    }

    /// The event loop shared by every `run*` entry point.
    fn drive(&mut self) {
        let horizon = SimTime::from_secs(self.config.sim_minutes * 60);
        // Arm the span tracker only when the caller opted in; untraced
        // runs keep `spans: None` and skip every bookkeeping branch.
        if telemetry::spans_enabled() {
            self.spans = Some(SpanTracker::default());
        }
        // Invariants are only metered when faults are in play: the checker
        // walks every data item per event, which a long fault-free sweep
        // shouldn't pay for.
        let fault_run = !self.config.fault_plan.is_empty();
        while let Some(t) = self.queue.peek_time() {
            if t > horizon {
                break;
            }
            let (now, event) = self.queue.pop().expect("peeked event exists");
            // Metering cadence: by default only the events that can move
            // durable state (block packing, expiry sweeps, fault actions)
            // pay for a full invariant walk; `invariant_every_event`
            // restores the exhaustive per-event schedule.
            let meter = fault_run
                && (self.config.invariant_every_event
                    || matches!(
                        &event,
                        Event::MineBlock | Event::ExpireSweep | Event::FaultTick
                    ));
            match event {
                Event::GenerateData => self.on_generate_data(now),
                Event::MineBlock => self.on_mine_block(now),
                Event::IssueRequest { requester } => self.on_issue_request(requester, now),
                Event::MobilityStep => self.on_mobility(now),
                Event::ExpireSweep => self.on_expire_sweep(now),
                Event::MigrateData => self.on_migrate(now),
                Event::RaftTick => self.on_raft_tick(now),
                Event::RaftDeliver { from, envelope } => self.on_raft_deliver(from, envelope, now),
                Event::FaultTick => self.on_fault_tick(now),
                Event::RetryFetch {
                    requester,
                    data_id,
                    attempt,
                } => self.on_retry_fetch(requester, data_id, attempt, now),
                Event::RetryRecover { node, attempt } => self.on_retry_recover(node, attempt, now),
                Event::WorkloadFetch => self.on_workload_fetch(now),
            }
            if meter {
                self.observe_invariants(now);
            }
        }
        if fault_run {
            // Close the under-replication meter at the horizon.
            self.observe_invariants(horizon);
        }
        // Fetches still waiting on a scheduled retry when the horizon hits
        // never resolved: count each as an explicit exhausted failure
        // instead of leaving it silently in flight forever. Keys are
        // drained in sorted order so the trace is deterministic.
        let mut stranded: Vec<(usize, u64)> = self.fetch_backlog.keys().copied().collect();
        stranded.sort_unstable();
        for (req, id) in stranded {
            self.failed_requests += 1;
            self.overload.fetch_exhausted += 1;
            self.slo.record_failure(horizon.as_millis());
            telemetry::counter_add("request.exhausted", 1);
            trace_event!(
                "request.exhausted",
                horizon.as_millis(),
                requester = req as u64,
                id = id
            );
            self.close_fetch_span(NodeId(req), DataId(id), horizon.as_millis(), "exhausted");
        }
        self.fetch_backlog.clear();
        if self.spans.is_some() {
            // Whatever is still in flight at the horizon (unpacked items,
            // pending fetch backoffs, open quarantines, the scheduled next
            // block) closes there, in span-id order — deterministic.
            telemetry::span_end_all(horizon.as_millis());
        }
    }

    /// Feeds the current network state to the [`InvariantChecker`].
    fn observe_invariants(&mut self, now: SimTime) {
        let items =
            crate::invariant::valid_items(self.data_registry.values(), now.as_secs(), |m| {
                self.node_of_account.get(&m.producer).copied()
            });
        let node_max_known: Vec<u64> = self
            .node_known
            .iter()
            .map(|known| known.last().copied().unwrap_or(0))
            .collect();
        // Fork-consistency rules apply only when per-node chains exist;
        // nodes with a Byzantine role are exempt (their chains are
        // adversarial by construction).
        let honest: Vec<bool> = match &self.byz {
            Some(e) => e.byz_role.iter().map(|&b| !b).collect(),
            None => Vec::new(),
        };
        let resurrected = std::mem::take(&mut self.resurrected_pending);
        self.checker.observe(
            now,
            &InvariantView {
                topo: &self.topo,
                storage: &self.storage,
                malicious: &self.malicious,
                items: &items,
                resurrected_items: resurrected,
                chain_height: self.chain.height(),
                node_height: &self.node_height,
                node_max_known: &node_max_known,
                forks: self.byz.as_ref().map(|e| ForkView {
                    canonical: &self.chain,
                    node_chains: &e.chains,
                    honest: &honest,
                    checkpoint_interval: e.policy().interval,
                }),
            },
        );
    }

    /// Applies every fault action due now and re-arms the tick for the
    /// next scheduled action.
    fn on_fault_tick(&mut self, now: SimTime) {
        for action in self.injector.drain_due(now) {
            if let edgechain_sim::FaultAction::Byzantine(node, act) = action {
                self.on_byzantine_action(node, act, now);
                continue;
            }
            action.apply(&mut self.topo, &mut self.transport);
            if let edgechain_sim::FaultAction::Restart(v) = action {
                // A node returning from a crash proactively asks neighbors
                // for the blocks it slept through (§IV-D), after a short
                // backoff so the radio settles.
                self.queue.schedule(
                    now + SimTime::from_millis(self.config.retry_backoff_ms.max(1)),
                    Event::RetryRecover {
                        node: v,
                        attempt: 0,
                    },
                );
            }
        }
        if let Some(t) = self.injector.next_due() {
            self.queue.schedule(t.max(now), Event::FaultTick);
        }
    }

    /// Routes one scheduled Byzantine action: mining-triggered attacks
    /// (equivocation, tampering, withholding) are armed for the node's
    /// next election win; wire-level attacks (forged blocks, garbage
    /// payloads) execute immediately.
    fn on_byzantine_action(&mut self, node: NodeId, action: ByzantineAction, now: SimTime) {
        if self.byz.is_none() {
            return;
        }
        match action {
            ByzantineAction::Equivocate
            | ByzantineAction::TamperSignature
            | ByzantineAction::Withhold { .. } => {
                if let Some(e) = self.byz.as_mut() {
                    e.arm(node, action);
                }
            }
            ByzantineAction::ForgeBlock => self.byz_forge_block(node, now),
            ByzantineAction::GarbagePayload { bytes } => {
                self.byz_garbage_payload(node, bytes, now);
            }
        }
    }

    /// Counts one injected Byzantine artifact and returns its id.
    fn note_byz_injected(&mut self, now: SimTime, kind: &'static str) -> u64 {
        let artifact = self
            .byz
            .as_mut()
            .expect("caller checked the engine exists")
            .note_injected();
        telemetry::counter_add("byz.injected", 1);
        trace_event!(
            "byz.injected",
            now.as_millis(),
            kind = kind,
            artifact = artifact
        );
        artifact
    }

    /// Counts the first honest detection of an artifact.
    fn note_byz_detected(&mut self, artifact: u64, now: SimTime, kind: &'static str) {
        if let Some(e) = self.byz.as_mut() {
            if e.note_detected(artifact) {
                telemetry::counter_add("byz.detected", 1);
                trace_event!(
                    "byz.detected",
                    now.as_millis(),
                    kind = kind,
                    artifact = artifact
                );
            }
        }
    }

    /// Quarantines a proven misbehaver and slashes half its stake (the
    /// PoS target's `S_i`, Eq. 7, shrinks with it). Re-quarantining an
    /// already quarantined node neither re-counts nor re-slashes.
    fn punish(&mut self, culprit: NodeId, now: SimTime, reason: &'static str) {
        let fresh = match self.byz.as_mut() {
            Some(e) => e.quarantine(culprit, now),
            None => return,
        };
        if !fresh {
            return;
        }
        let account = self.account_of[culprit.0];
        let slash = self.ledger.balance(&account) / 2;
        let taken = self.ledger.debit(account, slash);
        if let Some(e) = self.byz.as_mut() {
            e.record_slash(culprit, taken);
        }
        telemetry::counter_add("byz.quarantines", 1);
        trace_event!(
            "byz.quarantine",
            now.as_millis(),
            node = culprit.0,
            reason = reason,
            slash = taken
        );
        if let Some(sp) = self.spans.as_mut() {
            let q = telemetry::span_start("quarantine.window", now.as_millis(), SpanId::NONE);
            telemetry::span_field(q, "node", culprit.0);
            telemetry::span_field(q, "reason", reason);
            sp.quarantines.insert(culprit.0, q);
        }
    }

    /// Handles a two-headers-same-height-same-miner equivocation proof:
    /// counts the artifact (once) and quarantines the culprit.
    fn handle_equivocation_proof(&mut self, height: u64, miner: AccountId, now: SimTime) {
        let artifact = self
            .byz
            .as_ref()
            .and_then(|e| e.lookup_equivocation(height, miner));
        if let Some(a) = artifact {
            self.note_byz_detected(a, now, "byz_equivocate");
        }
        if let Some(&culprit) = self.node_of_account.get(&miner) {
            self.punish(culprit, now, "equivocation");
        }
    }

    /// Reconciles node `v`'s chain view with the canonical chain,
    /// counting reorgs and surfacing equivocation proofs.
    fn byz_sync(&mut self, v: NodeId, now: SimTime) {
        let target = self.node_height[v.0];
        let result = match self.byz.as_mut() {
            Some(e) => e.sync(v, &self.chain, target),
            None => return,
        };
        if let Some(depth) = result.reorg_depth {
            telemetry::counter_add("chain.reorgs", 1);
            telemetry::record("chain.reorg_depth", depth as f64);
            trace_event!("chain.reorg", now.as_millis(), node = v.0, depth = depth);
        }
        for (height, miner) in result.equivocations {
            self.handle_equivocation_proof(height, miner, now);
        }
        // A sync may have landed the honest block at a stashed orphan's
        // height — late proof of forgery, tampering, or equivocation.
        let verdicts = match self.byz.as_mut() {
            Some(e) => e.resolve_orphans(v),
            None => Vec::new(),
        };
        for verdict in verdicts {
            match verdict {
                OrphanVerdict::Forged {
                    artifact,
                    kind,
                    miner,
                } => {
                    self.note_byz_detected(artifact, now, kind);
                    if let Some(&culprit) = self.node_of_account.get(&miner) {
                        self.punish(culprit, now, "disproven-orphan");
                    }
                }
                OrphanVerdict::Equivocation { height, miner } => {
                    self.handle_equivocation_proof(height, miner, now);
                }
            }
        }
    }

    /// Routes a wire-received block through node `v`'s fork choice.
    fn byz_deliver(&mut self, v: NodeId, block: &Block, now: SimTime) {
        let outcome = match self.byz.as_mut() {
            Some(e) => e.deliver(v, block),
            None => return,
        };
        match outcome {
            ByzantineOutcome::Extended | ByzantineOutcome::Stale => {}
            ByzantineOutcome::Equivocation { height, miner } => {
                self.handle_equivocation_proof(height, miner, now);
            }
            ByzantineOutcome::NeedsSync => {
                // Too far ahead to verify: stash it (an equivocating
                // variant delivered to a laggard is judged after sync)
                // and reconcile.
                if let Some(e) = self.byz.as_mut() {
                    e.stash_orphan(v, block.clone(), None);
                }
                self.byz_sync(v, now);
            }
            ByzantineOutcome::Rejected(_) => {
                self.byz_sync(v, now);
            }
        }
    }

    /// A Byzantine node broadcasts a block with a PoS hit it never earned.
    /// Honest receivers verify the chained hash and reject it.
    fn byz_forge_block(&mut self, node: NodeId, now: SimTime) {
        if !self.topo.is_active(node) || self.byz.is_none() {
            return;
        }
        let prev = self.chain.tip().clone();
        let pos_hash = self
            .byz
            .as_mut()
            .expect("engine checked above")
            .next_digest();
        let block = Block::new(
            prev.index + 1,
            prev.hash,
            now.as_secs().max(prev.timestamp_secs + 1),
            pos_hash,
            self.account_of[node.0],
            1,
            crate::pos::Amendment::from_fraction(1, 1000),
            Vec::new(),
            Vec::new(),
            prev.storing_nodes.clone(),
            Vec::new(),
        );
        let payload = edgechain_sim::Payload::new(block.encoded());
        let deliveries = self
            .transport
            .broadcast_payload(&self.topo, node, &payload, now);
        let receivers: Vec<NodeId> = deliveries.iter().map(|(v, _)| v).collect();
        if receivers.is_empty() {
            return; // reached nobody: nothing was injected into the network
        }
        let artifact = self.note_byz_injected(now, "byz_forge");
        for v in receivers {
            let outcome = match self.byz.as_mut() {
                Some(e) => e.deliver(v, &block),
                None => return,
            };
            match outcome {
                ByzantineOutcome::Rejected(_) => {
                    self.note_byz_detected(artifact, now, "byz_forge");
                    self.punish(node, now, "forged-block");
                }
                ByzantineOutcome::NeedsSync => {
                    // A laggard cannot disprove the claim yet; it keeps
                    // the orphan and judges it after syncing.
                    if let Some(e) = self.byz.as_mut() {
                        e.stash_orphan(v, block.clone(), Some((artifact, "byz_forge")));
                    }
                    self.byz_sync(v, now);
                }
                _ => {}
            }
        }
    }

    /// A Byzantine node broadcasts bytes that are not a block at all:
    /// raw garbage, a scrambled encoding, or a truncated one. Every
    /// receiver's decoder returns an error (never panics) and the sender
    /// is quarantined.
    fn byz_garbage_payload(&mut self, node: NodeId, bytes: u64, now: SimTime) {
        if !self.topo.is_active(node) || self.byz.is_none() {
            return;
        }
        let tip_encoding = edgechain_sim::Payload::new(self.chain.tip().encoded());
        let engine = self.byz.as_mut().expect("engine checked above");
        let payload = match engine.draw(3) {
            0 => {
                let n = bytes.clamp(8, 65_536) as usize;
                edgechain_sim::Payload::new(engine.garbage_bytes(n).into())
            }
            1 => {
                let seed = engine.draw(u64::MAX);
                tip_encoding.scrambled(seed)
            }
            _ => tip_encoding.truncated(tip_encoding.len() / 2),
        };
        let deliveries = self
            .transport
            .broadcast_payload(&self.topo, node, &payload, now);
        let reached = deliveries.iter().next().is_some();
        if !reached {
            return; // reached nobody: nothing was injected into the network
        }
        let artifact = self.note_byz_injected(now, "byz_garbage");
        // The payload is one shared buffer, so decoding once stands for
        // every receiver's (identical, deterministic) verdict.
        if crate::codec::decode_block(payload.bytes()).is_err() {
            self.note_byz_detected(artifact, now, "byz_garbage");
            self.punish(node, now, "garbage-payload");
        }
    }

    /// A freshly elected Byzantine miner seals a private fork on its own
    /// earned PoS hit and *withholds* it: nothing is broadcast, the
    /// canonical chain does not advance, and the miner sits out the
    /// re-election at this height so an honest runner-up makes progress.
    /// The fork is released once the public chain catches up
    /// ([`Self::byz_release_withheld`]).
    fn byz_mine_withheld_fork(&mut self, miner: NodeId, blocks: u64, now: SimTime) {
        let base_height = self.chain.height();
        let account = self.account_of[miner.0];
        let mut prev = self.chain.tip().clone();
        let mut fork = Vec::new();
        for i in 0..blocks.max(1) {
            let b = Block::new(
                prev.index + 1,
                prev.hash,
                now.as_secs() + i + 1,
                crate::pos::next_pos_hash(&prev.pos_hash, &account),
                account,
                1,
                crate::pos::Amendment::from_fraction(1, 1000),
                Vec::new(),
                Vec::new(),
                prev.storing_nodes.clone(),
                Vec::new(),
            );
            prev = b.clone();
            fork.push(b);
        }
        let artifact = self.note_byz_injected(now, "byz_withhold");
        trace_event!(
            "byz.withhold",
            now.as_millis(),
            node = miner.0,
            blocks = blocks.max(1),
            base = base_height
        );
        if let Some(e) = self.byz.as_mut() {
            e.withheld = Some(WithheldFork {
                miner,
                base_height,
                blocks: fork,
                artifact,
            });
            e.bench(miner, base_height);
        }
    }

    /// Releases the private fork once the canonical chain is one block
    /// short of it: the fork hits the wire, trunk fork choice decides
    /// under checkpoint rules, and on adoption the displaced metadata
    /// re-enters the packing pool (fresh UFL allocation next block), the
    /// ledger follows the adopted chain, and receivers reorg their views.
    fn byz_release_withheld(&mut self, now: SimTime) {
        let Some(w) = self.byz.as_ref().and_then(|e| e.withheld.clone()) else {
            return;
        };
        if self.chain.height() < w.base_height + w.blocks.len() as u64 - 1 {
            return;
        }
        if !self.topo.is_active(w.miner) {
            return; // the release waits until the miner is back up
        }
        let bytes: u64 = w.blocks.iter().map(Block::wire_size).sum();
        let deliveries = self.transport.broadcast(&self.topo, w.miner, bytes, now);
        let receivers: Vec<NodeId> = deliveries.iter().map(|(v, _)| *v).collect();
        if receivers.is_empty() {
            return; // nobody heard the release; try again next block
        }
        if let Some(e) = self.byz.as_mut() {
            e.withheld = None;
            e.unbench(w.miner);
        }
        trace_event!(
            "byz.release",
            now.as_millis(),
            node = w.miner.0,
            blocks = w.blocks.len(),
            base = w.base_height
        );
        // The late release *is* the observable: honest nodes now hold two
        // competing branches and the withholding comes to light.
        self.note_byz_detected(w.artifact, now, "byz_withhold");

        let old_height = self.chain.height();
        // The candidate is the fork itself, index-aligned at
        // `base_height + 1`: it attaches at the public base block, which
        // is always retained (`maybe_prune` never cuts past a live fork),
        // and the shared prefix below needs no re-validation.
        let candidate: Vec<Block> = w.blocks.clone();
        let displaced_blocks = self.chain.retained_after(w.base_height);
        let displaced_miners: Vec<AccountId> = displaced_blocks.iter().map(|b| b.miner).collect();
        let displaced_items: Vec<MetadataItem> = displaced_blocks
            .iter()
            .flat_map(|b| b.metadata.iter().cloned())
            .collect();
        let policy = self.byz.as_ref().expect("engine checked above").policy();
        if self.chain.try_adopt_checkpointed(&candidate, policy) {
            let depth = old_height - w.base_height;
            if let Some(e) = self.byz.as_mut() {
                e.record_reorg(depth);
            }
            telemetry::counter_add("chain.reorgs", 1);
            telemetry::record("chain.reorg_depth", depth as f64);
            trace_event!(
                "chain.trunk_reorg",
                now.as_millis(),
                miner = w.miner.0,
                depth = depth,
                height = self.chain.height()
            );
            // Reorged-away metadata re-enters the packing pool with its
            // storer assignments cleared: the next honest miner re-runs
            // the UFL allocation from scratch (the PR 1 repair sweep then
            // re-replicates data onto the fresh storers).
            for mut item in displaced_items {
                self.data_registry.remove(&item.data_id);
                // Expired (or already-swept) content stays dead: re-packing
                // it would resurrect a finalized eviction.
                if !item.is_valid_at(now.as_secs()) || self.expired_ids.contains(&item.data_id) {
                    continue;
                }
                item.storing_nodes.clear();
                self.pending_metadata.push(item);
            }
            // Mining credit follows the adopted chain; slashes already
            // applied stay applied (the ledger is adjusted, not rebuilt).
            for m in displaced_miners {
                self.ledger.debit(m, 1);
            }
            self.ledger
                .credit(self.account_of[w.miner.0], w.blocks.len() as u64);
            // Timestamps below the fork base are untouched by the reorg;
            // rebuild only the displaced tail from the adopted suffix.
            self.block_timestamps.truncate((w.base_height + 1) as usize);
            self.block_timestamps.extend(
                self.chain
                    .retained_after(w.base_height)
                    .iter()
                    .map(|b| b.timestamp_secs),
            );
            // Cached per-height PoS hits keyed on the replaced branch are
            // stale now.
            self.pos_hits.invalidate();
            // The fork's author keeps its own blocks durably, same as an
            // honest miner would.
            for b in &w.blocks {
                self.storage[w.miner.0].store_block(b.index);
            }
            for v in receivers {
                for idx in (w.base_height + 1)..=self.chain.height() {
                    self.node_known[v.0].insert(idx);
                }
                self.advance_height(v);
                self.storage[v.0].cache_recent(self.chain.height());
                self.byz_sync(v, now);
            }
        } else {
            // Checkpoint rules refused the fork: every honest node keeps
            // the canonical branch and the attack fizzles.
            trace_event!(
                "byz.fork_rejected",
                now.as_millis(),
                miner = w.miner.0,
                base = w.base_height
            );
        }
        self.punish(w.miner, now, "withheld-fork");
    }

    fn on_generate_data(&mut self, now: SimTime) {
        // Only running nodes sense and publish data. With everyone up the
        // draw below is bit-identical to indexing `0..nodes` directly.
        let live: Vec<NodeId> = self.topo.active_nodes().collect();
        if live.is_empty() {
            let next = self.sample_generation_gap();
            self.queue.schedule(next, Event::GenerateData);
            return;
        }
        let producer = live[self.rng.gen_range(0..live.len())];
        // Admission control sits between "the world offered an item" and
        // "the network accepted it". All gates are inert by default, so a
        // default config admits everything and the counters are the only
        // observable difference.
        self.overload.offered_items += 1;
        self.slo.record_offered(now.as_millis());
        if !self.admit_item(producer, now) {
            let next = self.sample_generation_gap();
            self.queue.schedule(next, Event::GenerateData);
            return;
        }
        self.overload.admitted_items += 1;
        let id = DataId(self.next_data_id);
        self.next_data_id += 1;
        let pos = self.topo.position(producer);
        let kinds = ["PM2.5", "Traffic", "Noise", "Temperature"];
        let kind = kinds[self.rng.gen_range(0..kinds.len())];
        let mut item = MetadataItem::new_signed(
            self.identities[producer.0].keys(),
            id,
            DataType::Sensing(kind.into()),
            now.as_secs(),
            Location {
                label: format!("field/{producer}"),
                x: pos.x,
                y: pos.y,
            },
            self.config.data_valid_minutes,
            None,
            self.config.data_item_bytes,
        );
        // Producer always keeps its own data (it is the origin copy).
        // Broadcast the metadata item so miners can pack it.
        telemetry::counter_add("data.generated", 1);
        trace_event!(
            "data.generated",
            now.as_millis(),
            item = id.0,
            node = producer.0,
            bytes = self.config.data_item_bytes
        );
        if let Some(sp) = self.spans.as_mut() {
            // Item lifecycle root: generation → last replica landed. The
            // `item.pend` child covers the mempool wait until packing.
            let t = now.as_millis();
            let root = telemetry::span_start("item.lifecycle", t, SpanId::NONE);
            telemetry::span_field(root, "item", id.0);
            telemetry::span_field(root, "producer", producer.0);
            let pend = telemetry::span_start("item.pend", t, root);
            sp.items.insert(id.0, (root, pend));
        }
        // Open-workload runs allocate storers *per item at admission*
        // (streaming UFL over the cached context) instead of batching the
        // solve at block-pack time; an unsatisfiable solve rejects the item
        // here, before any bytes move.
        if self.config.workload.enabled {
            match self.select_storers_now(self.config.placement, producer) {
                Ok(storers) => {
                    trace_event!(
                        "ufl.stream_alloc",
                        now.as_millis(),
                        item = id.0,
                        replicas = storers.len() as u64
                    );
                    item.storing_nodes = storers;
                }
                Err(_) => {
                    self.overload.alloc_rejected += 1;
                    telemetry::counter_add("alloc.rejected", 1);
                    trace_event!("alloc.rejected", now.as_millis(), item = id.0);
                    if let Some(sp) = self.spans.as_mut() {
                        if let Some((root, pend)) = sp.items.remove(&id.0) {
                            telemetry::span_end(pend, now.as_millis());
                            telemetry::span_field(root, "outcome", "alloc_rejected");
                            telemetry::span_end(root, now.as_millis());
                        }
                    }
                    let next = self.sample_generation_gap();
                    self.queue.schedule(next, Event::GenerateData);
                    return;
                }
            }
        }
        let announce_bytes = item.wire_size();
        self.transport
            .broadcast(&self.topo, producer, announce_bytes, now);
        self.pending_metadata.push(item);
        self.overload.peak_pending_items = self
            .overload
            .peak_pending_items
            .max(self.pending_metadata.len() as u64);
        let next = self.sample_generation_gap();
        self.queue.schedule(next, Event::GenerateData);
    }

    /// Admission gate for a newly offered data item. Checks, in order: the
    /// pending-queue bound, the item token bucket, and the token-ledger
    /// price. Every gate defaults off, so the default config admits
    /// unconditionally. Returns `false` (and accounts the shed) on reject.
    fn admit_item(&mut self, producer: NodeId, now: SimTime) -> bool {
        if let Some(cap) = self.config.overload.max_pending_items {
            if cap > 0 && self.pending_metadata.len() >= cap {
                self.shed_item(now, "queue_full");
                return false;
            }
        }
        if let Some(bucket) = self.item_bucket.as_mut() {
            if !bucket.try_take(now.as_millis(), 1.0) {
                self.shed_item(now, "bucket");
                return false;
            }
        }
        let price = self.config.overload.admission_price_tokens;
        if price > 0 {
            let account = self.account_of[producer.0];
            if !self.ledger.try_debit(account, price) {
                self.shed_item(now, "price");
                return false;
            }
            self.overload.admission_tokens_charged += price;
        }
        true
    }

    fn shed_item(&mut self, now: SimTime, reason: &'static str) {
        self.overload.shed_items += 1;
        self.slo.record_shed(now.as_millis());
        telemetry::counter_add("overload.shed_items", 1);
        trace_event!(
            "overload.shed",
            now.as_millis(),
            op = "item",
            reason = reason
        );
    }

    /// Admission gate at fetch entry. `low_priority` marks open-workload
    /// reads, the first rung of the degradation ladder; requester-loop
    /// fetches pass `false` and are only throttled by the explicit knobs.
    fn admit_fetch(&mut self, requester: NodeId, now: SimTime, low_priority: bool) -> bool {
        self.overload.offered_fetches += 1;
        if low_priority && self.degrade_level >= 1 {
            self.shed_fetch(now, "degraded");
            return false;
        }
        if let Some(cap) = self.config.overload.max_inflight_per_node {
            if cap > 0 && self.inflight_fetches[requester.0] as usize >= cap {
                self.shed_fetch(now, "inflight");
                return false;
            }
        }
        if let Some(bucket) = self.fetch_bucket.as_mut() {
            if !bucket.try_take(now.as_millis(), 1.0) {
                self.shed_fetch(now, "bucket");
                return false;
            }
        }
        let price = self.config.overload.admission_price_tokens;
        if price > 0 {
            let account = self.account_of[requester.0];
            if !self.ledger.try_debit(account, price) {
                self.shed_fetch(now, "price");
                return false;
            }
            self.overload.admission_tokens_charged += price;
        }
        self.overload.admitted_fetches += 1;
        true
    }

    fn shed_fetch(&mut self, now: SimTime, reason: &'static str) {
        self.overload.shed_fetches += 1;
        self.slo.record_shed(now.as_millis());
        telemetry::counter_add("overload.shed_fetches", 1);
        trace_event!(
            "overload.shed",
            now.as_millis(),
            op = "fetch",
            reason = reason
        );
    }

    /// Charges the global retry budget. Unlimited (`None`) by default; a
    /// denied retry is accounted and the caller treats the request as
    /// terminally failed instead of backing off again.
    fn retry_allowed(&mut self, now: SimTime) -> bool {
        match self.retry_bucket.as_mut() {
            None => true,
            Some(bucket) => {
                if bucket.try_take(now.as_millis(), 1.0) {
                    true
                } else {
                    self.overload.retries_denied += 1;
                    telemetry::counter_add("overload.retries_denied", 1);
                    false
                }
            }
        }
    }

    /// Exponential retry backoff: `retry_backoff_ms << attempt`, capped at
    /// `retry_backoff_max_ms`, plus uniform jitter from the dedicated
    /// backoff stream when `retry_jitter_ms > 0`. With the default cap the
    /// uncapped curve of every pre-existing config is reproduced exactly.
    fn retry_backoff(&mut self, attempt: u32) -> SimTime {
        let base = self
            .config
            .retry_backoff_ms
            .max(1)
            .checked_shl(attempt.min(16))
            .unwrap_or(u64::MAX);
        let capped = base.min(self.config.retry_backoff_max_ms.max(1));
        let jitter = match self.config.retry_jitter_ms {
            0 => 0,
            j => self.backoff_rng.gen_range(0..=j),
        };
        SimTime::from_millis(capped.saturating_add(jitter))
    }

    /// Tracks one scheduled `RetryFetch` in the backlog (the bounded set
    /// of fetches waiting on a backoff timer).
    fn backlog_push(&mut self, requester: NodeId, data_id: DataId) {
        *self
            .fetch_backlog
            .entry((requester.0, data_id.0))
            .or_insert(0) += 1;
        self.inflight_fetches[requester.0] += 1;
        self.overload.peak_inflight_fetches = self
            .overload
            .peak_inflight_fetches
            .max(self.fetch_backlog.values().map(|&c| c as u64).sum());
    }

    /// Clears one backlog entry when its `RetryFetch` fires.
    fn backlog_pop(&mut self, requester: NodeId, data_id: DataId) {
        if let Some(c) = self.fetch_backlog.get_mut(&(requester.0, data_id.0)) {
            *c -= 1;
            if *c == 0 {
                self.fetch_backlog.remove(&(requester.0, data_id.0));
            }
            self.inflight_fetches[requester.0] =
                self.inflight_fetches[requester.0].saturating_sub(1);
        }
    }

    /// The single allocation entry point for every call site (item packing,
    /// block storers, recent-block growth, replica repair): the
    /// region-decomposed engine when `config.region_alloc` is on (solving
    /// only `origin`'s region — the scale path), otherwise the cached
    /// [`AllocationContext`] when `config.allocation_cache` is on, or the
    /// one-shot solver. The latter two are observationally identical; that
    /// toggle exists for the equivalence tests. `origin` is the node the
    /// data enters the network at — the item's producer, the miner for
    /// block/recent-cache replicas, a surviving source for repairs — and
    /// is only consulted by the regional path.
    fn select_storers_now(
        &mut self,
        placement: Placement,
        origin: NodeId,
    ) -> Result<Vec<NodeId>, edgechain_facility::SolveError> {
        if self.config.region_alloc {
            self.alloc_ctx.select_storers_regional(
                placement,
                origin,
                &self.topo,
                &self.storage,
                &mut self.rng,
            )
        } else if self.config.allocation_cache {
            self.alloc_ctx
                .select_storers(placement, &self.topo, &self.storage, &mut self.rng)
        } else {
            select_storers_scaled(
                placement,
                &self.topo,
                &self.storage,
                self.config.fdc_scale,
                &mut self.rng,
            )
        }
    }

    /// The single PoS entry point for both rounds of a block (schedule +
    /// mine): the per-height [`HitTable`] when `config.pos_hit_cache` is
    /// on, the straight [`run_round`] otherwise. Both paths are
    /// bit-identical; the toggle exists for the equivalence tests.
    fn pos_round(&mut self, candidates: &[Candidate]) -> crate::pos::MiningOutcome {
        let prev = self.chain.tip().pos_hash;
        if self.config.pos_hit_cache {
            run_round_cached(
                &prev,
                candidates,
                self.config.block_interval_secs,
                &mut self.pos_hits,
            )
        } else {
            run_round(&prev, candidates, self.config.block_interval_secs)
        }
    }

    fn on_mine_block(&mut self, now: SimTime) {
        // Re-run the round to identify the winner (deterministic). Nodes
        // the fault injector took down since the round was scheduled drop
        // out of the candidate set; if the scheduled winner crashed, the
        // re-run simply elects the best surviving node.
        // Quarantine re-admission rides the block cadence.
        let pending_span = self.spans.as_mut().and_then(|sp| sp.next_block.take());
        if let Some(e) = self.byz.as_mut() {
            let readmitted = e.readmit_due(now);
            if !readmitted.is_empty() {
                telemetry::counter_add("byz.readmissions", readmitted.len() as u64);
                trace_event!("byz.readmit", now.as_millis(), nodes = readmitted.len());
            }
            telemetry::gauge_set("quarantine.active", e.active_quarantines(now) as f64);
            if let Some(sp) = self.spans.as_mut() {
                for v in &readmitted {
                    if let Some(q) = sp.quarantines.remove(&v.0) {
                        telemetry::span_end(q, now.as_millis());
                    }
                }
            }
        }
        let miners = self.live_miners(now);
        if miners.is_empty() {
            if let Some((root, pos)) = pending_span {
                telemetry::span_end(pos, now.as_millis());
                telemetry::span_field(root, "outcome", "no_miners");
                telemetry::span_end(root, now.as_millis());
            }
            self.schedule_next_block();
            return;
        }
        let candidates = self.pos_candidates(&miners);
        let outcome = self.pos_round(&candidates);
        let miner = NodeId(miners[outcome.winner]);
        trace_event!(
            "pos.round",
            now.as_millis(),
            winner = miner.0,
            delay_secs = outcome.delay_secs,
            candidates = candidates.len()
        );
        // The very first block is scheduled in `new()` before the tracker
        // is armed; open its lifecycle at mine time instead.
        let (blk_root, blk_pos) = pending_span.unwrap_or_else(|| {
            let root = telemetry::span_start("block.lifecycle", now.as_millis(), SpanId::NONE);
            let pos = telemetry::span_start("block.pos", now.as_millis(), root);
            (root, pos)
        });
        telemetry::span_end(blk_pos, now.as_millis());
        telemetry::span_field(blk_root, "miner", miner.0);

        // A freshly elected adversary may have an armed consensus attack.
        // Withholding and tampering replace the honest round entirely;
        // equivocation rides alongside it (two conflicting blocks sealed
        // on the same earned hit) unless the new height is a checkpoint,
        // where honest fork choice is first-seen-final and the fork could
        // never spread — the adversary waits for a later win instead.
        let byz_action = match self.byz.as_mut() {
            Some(e) => e.next_mining_action(miner, !self.pending_metadata.is_empty()),
            None => None,
        };
        let mut equivocate = false;
        match byz_action {
            Some(ByzantineAction::Withhold { blocks }) => {
                // A fork spanning a checkpoint height could never win fork
                // choice (honest nodes refuse to cross a checkpoint), so a
                // rational withholder waits for a base clear of them.
                let interval = self.byz.as_ref().map_or(1, |e| e.policy().interval.max(1));
                let base = self.chain.height();
                let crosses_checkpoint =
                    (base + 1..=base + blocks.max(1)).any(|h| h.is_multiple_of(interval));
                if crosses_checkpoint {
                    if let Some(e) = self.byz.as_mut() {
                        e.arm(miner, ByzantineAction::Withhold { blocks });
                    }
                } else if self.byz.as_ref().is_some_and(|e| e.withheld.is_none()) {
                    self.byz_mine_withheld_fork(miner, blocks, now);
                    telemetry::span_field(blk_root, "outcome", "withheld");
                    telemetry::span_end(blk_root, now.as_millis());
                    self.schedule_next_block();
                    return;
                }
                // A fork already in flight drops the extra action.
            }
            Some(ByzantineAction::TamperSignature) => {
                self.byz_mine_tampered_block(miner, &candidates, &outcome, now);
                telemetry::span_field(blk_root, "outcome", "tampered");
                telemetry::span_end(blk_root, now.as_millis());
                self.schedule_next_block();
                return;
            }
            Some(ByzantineAction::Equivocate) => {
                let interval = self.byz.as_ref().map_or(1, |e| e.policy().interval.max(1));
                if (self.chain.height() + 1).is_multiple_of(interval) {
                    if let Some(e) = self.byz.as_mut() {
                        e.arm(miner, ByzantineAction::Equivocate);
                    }
                } else {
                    equivocate = true;
                }
            }
            Some(_) | None => {}
        }

        // Degradation ladder: the mempool depth relative to the configured
        // bound picks the rung for this block interval. L1 sheds
        // low-priority fetches, L2 also trims dissemination to the first
        // replica, L3 also parks repair sweeps. Consensus itself (this
        // function) is never throttled. With no bound configured the
        // ladder stays at level 0 forever.
        let depth = self.pending_metadata.len();
        self.slo.note_queue_depth(depth as u64);
        let level = self.config.overload.degrade_level(depth);
        if level != self.degrade_level {
            trace_event!(
                "overload.degrade",
                now.as_millis(),
                from = self.degrade_level as u64,
                to = level as u64,
                depth = depth as u64
            );
            self.degrade_level = level;
        }
        self.overload.max_degrade_level = self.overload.max_degrade_level.max(level);

        // The miner packs pending metadata and allocates storers per item.
        let mut packed = std::mem::take(&mut self.pending_metadata);
        for item in &mut packed {
            // Inclusion latency (generation → this block) feeds the SLO
            // monitor and the report percentiles unconditionally.
            let incl_secs = now.as_secs().saturating_sub(item.produced_at_secs) as f64;
            self.inclusion_samples.record(incl_secs);
            self.slo.record_inclusion(now.as_millis(), incl_secs);
            if telemetry::is_enabled() {
                telemetry::record("slo.inclusion_secs", incl_secs);
            }
            // The mempool wait ends here; allocation is a zero-duration
            // child (the UFL solve costs wall-clock, not sim time).
            let item_root = match self.spans.as_ref() {
                Some(sp) => match sp.items.get(&item.data_id.0) {
                    Some(&(root, pend)) => {
                        telemetry::span_end(pend, now.as_millis());
                        root
                    }
                    None => SpanId::NONE,
                },
                None => SpanId::NONE,
            };
            // Items admitted through the streaming path carry their storers
            // already (allocated per item at generation); only batch-path
            // items solve here.
            if !item.storing_nodes.is_empty() {
                continue;
            }
            let origin = self
                .node_of_account
                .get(&item.producer)
                .copied()
                .unwrap_or(miner);
            match self.select_storers_now(self.config.placement, origin) {
                Ok(storers) => {
                    trace_event!(
                        "ufl.alloc",
                        now.as_millis(),
                        item = item.data_id.0,
                        storers = storers.len()
                    );
                    let alloc = telemetry::span_start("item.alloc", now.as_millis(), item_root);
                    telemetry::span_field(alloc, "storers", storers.len());
                    telemetry::span_end(alloc, now.as_millis());
                    item.storing_nodes = storers;
                }
                Err(_) => {
                    self.data_unstored += 1;
                    let alloc = telemetry::span_start("item.alloc", now.as_millis(), item_root);
                    telemetry::span_field(alloc, "outcome", "unstored");
                    telemetry::span_end(alloc, now.as_millis());
                    item.storing_nodes = Vec::new();
                }
            }
        }

        // Allocation for the block itself and for the recent-block growth.
        // The placement strategy under study (Fig. 5) varies only *data*
        // placement; block storage always uses the paper's allocation so
        // the chain itself stays retrievable.
        let block_storers = self
            .select_storers_now(Placement::Optimal, miner)
            .unwrap_or_default();
        let recent_growers = if self.config.recent_block_allocation {
            self.select_storers_now(Placement::Optimal, miner)
                .unwrap_or_default()
        } else {
            Vec::new()
        };

        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let amendment = crate::pos::Amendment::compute(&us, self.config.block_interval_secs);
        // An equivocating miner seals a *second*, conflicting block on the
        // same earned PoS hit: same height, same miner, different content
        // and timestamp, hence a different hash — the classic two-headers
        // proof once both land at one honest node.
        let variant: Option<Block> = if equivocate {
            let height = self.chain.height() + 1;
            let account = self.account_of[miner.0];
            Some(Block::new(
                height,
                self.chain.tip().hash,
                now.as_secs() + 1,
                outcome.new_pos_hash,
                account,
                outcome.delay_secs.max(1),
                amendment,
                Vec::new(),
                Vec::new(),
                self.chain.tip().storing_nodes.clone(),
                Vec::new(),
            ))
        } else {
            None
        };
        let block = telemetry::time_wall("block.assemble_ns", || {
            Block::new(
                self.chain.height() + 1,
                self.chain.tip().hash,
                now.as_secs(),
                outcome.new_pos_hash,
                self.account_of[miner.0],
                outcome.delay_secs.max(1),
                amendment,
                packed,
                block_storers.clone(),
                self.chain.tip().storing_nodes.clone(),
                recent_growers.clone(),
            )
        });
        let block_index = block.index;
        // Per-node fork choice needs the wire block after it moves into
        // the chain; cloned only on Byzantine runs.
        let wire_block = self.byz.is_some().then(|| block.clone());
        // With the seal cache the encode below is the block's one and only
        // serialization, shared from here on; without it every consumer
        // re-encodes, as the pre-cache code did.
        let (block_size, payload) = if self.config.block_seal_cache {
            let payload = edgechain_sim::Payload::new(block.encoded());
            (payload.len() as u64, Some(payload))
        } else {
            (crate::codec::encode_block(&block).len() as u64, None)
        };
        let metadata_of_block = block.metadata.clone();
        telemetry::time_wall("block.verify_ns", || {
            if self.config.block_seal_cache {
                self.chain.push_sealed(block)
            } else {
                self.chain.push(block)
            }
        })
        .expect("self-mined block extends the tip");
        telemetry::counter_add("block.mined", 1);
        if telemetry::is_enabled() {
            telemetry::record("block.items", metadata_of_block.len() as f64);
            telemetry::record("block.bytes", block_size as f64);
        }
        trace_event!(
            "block.mined",
            now.as_millis(),
            block = block_index,
            miner = miner.0,
            items = metadata_of_block.len(),
            bytes = block_size,
            delay_secs = outcome.delay_secs
        );
        // Under an adversarial plan the miner keeps its own sealed block
        // durably (not just in the FIFO cache): a mobility partition can
        // otherwise orphan a block that *nobody* stores, leaving lagging
        // nodes unable to ever verify — or disprove — later wire blocks.
        if self.byz.is_some() {
            self.storage[miner.0].store_block(block_index);
        }
        self.ledger.credit(self.account_of[miner.0], 1);
        if let Some(every) = self.config.token_rescale_blocks {
            if every > 0 && block_index.is_multiple_of(every) {
                self.ledger.rescale_halve();
            }
        }
        self.block_timestamps.push(now.as_secs());

        // Broadcast the block; deliveries reveal who is currently connected.
        // The payload path shares one Arc of the sealed encoding across all
        // deliveries (batched per arrival instant); the count-based path is
        // the pre-cache reference. Both charge identical bytes and flatten
        // to the same delivery order.
        let mut received: Vec<NodeId> = vec![miner];
        let mut arrivals: Vec<(NodeId, SimTime)> = Vec::new();
        match &payload {
            Some(p) => {
                let deliveries = self.transport.broadcast_payload(&self.topo, miner, p, now);
                arrivals.extend(deliveries.iter());
            }
            None => {
                let deliveries = self.transport.broadcast(&self.topo, miner, block_size, now);
                arrivals.extend(deliveries.iter().copied());
            }
        }
        received.extend(arrivals.iter().map(|(v, _)| *v));

        // Verify-on-receive (optional, costs CPU not network).
        if self.config.verify_signatures {
            for item in &metadata_of_block {
                assert!(item.verify(), "self-packed metadata must verify");
            }
        }

        // Receivers update their views; detect and recover missing blocks.
        for &v in &received {
            let was_height = self.node_height[v.0];
            self.node_known[v.0].insert(block_index);
            if block_index > was_height + 1 {
                self.recover_missing(v, block_index, now);
            }
            self.advance_height(v);
            // Everyone caches the newest block in its recent-cache FIFO.
            self.storage[v.0].cache_recent(block_index);
        }

        // Per-node fork choice: route the block (and the equivocating
        // variant, when armed) through each receiver's chain view. With a
        // variant in play, alternating receivers hear only the conflicting
        // block and adopt it — a live fork that reconciles (and surfaces
        // the equivocation proof) at the next sync; the others hear both
        // and hold the two-headers proof immediately.
        if let Some(a_block) = &wire_block {
            // The conflicting variant counts as injected only once it
            // actually reaches an honest node (a broadcast swallowed by a
            // transient partition put nothing into the network).
            let variant = match variant {
                Some(b) if received.len() > 1 => {
                    let artifact = self
                        .byz
                        .as_mut()
                        .expect("wire_block implies engine")
                        .register_equivocation(b.index, b.miner);
                    telemetry::counter_add("byz.injected", 1);
                    trace_event!(
                        "byz.injected",
                        now.as_millis(),
                        kind = "byz_equivocate",
                        artifact = artifact
                    );
                    Some(b)
                }
                _ => None,
            };
            for (i, &v) in received.iter().enumerate() {
                if v == miner {
                    self.byz_deliver(v, a_block, now);
                    continue;
                }
                match (&variant, i % 2) {
                    (Some(b_block), 1) => self.byz_deliver(v, b_block, now),
                    (Some(b_block), _) => {
                        self.byz_deliver(v, a_block, now);
                        self.byz_deliver(v, b_block, now);
                    }
                    (None, _) => self.byz_deliver(v, a_block, now),
                }
            }
        }

        // Recent-block allocation: chosen nodes grow their cache quota.
        for &v in &recent_growers {
            if received.contains(&v) {
                self.storage[v.0].grow_recent_quota();
            }
        }
        // Block storage allocation: chosen nodes keep the block for good.
        for &v in &block_storers {
            if received.contains(&v) {
                self.storage[v.0].store_block(block_index);
            }
        }

        // Block lifecycle spans: one `block.broadcast` child covering
        // schedule-to-last-arrival, with a zero-duration per-receiver
        // `block.verify` grandchild at each arrival instant. The root
        // closes at the last arrival, so `block.pos` + `block.broadcast`
        // tile it exactly.
        if self.spans.is_some() {
            let asm = telemetry::span_start("block.assemble", now.as_millis(), blk_root);
            telemetry::span_field(asm, "items", metadata_of_block.len());
            telemetry::span_end(asm, now.as_millis());
            let bc = telemetry::span_start("block.broadcast", now.as_millis(), blk_root);
            telemetry::span_field(bc, "receivers", arrivals.len());
            let mut last = now;
            for &(v, t) in &arrivals {
                if t > last {
                    last = t;
                }
                let vs = telemetry::span_start("block.verify", t.as_millis(), bc);
                telemetry::span_field(vs, "node", v.0);
                telemetry::span_end(vs, t.as_millis());
            }
            telemetry::span_end(bc, last.as_millis());
            telemetry::span_field(blk_root, "block", block_index);
            telemetry::span_field(blk_root, "items", metadata_of_block.len());
            telemetry::span_end(blk_root, last.as_millis());
        }

        // Data dissemination: each storing node proactively fetches the
        // data item from its producer.
        for item in &metadata_of_block {
            let Some(&producer) = self.node_of_account.get(&item.producer) else {
                continue;
            };
            let mut stored = 0u64;
            let mut last_replica: Option<SimTime> = None;
            for &storer in &item.storing_nodes {
                // A crashed storer can't accept the copy (and a crashed
                // producer can't send one); the repair sweep re-replicates
                // later if the item stays under target.
                if !self.topo.is_active(storer) || !self.topo.is_active(producer) {
                    continue;
                }
                if storer != producer && self.storage[storer.0].is_full() {
                    continue;
                }
                // Ladder L2+: defer proactive replication past the first
                // landed copy — the repair sweep restores full replication
                // once the mempool drains back below the rung.
                if self.degrade_level >= 2 && stored >= 1 {
                    self.overload.deferred_replications += 1;
                    continue;
                }
                // An unreachable storer simply stays unstored for now.
                if let Ok(d) =
                    self.transport
                        .unicast(&self.topo, producer, storer, item.data_size, now)
                {
                    if self.storage[storer.0].store_data(item.data_id) || storer == producer {
                        stored += 1;
                        last_replica = Some(last_replica.map_or(d.arrival, |t| t.max(d.arrival)));
                    }
                }
            }
            if !item.storing_nodes.is_empty() {
                self.replica_total += stored;
                self.replica_items += 1;
            }
            // The item lifecycle closes when its last replica lands.
            if let Some(sp) = self.spans.as_ref() {
                if let Some(&(root, _)) = sp.items.get(&item.data_id.0) {
                    let end = last_replica.unwrap_or(now).as_millis();
                    let rep = telemetry::span_start("item.replicate", now.as_millis(), root);
                    telemetry::span_field(rep, "replicas", stored);
                    telemetry::span_end(rep, end);
                    telemetry::span_field(root, "block", block_index);
                    telemetry::span_end(root, end);
                }
            }
            if self.expired_ids.contains(&item.data_id) {
                // A swept id must never re-enter the live registry.
                self.resurrected_pending += 1;
            }
            self.expiry_heap.push(std::cmp::Reverse((
                item.produced_at_secs
                    .saturating_add(item.valid_minutes.saturating_mul(60)),
                item.data_id,
            )));
            self.data_registry
                .insert(item.data_id, (item.clone(), block_index));
        }

        // A withheld private fork is released once the public chain is
        // about to out-grow it; trunk fork choice then decides.
        self.byz_release_withheld(now);

        // The miner also audits replica health and repairs what churn
        // broke since the last block — unless the ladder's top rung has
        // parked repair to shed load (the next sub-L3 block catches up).
        if self.degrade_level >= 3 {
            self.overload.deferred_repairs += 1;
        } else {
            self.repair_replicas(now);
        }

        let used_now: u64 = self.storage.iter().map(NodeStorage::used_slots).sum();
        self.peak_storage_slots = self.peak_storage_slots.max(used_now);
        let tracking_now = (self.expired_ids.len()
            + self.invalid_storers.len()
            + self.snapshot_blacklist.len()
            + self.byz.as_ref().map_or(0, ByzantineEngine::orphan_entries))
            as u64;
        self.peak_tracking_entries = self.peak_tracking_entries.max(tracking_now);
        self.maybe_prune(now);

        // SLO health check rides the block cadence, like quarantine
        // re-admission: trim the rolling windows and surface any breaches.
        self.evaluate_slo(now);
        self.schedule_next_block();
    }

    /// Evaluates the SLO rolling windows and surfaces newly raised breach
    /// alerts as counters and trace events. Pure observation: consumes no
    /// randomness and feeds nothing back into the protocol.
    fn evaluate_slo(&mut self, now: SimTime) {
        let (depth, quarantines) = match &self.byz {
            Some(e) => (e.max_reorg_depth(), e.quarantine_events()),
            None => (0, 0),
        };
        for a in self.slo.evaluate(now.as_millis(), depth, quarantines) {
            telemetry::counter_add("slo.breaches", 1);
            trace_event!(
                "slo.breach",
                a.t_ms,
                slo = a.slo,
                observed = a.observed,
                threshold = a.threshold
            );
        }
    }

    /// Checkpoint-anchored pruning: once the chain has grown a retention
    /// window past the latest checkpoint, the prefix strictly below
    /// `checkpoint - retention` collapses into a signed [`ChainAnchor`]
    /// carrying the Merkle commitment over the pruned history. Storage
    /// follows suit (reclaimed slots feed straight back into the UFL
    /// occupancy costs), and Byzantine per-node views re-base onto the
    /// same anchor so fork choice keeps working on the retained suffix.
    fn maybe_prune(&mut self, now: SimTime) {
        if !self.config.prune_blocks {
            return;
        }
        let interval = self.config.checkpoint_interval.max(1);
        let checkpoint = (self.chain.height() / interval) * interval;
        let mut cut = checkpoint.saturating_sub(self.config.prune_retention_blocks);
        // A withheld private fork still references its public base block;
        // never prune past it or its release could not re-attach.
        if let Some(w) = self.byz.as_ref().and_then(|e| e.withheld.as_ref()) {
            cut = cut.min(w.base_height);
        }
        if cut <= self.chain.base_index() {
            return;
        }
        // The anchor is signed by the miner of the boundary block (the
        // last pruned one); fall back to node 0 for a genesis-only prefix.
        let signer = self
            .chain
            .get(cut - 1)
            .and_then(|b| self.node_of_account.get(&b.miner))
            .map_or(0, |v| v.0);
        let keys = self.identities[signer].keys();
        let pruned = self.chain.prune_below(cut, keys);
        if pruned == 0 {
            return;
        }
        let mut reclaimed = 0u64;
        for s in &mut self.storage {
            reclaimed += s.prune_blocks_below(cut);
        }
        if let Some(anchor) = self.chain.anchor().cloned() {
            if let Some(e) = self.byz.as_mut() {
                e.prune_below(&anchor);
                // Active honest nodes whose per-node fork views fell behind
                // the new base adopt the anchor too: the pruned prefix is
                // consensus-final, and a view stuck below it could neither
                // re-sync block-by-block nor judge incoming tip blocks.
                let suffix = self.chain.as_slice().to_vec();
                for v in 0..self.config.nodes {
                    if !self.topo.is_active(NodeId(v)) {
                        continue;
                    }
                    if !e.byz_role[v] && e.chains[v].height() + 1 < cut {
                        let rebased = Blockchain::from_anchor(anchor.clone(), suffix.clone())
                            .expect("retained suffix attaches to its own anchor");
                        e.bootstrap_from_snapshot(NodeId(v), rebased);
                    }
                }
            }
        }
        // Every online node adopts the checkpoint anchor as it forms: the
        // blocks below the cut are consensus-final and no longer served
        // block-by-block, so known-index sets shrink to the retained range
        // and contiguous views resume from the boundary. Crashed nodes
        // keep their stale view — they must snapshot-bootstrap on return.
        for v in 0..self.config.nodes {
            if !self.topo.is_active(NodeId(v)) {
                continue;
            }
            self.node_known[v] = self.node_known[v].split_off(&cut);
            // The anchor boundary stands in for the whole pruned prefix.
            self.node_known[v].insert(cut - 1);
            if self.node_height[v] + 1 < cut {
                self.node_height[v] = cut - 1;
            }
            self.advance_height(NodeId(v));
        }
        self.blocks_pruned += pruned;
        telemetry::counter_add("chain.pruned", pruned);
        trace_event!(
            "chain.pruned",
            now.as_millis(),
            cut = cut,
            blocks = pruned,
            reclaimed = reclaimed
        );
    }

    /// A Byzantine miner assembles the round's block honestly, then
    /// corrupts one metadata signature before sealing. Receivers verify
    /// signatures at the wire, reject the block, and quarantine the miner;
    /// the canonical chain does not advance and the (intact) pending
    /// metadata survives for the next honest miner, which re-runs the UFL
    /// allocation from scratch.
    fn byz_mine_tampered_block(
        &mut self,
        miner: NodeId,
        candidates: &[Candidate],
        outcome: &crate::pos::MiningOutcome,
        now: SimTime,
    ) {
        let backup = self.pending_metadata.clone();
        let mut packed = std::mem::take(&mut self.pending_metadata);
        let victim = &mut packed[0]; // gated on pending metadata existing
        let mut sig = victim.signature.to_bytes();
        sig[0] ^= 0x01;
        victim.signature = edgechain_crypto::Signature::from_bytes(&sig);
        let us: Vec<u64> = candidates.iter().map(|c| c.contribution()).collect();
        let amendment = crate::pos::Amendment::compute(&us, self.config.block_interval_secs);
        let block = Block::new(
            self.chain.height() + 1,
            self.chain.tip().hash,
            now.as_secs(),
            outcome.new_pos_hash,
            self.account_of[miner.0],
            outcome.delay_secs.max(1),
            amendment,
            packed,
            Vec::new(),
            self.chain.tip().storing_nodes.clone(),
            Vec::new(),
        );
        let payload = edgechain_sim::Payload::new(block.encoded());
        let deliveries = self
            .transport
            .broadcast_payload(&self.topo, miner, &payload, now);
        let receivers: Vec<NodeId> = deliveries.iter().map(|(v, _)| v).collect();
        if receivers.is_empty() {
            // Reached nobody: nothing was injected into the network.
            self.pending_metadata = backup;
            return;
        }
        let artifact = self.note_byz_injected(now, "byz_tamper");
        for v in receivers {
            let delivery = match self.byz.as_mut() {
                Some(e) => e.deliver(v, &block),
                None => return,
            };
            match delivery {
                ByzantineOutcome::Rejected(_) => {
                    self.note_byz_detected(artifact, now, "byz_tamper");
                    self.punish(miner, now, "tampered-signature");
                }
                ByzantineOutcome::NeedsSync => {
                    if let Some(e) = self.byz.as_mut() {
                        e.stash_orphan(v, block.clone(), Some((artifact, "byz_tamper")));
                    }
                    self.byz_sync(v, now);
                }
                _ => {}
            }
        }
        // The un-tampered originals go back in the pool.
        self.pending_metadata = backup;
    }

    /// UFL-driven replica repair: for every valid item whose *live*
    /// replica count fell below its allocation target (a crash took
    /// holders offline, or dissemination never reached them), the miner
    /// re-runs the storage allocation over the surviving nodes and copies
    /// the data from the nearest live source to the newly chosen storers.
    /// The copies ride the transport like any other traffic, so repair
    /// cost lands in the overhead and energy metrics.
    fn repair_replicas(&mut self, now: SimTime) {
        // Fault-free closed-loop runs never under-replicate, so the sweep
        // is skipped unless faults are in play — or the open workload is
        // on, where deferred dissemination (ladder L2) leaves gaps the
        // sweep must close once load subsides.
        if !self.config.replica_repair
            || (self.config.fault_plan.is_empty() && !self.config.workload.enabled)
        {
            return;
        }
        let mut ids: Vec<DataId> = self.data_registry.keys().copied().collect();
        ids.sort_unstable();
        let mut sweep_repaired = 0u64;
        let mut sweep_copies = 0u64;
        for id in ids {
            let Some((item, _)) = self.data_registry.get(&id) else {
                continue;
            };
            if !item.is_valid_at(now.as_secs()) {
                continue;
            }
            let target = item.storing_nodes.len();
            if target == 0 {
                continue; // never allocated (NoProactive or unstored)
            }
            let producer = self.node_of_account.get(&item.producer).copied();
            let data_size = item.data_size;
            let assigned = item.storing_nodes.clone();
            // A quarantined storer is as good as dead to requesters (they
            // refuse to fetch from it), so it does not count toward the
            // replication target and the sweep re-replicates around it.
            let live_holders: Vec<NodeId> = assigned
                .iter()
                .copied()
                .filter(|&h| {
                    self.topo.is_active(h)
                        && (self.storage[h.0].has_data(id) || Some(h) == producer)
                        && self.byz.as_ref().is_none_or(|e| !e.is_quarantined(h, now))
                })
                .collect();
            if live_holders.len() >= target {
                continue;
            }
            // Any live replica or the producer's origin copy can seed the
            // new replicas; with none alive the item waits for a restart.
            let mut sources = live_holders.clone();
            if let Some(p) = producer {
                if self.topo.is_active(p) && !sources.contains(&p) {
                    sources.push(p);
                }
            }
            if sources.is_empty() {
                continue;
            }
            let origin = producer
                .filter(|&p| self.topo.is_active(p))
                .unwrap_or(sources[0]);
            let Ok(new_set) = self.select_storers_now(self.config.placement, origin) else {
                continue;
            };
            let mut repaired = false;
            let mut last_copy: Option<SimTime> = None;
            for s in new_set {
                if live_holders.contains(&s)
                    || Some(s) == producer
                    || self.storage[s.0].is_full()
                    || self.storage[s.0].has_data(id)
                {
                    continue;
                }
                let Some(&src) = sources
                    .iter()
                    .filter(|&&c| self.topo.reachable(c, s))
                    .min_by_key(|&&c| (self.topo.hops(c, s), c.0))
                else {
                    continue;
                };
                if let Ok(d) = self.transport.unicast(&self.topo, src, s, data_size, now) {
                    if self.storage[s.0].store_data(id) {
                        repaired = true;
                        sweep_copies += 1;
                        last_copy =
                            Some(last_copy.map_or(d.arrival, |t: SimTime| t.max(d.arrival)));
                    }
                }
            }
            if repaired {
                self.repairs_triggered += 1;
                sweep_repaired += 1;
                // Repair rides the block cadence, not the item lifecycle:
                // its span is a root with a follows-from edge back to the
                // item it re-replicated.
                if let Some(sp) = self.spans.as_ref() {
                    if let Some(&(iroot, _)) = sp.items.get(&id.0) {
                        let rs = telemetry::span_start(
                            "repair.replicate",
                            now.as_millis(),
                            SpanId::NONE,
                        );
                        telemetry::span_follows(rs, iroot);
                        telemetry::span_field(rs, "item", id.0);
                        telemetry::span_end(rs, last_copy.unwrap_or(now).as_millis());
                    }
                }
                // Refresh the operational holder view: every node whose
                // disk holds the item (crashed ones keep theirs, and the
                // fresh copies just landed).
                let holders: Vec<NodeId> = (0..self.config.nodes)
                    .map(NodeId)
                    .filter(|&v| self.storage[v.0].has_data(id))
                    .collect();
                if let Some((item, _)) = self.data_registry.get_mut(&id) {
                    item.storing_nodes = holders;
                }
            }
        }
        if sweep_repaired > 0 {
            telemetry::counter_add("repair.items", sweep_repaired);
            telemetry::counter_add("repair.copies", sweep_copies);
            trace_event!(
                "repair.sweep",
                now.as_millis(),
                repaired = sweep_repaired,
                copies = sweep_copies
            );
        }
    }

    /// §IV-D recovery: fetch every missing block below `upto` from the
    /// nearest node that can serve it (recent cache or permanent storage).
    fn recover_missing(&mut self, v: NodeId, upto: u64, now: SimTime) {
        self.recover_missing_attempt(v, upto, now, 0);
    }

    fn recover_missing_attempt(&mut self, v: NodeId, upto: u64, now: SimTime, attempt: u32) {
        // A node that fell behind the pruned base cannot recover block by
        // block — those blocks are gone from every store. It bootstraps
        // from a verified snapshot instead; failing that (providers dead,
        // quarantined, blacklisted, or unreachable) it backs off and
        // retries like any starved recovery.
        if self.config.prune_blocks && self.node_height[v.0] + 1 < self.chain.base_index() {
            if self.config.snapshot_bootstrap && self.try_snapshot_bootstrap(v, now) {
                return;
            }
            if attempt < self.config.fetch_retries && self.retry_allowed(now) {
                self.retries += 1;
                telemetry::counter_add("transport.retries", 1);
                trace_event!(
                    "transport.retry",
                    now.as_millis(),
                    node = v.0,
                    attempt = attempt + 1,
                    op = "snapshot"
                );
                let backoff = self.retry_backoff(attempt);
                self.queue.schedule(
                    now + backoff,
                    Event::RetryRecover {
                        node: v,
                        attempt: attempt + 1,
                    },
                );
            }
            return;
        }
        let missing: Vec<u64> = (self.node_height[v.0] + 1..upto)
            .filter(|i| !self.node_known[v.0].contains(i))
            .collect();
        let mut unserved = false;
        for idx in missing {
            let holder = (0..self.config.nodes)
                .map(NodeId)
                .filter(|&h| h != v && self.storage[h.0].has_block(idx))
                .filter(|&h| !self.malicious[h.0])
                .filter(|&h| self.byz.as_ref().is_none_or(|e| !e.is_quarantined(h, now)))
                .filter(|&h| self.topo.reachable(v, h))
                .min_by_key(|&h| self.topo.hops(v, h));
            let Some(holder) = holder else {
                unserved = true;
                continue;
            };
            let req = self
                .transport
                .unicast(&self.topo, v, holder, BLOCK_REQUEST_BYTES, now);
            let Ok(req) = req else {
                unserved = true;
                continue;
            };
            // Served block size: one cached encode per block under the seal
            // cache, a fresh encode per recovery otherwise (the pre-cache
            // behavior, kept as the equivalence reference).
            let seal_cache = self.config.block_seal_cache;
            let block_size = self.chain.get(idx).map_or(1000, |b| {
                if seal_cache {
                    b.wire_size()
                } else {
                    crate::codec::encode_block(b).len() as u64
                }
            });
            match self
                .transport
                .unicast(&self.topo, holder, v, block_size, req.arrival)
            {
                Ok(resp) => {
                    self.node_known[v.0].insert(idx);
                    self.recoveries += 1;
                    self.recovery
                        .record(resp.arrival.saturating_since(now).as_secs_f64());
                    self.recovery_hops.record(self.topo.hops(v, holder) as f64);
                    trace_event!(
                        "repair.recover_block",
                        now.as_millis(),
                        node = v.0,
                        block = idx,
                        hops = self.topo.hops(v, holder),
                        dur_ms = resp.arrival.saturating_since(now).as_millis()
                    );
                    let rs = telemetry::span_start("recover.block", now.as_millis(), SpanId::NONE);
                    telemetry::span_field(rs, "node", v.0);
                    telemetry::span_field(rs, "block", idx);
                    telemetry::span_end(rs, resp.arrival.as_millis());
                }
                Err(_) => unserved = true,
            }
        }
        // Recovered blocks must extend the node's contiguous view right
        // away — an un-advanced height would make the node re-request
        // blocks it already holds and mis-detect gaps on the next receipt.
        self.advance_height(v);
        if unserved && attempt < self.config.fetch_retries && self.retry_allowed(now) {
            // Lossy links or a partition starved this pass; back off
            // exponentially (capped, optionally jittered) and try again.
            self.retries += 1;
            telemetry::counter_add("transport.retries", 1);
            trace_event!(
                "transport.retry",
                now.as_millis(),
                node = v.0,
                attempt = attempt + 1,
                op = "recover"
            );
            let backoff = self.retry_backoff(attempt);
            self.queue.schedule(
                now + backoff,
                Event::RetryRecover {
                    node: v,
                    attempt: attempt + 1,
                },
            );
        }
    }

    /// Snapshot bootstrap for a deep rejoiner: ask the nearest fully-synced
    /// node for a signed [`Snapshot`] (anchor + retained blocks + live
    /// registry), verify it end-to-end, and adopt it wholesale. A provider
    /// serving bytes that fail to decode or verify — a Byzantine server
    /// tampers with them in flight — is blacklisted for this rejoiner and
    /// the next-nearest provider is asked instead. Returns whether a
    /// snapshot was applied.
    fn try_snapshot_bootstrap(&mut self, v: NodeId, now: SimTime) -> bool {
        let Some(anchor) = self.chain.anchor().cloned() else {
            return false;
        };
        let snap_span = telemetry::span_start("snapshot.bootstrap", now.as_millis(), SpanId::NONE);
        telemetry::span_field(snap_span, "node", v.0);
        let tip = self.chain.height();
        let mut providers: Vec<NodeId> = (0..self.config.nodes)
            .map(NodeId)
            .filter(|&h| h != v && self.topo.is_active(h))
            .filter(|&h| self.node_height[h.0] == tip)
            .filter(|&h| !self.malicious[h.0])
            .filter(|&h| self.byz.as_ref().is_none_or(|e| !e.is_quarantined(h, now)))
            .filter(|&h| !self.snapshot_blacklist.contains(&(v, h)))
            .filter(|&h| self.topo.reachable(v, h))
            .collect();
        providers.sort_by_key(|&h| (self.topo.hops(v, h), h.0));
        for server in providers {
            let Ok(req) = self
                .transport
                .unicast(&self.topo, v, server, BLOCK_REQUEST_BYTES, now)
            else {
                continue;
            };
            let mut registry: Vec<(MetadataItem, u64)> =
                self.data_registry.values().cloned().collect();
            registry.sort_by_key(|(m, _)| m.data_id);
            let snapshot = Snapshot::seal(
                anchor.clone(),
                self.chain.as_slice().to_vec(),
                registry,
                self.identities[server.0].keys(),
            );
            let mut bytes = crate::codec::encode_snapshot(&snapshot);
            self.snapshots_served += 1;
            telemetry::counter_add("snapshot.served", 1);
            trace_event!(
                "snapshot.served",
                now.as_millis(),
                server = server.0,
                node = v.0,
                bytes = bytes.len()
            );
            // A Byzantine provider serves a corrupted snapshot: one bit of
            // the signed payload flips in flight.
            let tampered = if self.byz.as_ref().is_some_and(|e| e.byz_role[server.0]) {
                let artifact = self.note_byz_injected(now, "byz_snapshot");
                let pos = self
                    .byz
                    .as_mut()
                    .expect("engine checked above")
                    .draw(bytes.len() as u64) as usize;
                bytes[pos] ^= 0x40;
                Some(artifact)
            } else {
                None
            };
            let Ok(resp) =
                self.transport
                    .unicast(&self.topo, server, v, bytes.len() as u64, req.arrival)
            else {
                continue;
            };
            let verified = crate::codec::decode_snapshot(&bytes)
                .ok()
                .filter(|s| s.verify());
            let Some(snap) = verified else {
                self.snapshots_rejected += 1;
                self.snapshot_blacklist.insert((v, server));
                telemetry::counter_add("snapshot.rejected", 1);
                trace_event!(
                    "snapshot.rejected",
                    now.as_millis(),
                    server = server.0,
                    node = v.0
                );
                if let Some(artifact) = tampered {
                    // Verification caught the corruption red-handed.
                    self.note_byz_detected(artifact, now, "byz_snapshot");
                    self.punish(server, now, "tampered-snapshot");
                }
                continue;
            };
            let chain = Blockchain::from_anchor(snap.anchor.clone(), snap.blocks.clone())
                .expect("verified snapshot attaches to its own anchor");
            let snap_tip = chain.height();
            self.node_known[v.0] = (chain.base_index()..=snap_tip).collect();
            self.node_height[v.0] = snap_tip;
            self.storage[v.0].cache_recent(snap_tip);
            if let Some(e) = self.byz.as_mut() {
                e.bootstrap_from_snapshot(v, chain);
            }
            self.recoveries += 1;
            self.recovery
                .record(resp.arrival.saturating_since(now).as_secs_f64());
            self.recovery_hops.record(self.topo.hops(v, server) as f64);
            self.snapshots_applied += 1;
            telemetry::counter_add("snapshot.applied", 1);
            trace_event!(
                "snapshot.applied",
                now.as_millis(),
                server = server.0,
                node = v.0,
                tip = snap_tip
            );
            telemetry::span_field(snap_span, "server", server.0);
            telemetry::span_field(snap_span, "outcome", "applied");
            telemetry::span_end(snap_span, resp.arrival.as_millis());
            return true;
        }
        telemetry::span_field(snap_span, "outcome", "failed");
        telemetry::span_end(snap_span, now.as_millis());
        false
    }

    fn on_retry_recover(&mut self, node: NodeId, attempt: u32, now: SimTime) {
        if !self.topo.is_active(node) {
            return; // crashed (again) before the backoff expired
        }
        // Catch up on everything up to the canonical tip: the node learns
        // the current height from whichever neighbor answers the probe.
        let upto = self.chain.height() + 1;
        self.recover_missing_attempt(node, upto, now, attempt);
        // A recovered view may still sit on a reorged-away branch;
        // reconcile the node's chain with the canonical one.
        if self.byz.is_some() {
            self.byz_sync(node, now);
        }
    }

    fn advance_height(&mut self, v: NodeId) {
        while self.node_known[v.0].contains(&(self.node_height[v.0] + 1)) {
            self.node_height[v.0] += 1;
        }
    }

    fn on_issue_request(&mut self, requester: NodeId, now: SimTime) {
        // A crashed requester issues nothing; its schedule resumes when it
        // restarts.
        if !self.topo.is_active(requester) {
            let next = now + SimTime::from_secs(self.config.request_interval_secs.max(1));
            self.queue.schedule(next, Event::IssueRequest { requester });
            return;
        }
        // Pick a random data item whose metadata this node has seen (i.e.
        // whose block is within its view) and which is still valid.
        let mut known: Vec<&MetadataItem> = self
            .data_registry
            .values()
            .filter(|(m, _)| m.is_valid_at(now.as_secs()))
            // The requester knows the item if it has the packing block, or
            // if the block is finalized below the pruned base (its metadata
            // rode along with the anchor/snapshot distribution).
            .filter(|(_, idx)| {
                *idx < self.chain.base_index() || self.node_known[requester.0].contains(idx)
            })
            .map(|(m, _)| m)
            .collect();
        known.sort_by_key(|m| m.data_id);
        if !known.is_empty() {
            let pick = known[self.rng.gen_range(0..known.len())].clone();
            if self.admit_fetch(requester, now, false) {
                self.fetch_data(requester, &pick, now, 0);
            }
        }
        let next = now + SimTime::from_secs(self.config.request_interval_secs.max(1));
        self.queue.schedule(next, Event::IssueRequest { requester });
    }

    /// Arms the next open-workload fetch from the configured arrival
    /// process. A silent process (burst over, rate zero) simply stops
    /// re-arming; the closed-loop requester schedule is untouched.
    fn schedule_workload_fetch(&mut self) {
        let Some(arrivals) = self.config.workload.fetches.as_ref() else {
            return;
        };
        let now_secs = self.queue.now().as_millis() as f64 / 1000.0;
        let t = arrivals.next_arrival_secs(now_secs, &mut self.workload_rng);
        if !t.is_finite() {
            return;
        }
        let at = SimTime::from_millis((t * 1000.0).ceil() as u64)
            .max(self.queue.now() + SimTime::from_millis(1));
        self.queue.schedule(at, Event::WorkloadFetch);
    }

    /// One open-workload fetch: a uniformly drawn live requester asks for
    /// an item drawn Zipf-by-recency from its visible catalogue (rank 0 =
    /// newest). These are the low-priority reads — first to shed when the
    /// degradation ladder engages. All draws come from the dedicated
    /// workload stream, so the closed-loop trajectory is untouched.
    fn on_workload_fetch(&mut self, now: SimTime) {
        // Re-arm first: an empty catalogue or a shed fetch must not
        // silence the arrival stream.
        self.schedule_workload_fetch();
        let live: Vec<NodeId> = self.topo.active_nodes().collect();
        if live.is_empty() {
            return;
        }
        let requester = live[self.workload_rng.gen_range(0..live.len())];
        let mut known: Vec<&MetadataItem> = self
            .data_registry
            .values()
            .filter(|(m, _)| m.is_valid_at(now.as_secs()))
            .filter(|(_, idx)| {
                *idx < self.chain.base_index() || self.node_known[requester.0].contains(idx)
            })
            .map(|(m, _)| m)
            .collect();
        if known.is_empty() {
            return;
        }
        known.sort_by_key(|m| std::cmp::Reverse(m.data_id));
        let rank = self.zipf.sample(known.len(), &mut self.workload_rng);
        let pick = known[rank.min(known.len() - 1)].clone();
        if self.admit_fetch(requester, now, true) {
            self.fetch_data(requester, &pick, now, 0);
        }
    }

    fn on_retry_fetch(&mut self, requester: NodeId, data_id: DataId, attempt: u32, now: SimTime) {
        // The scheduled retry either resolves below or re-enters the
        // backlog with a fresh timer; either way this entry is consumed.
        self.backlog_pop(requester, data_id);
        if !self.topo.is_active(requester) {
            // nobody is waiting for the answer anymore
            self.close_fetch_span(requester, data_id, now.as_millis(), "requester_down");
            return;
        }
        let Some((item, _)) = self.data_registry.get(&data_id) else {
            // expired or superseded while backing off
            self.close_fetch_span(requester, data_id, now.as_millis(), "item_gone");
            return;
        };
        if !item.is_valid_at(now.as_secs()) {
            self.close_fetch_span(requester, data_id, now.as_millis(), "item_expired");
            return;
        }
        let item = item.clone();
        self.fetch_data(requester, &item, now, attempt);
    }

    /// Closes an in-flight `fetch.lifecycle` span (and any pending
    /// `fetch.backoff` child) with the given outcome. No-op when spans are
    /// off or no span is open for the `(requester, item)` pair.
    fn close_fetch_span(&mut self, requester: NodeId, id: DataId, t: u64, outcome: &'static str) {
        if let Some(sp) = self.spans.as_mut() {
            let fkey = (requester.0, id.0);
            if let Some(b) = sp.fetch_backoffs.remove(&fkey) {
                telemetry::span_end(b, t);
            }
            if let Some(root) = sp.fetches.remove(&fkey) {
                telemetry::span_field(root, "outcome", outcome);
                telemetry::span_end(root, t);
            }
        }
    }

    /// §IV-D data access: request from the nearest node that actually holds
    /// the data. Malicious storers silently deny; the requester waits out a
    /// timeout, the `(data, storer)` pair is marked invalid network-wide
    /// ("everyone will be informed", §III-B.2), and the next-nearest holder
    /// is tried. The producer's origin copy is the final fallback. When no
    /// source answered at all, the requester backs off exponentially and
    /// retries up to [`NetworkConfig::fetch_retries`] times before the
    /// request counts as failed.
    fn fetch_data(&mut self, requester: NodeId, item: &MetadataItem, now: SimTime, attempt: u32) {
        // The fetch lifecycle span persists across backoff retries: the
        // first attempt opens it (with a follows-from edge back to the
        // item's lifecycle), each retry entry closes the pending backoff
        // child, and resolution — delivery, failure, or abandonment —
        // closes the root.
        let fkey = (requester.0, item.data_id.0);
        let froot = match self.spans.as_mut() {
            Some(sp) => {
                if let Some(b) = sp.fetch_backoffs.remove(&fkey) {
                    telemetry::span_end(b, now.as_millis());
                }
                match sp.fetches.get(&fkey) {
                    Some(&r) => r,
                    None => {
                        let root =
                            telemetry::span_start("fetch.lifecycle", now.as_millis(), SpanId::NONE);
                        telemetry::span_field(root, "requester", requester.0);
                        telemetry::span_field(root, "item", item.data_id.0);
                        if let Some(&(iroot, _)) = sp.items.get(&item.data_id.0) {
                            telemetry::span_follows(root, iroot);
                        }
                        sp.fetches.insert(fkey, root);
                        root
                    }
                }
            }
            None => SpanId::NONE,
        };
        let attempt_span = |t0: SimTime, t1: SimTime, holder: NodeId, outcome: &'static str| {
            let s = telemetry::span_start("fetch.attempt", t0.as_millis(), froot);
            telemetry::span_field(s, "holder", holder.0);
            telemetry::span_field(s, "outcome", outcome);
            telemetry::span_end(s, t1.as_millis());
        };
        let producer = self.node_of_account.get(&item.producer).copied();
        if self.storage[requester.0].has_data(item.data_id) || producer == Some(requester) {
            // Local hit: free and instantaneous.
            self.completed_requests += 1;
            self.delivery.record(0.0);
            self.delivery_samples.record(0.0);
            self.slo.record_fetch(now.as_millis(), 0.0);
            if telemetry::is_enabled() {
                telemetry::record("slo.fetch_secs", 0.0);
            }
            telemetry::counter_add("request.completed", 1);
            trace_event!(
                "request.completed",
                now.as_millis(),
                requester = requester.0,
                item = item.data_id.0,
                dur_ms = 0_u64
            );
            self.close_fetch_span(requester, item.data_id, now.as_millis(), "local");
            return;
        }
        let mut holders: Vec<NodeId> = item
            .storing_nodes
            .iter()
            .copied()
            .filter(|&h| self.storage[h.0].has_data(item.data_id))
            .filter(|&h| !self.invalid_storers.contains(&(item.data_id, h)))
            .filter(|&h| self.byz.as_ref().is_none_or(|e| !e.is_quarantined(h, now)))
            .collect();
        if holders.is_empty() {
            // Paper Fig. 3: consumers fetch from the caching nodes; the
            // producer's origin copy is only the fallback when no assigned
            // storer can serve the item.
            holders.extend(producer);
        } else if let Some(p) = producer {
            // Producer stays as the last resort behind all storers.
            if !holders.contains(&p) {
                holders.push(p);
            }
        }
        holders.retain(|&h| h != requester && self.topo.reachable(requester, h));
        holders.sort_by_key(|&h| (self.topo.hops(requester, h), h.0));
        let mut t = now;
        for holder in holders {
            let probe_start = t;
            let Ok(req) =
                self.transport
                    .unicast(&self.topo, requester, holder, DATA_REQUEST_BYTES, t)
            else {
                attempt_span(probe_start, probe_start, holder, "send_drop");
                continue;
            };
            if self.malicious[holder.0] && producer != Some(holder) {
                // No response: wait out the timeout, publish the denial.
                self.denials += 1;
                self.invalid_storers.insert((item.data_id, holder));
                t = req.arrival + DENIAL_TIMEOUT;
                attempt_span(probe_start, t, holder, "denied");
                // Under a Byzantine engine, repeated denials accumulate
                // strikes and eventually escalate to a quarantine.
                let crossed = match self.byz.as_mut() {
                    Some(e) => e.strike(holder),
                    None => false,
                };
                if crossed {
                    self.punish(holder, t, "repeated-denials");
                }
                continue;
            }
            match self
                .transport
                .unicast(&self.topo, holder, requester, item.data_size, req.arrival)
            {
                Ok(resp) => {
                    self.completed_requests += 1;
                    let secs = resp.arrival.saturating_since(now).as_secs_f64();
                    self.delivery.record(secs);
                    self.delivery_samples.record(secs);
                    self.slo.record_fetch(resp.arrival.as_millis(), secs);
                    if telemetry::is_enabled() {
                        telemetry::record("slo.fetch_secs", secs);
                    }
                    telemetry::counter_add("request.completed", 1);
                    trace_event!(
                        "request.completed",
                        now.as_millis(),
                        requester = requester.0,
                        item = item.data_id.0,
                        storer = holder.0,
                        dur_ms = resp.arrival.saturating_since(now).as_millis()
                    );
                    attempt_span(probe_start, resp.arrival, holder, "ok");
                    self.close_fetch_span(
                        requester,
                        item.data_id,
                        resp.arrival.as_millis(),
                        "completed",
                    );
                    return;
                }
                Err(_) => {
                    attempt_span(probe_start, req.arrival, holder, "reply_drop");
                    continue;
                }
            }
        }
        // The budget check is short-circuited behind the attempt check so
        // terminal failures never drain the budget; a budget-denied retry
        // goes down the failed path like an exhausted one.
        let may_retry = attempt < self.config.fetch_retries && self.retry_allowed(now);
        if may_retry {
            self.retries += 1;
            telemetry::counter_add("transport.retries", 1);
            trace_event!(
                "transport.retry",
                now.as_millis(),
                node = requester.0,
                attempt = attempt + 1,
                op = "fetch"
            );
            let backoff = self.retry_backoff(attempt);
            self.queue.schedule(
                now + backoff,
                Event::RetryFetch {
                    requester,
                    data_id: item.data_id,
                    attempt: attempt + 1,
                },
            );
            self.backlog_push(requester, item.data_id);
            if let Some(sp) = self.spans.as_mut() {
                let b = telemetry::span_start("fetch.backoff", now.as_millis(), froot);
                telemetry::span_field(b, "attempt", attempt + 1);
                sp.fetch_backoffs.insert(fkey, b);
            }
        } else {
            self.failed_requests += 1;
            self.slo.record_failure(now.as_millis());
            telemetry::counter_add("request.failed", 1);
            trace_event!(
                "request.failed",
                now.as_millis(),
                requester = requester.0,
                item = item.data_id.0
            );
            self.close_fetch_span(requester, item.data_id, now.as_millis(), "failed");
        }
    }

    /// Evicts expired data items from every store and from the registry,
    /// freeing slots for fresh content (§VII: "data items may become
    /// obsolete"). The sweep pops an expiry-ordered min-heap instead of
    /// scanning the whole registry, so its cost tracks the number of items
    /// actually due. Heap entries are lazy: an id evicted elsewhere is
    /// skipped, and an entry whose item is still valid (clock keys are
    /// conservative) is re-queued at its recomputed expiry.
    fn on_expire_sweep(&mut self, now: SimTime) {
        let now_secs = now.as_secs();
        let mut swept_any = false;
        while let Some(std::cmp::Reverse((expiry, id))) = self.expiry_heap.peek().copied() {
            if expiry > now_secs {
                break;
            }
            self.expiry_heap.pop();
            let Some((m, _)) = self.data_registry.get(&id) else {
                continue;
            };
            if m.is_valid_at(now_secs) {
                self.expiry_heap.push(std::cmp::Reverse((
                    m.produced_at_secs
                        .saturating_add(m.valid_minutes.saturating_mul(60)),
                    id,
                )));
                continue;
            }
            for s in &mut self.storage {
                if s.evict_data(id) {
                    self.data_expired += 1;
                }
            }
            self.data_registry.remove(&id);
            if self.expired_ids.insert(id) {
                self.expired_log.push_back((now_secs, id));
            }
            swept_any = true;
        }
        // Tracking-state GC (ISSUE 9): tombstones older than the retention
        // window are forgotten, and invalidated-storer records die with
        // their item — both sets stay O(window), not O(run history).
        let horizon = now_secs.saturating_sub(self.config.tracking_retention_secs);
        while let Some(&(t, id)) = self.expired_log.front() {
            if t >= horizon {
                break;
            }
            self.expired_log.pop_front();
            self.expired_ids.remove(&id);
        }
        if swept_any && !self.invalid_storers.is_empty() {
            let registry = &self.data_registry;
            self.invalid_storers
                .retain(|(d, _)| registry.contains_key(d));
        }
        self.queue.schedule(
            now + SimTime::from_secs(self.config.expiration_sweep_secs),
            Event::ExpireSweep,
        );
    }

    /// Ships a batch of raft envelopes over the radio transport, charging
    /// bytes and scheduling deliveries at their computed arrival times.
    fn raft_dispatch(
        &mut self,
        from: edgechain_raft::PeerId,
        envelopes: Vec<edgechain_raft::Envelope<GeneralEvent>>,
        now: SimTime,
    ) {
        for env in envelopes {
            let bytes = env.message.wire_size(GeneralEvent::wire_size);
            let src = NodeId(from.0);
            let dst = NodeId(env.to.0);
            // An unreachable destination never gets the message onto the
            // radio at all, as in a real partitioned network; only messages
            // actually transmitted count toward the overhead metrics.
            if let Ok(delivery) = self.transport.unicast(&self.topo, src, dst, bytes, now) {
                self.raft_messages += 1;
                if env.message.is_heartbeat() {
                    self.raft_heartbeats += 1;
                }
                self.raft_bytes += bytes;
                self.queue.schedule(
                    delivery.arrival.max(now),
                    Event::RaftDeliver {
                        from,
                        envelope: env,
                    },
                );
            }
        }
    }

    fn on_raft_tick(&mut self, now: SimTime) {
        for i in 0..self.raft_nodes.len() {
            // A crashed node's raft process isn't running: no timers fire,
            // so it neither heartbeats nor starts elections until restart.
            if !self.topo.is_active(NodeId(i)) {
                continue;
            }
            let outs = self.raft_nodes[i].tick(now);
            self.raft_dispatch(edgechain_raft::PeerId(i), outs, now);
        }
        self.queue.schedule(
            now + SimTime::from_millis(self.config.raft_tick_ms.max(1)),
            Event::RaftTick,
        );
    }

    fn on_raft_deliver(
        &mut self,
        from: edgechain_raft::PeerId,
        envelope: edgechain_raft::Envelope<GeneralEvent>,
        now: SimTime,
    ) {
        let to = envelope.to;
        // The destination may have crashed while the message was on the
        // air; a down node processes nothing.
        if !self.topo.is_active(NodeId(to.0)) {
            return;
        }
        let outs = self.raft_nodes[to.0].handle(from, envelope.message, now);
        self.raft_dispatch(to, outs, now);
    }

    /// §VII data migration: periodically re-evaluate every item's placement
    /// against the *current* topology and storage state and move the worst
    /// offenders toward the optimum. Only items whose improvement clears
    /// the configured threshold are touched ("Calculating the optimal
    /// storage problem is not necessary if the change over the network is
    /// small"). Replica copies ride the transport and count as overhead.
    fn on_migrate(&mut self, now: SimTime) {
        let ids: Vec<DataId> = {
            let mut v: Vec<DataId> = self.data_registry.keys().copied().collect();
            v.sort_unstable();
            v
        };
        for id in ids {
            let Some((item, _)) = self.data_registry.get(&id) else {
                continue;
            };
            // Crashed holders are invisible to migration: their copies can
            // be neither moved nor dropped while the node is down.
            let holders: Vec<NodeId> = item
                .storing_nodes
                .iter()
                .copied()
                .filter(|&h| self.topo.is_active(h) && self.storage[h.0].has_data(id))
                .collect();
            if holders.is_empty() {
                continue;
            }
            let data_size = item.data_size;
            let plan = match crate::migration::plan_migration(
                id,
                &self.topo,
                &self.storage,
                &holders,
                self.config.migration,
            ) {
                Ok(Some(plan)) => plan,
                _ => continue,
            };
            let copied = crate::migration::apply_migration(
                &plan,
                &self.topo,
                &mut self.storage,
                &mut self.transport,
                data_size,
                now,
            );
            self.migrations += copied as u64;
            // Update the operational view of where the item now lives.
            if copied > 0 || !plan.drops.is_empty() {
                let mut new_holders: Vec<NodeId> = holders
                    .iter()
                    .copied()
                    .filter(|h| !plan.drops.contains(h))
                    .collect();
                new_holders.extend(plan.moves.iter().map(|m| m.to));
                // Crashed holders keep their (currently unavailable) copy.
                new_holders.extend(
                    (0..self.config.nodes)
                        .map(NodeId)
                        .filter(|&v| !self.topo.is_active(v) && self.storage[v.0].has_data(id)),
                );
                new_holders.sort_unstable();
                new_holders.dedup();
                if let Some((item, _)) = self.data_registry.get_mut(&id) {
                    item.storing_nodes = new_holders;
                }
            }
        }
        if let Some(every) = self.config.migration_interval_secs {
            self.queue
                .schedule(now + SimTime::from_secs(every.max(1)), Event::MigrateData);
        }
    }

    fn on_mobility(&mut self, now: SimTime) {
        self.topo.mobility_step(&mut self.rng);
        if self.config.raft_consensus {
            // The paper's "general information consensus": replicate a
            // mobility update through raft. A random mover reports; the
            // proposal lands at the current leader if one is known.
            let mover = NodeId(self.rng.gen_range(0..self.config.nodes));
            let pos = self.topo.position(mover);
            let event = GeneralEvent::MobilityUpdate {
                node: mover,
                x: pos.x,
                y: pos.y,
            };
            if let Some(leader) = self.raft_nodes.iter().find_map(|n| n.leader_hint()) {
                // A crashed leader accepts no proposals; the update is
                // simply lost, like a client timing out against it.
                if self.topo.is_active(NodeId(leader.0)) {
                    let _ = self.raft_nodes[leader.0].propose(event);
                }
            }
        }
        self.queue.schedule(
            now + SimTime::from_secs(self.config.mobility_interval_secs),
            Event::MobilityStep,
        );
    }

    fn into_report(mut self) -> RunReport {
        let raft_committed_total: u64 = self
            .raft_nodes
            .iter_mut()
            .map(|n| n.take_committed().len() as u64)
            .sum();
        let delivery_p95 = self.delivery_samples.p95();
        // Radio energy implied by the byte counters (802.11 per-byte costs
        // from the device profile).
        let radio_total: f64 = (0..self.config.nodes)
            .map(|i| {
                let v = NodeId(i);
                self.transport.stats().sent_bytes(v) as f64 * self.config.device.tx_energy_per_byte
                    + self.transport.stats().received_bytes(v) as f64
                        * self.config.device.rx_energy_per_byte
            })
            .sum();
        let used: Vec<u64> = self.storage.iter().map(NodeStorage::used_slots).collect();
        let stats = self.transport.stats();
        let intervals: Vec<f64> = self
            .block_timestamps
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        let mean_interval = if intervals.is_empty() {
            0.0
        } else {
            intervals.iter().sum::<f64>() / intervals.len() as f64
        };
        let (byz_injected, byz_detected, reorgs, max_reorg_depth, quarantine_events, readmissions) =
            match &self.byz {
                Some(e) => (
                    e.injected(),
                    e.detected(),
                    e.reorgs(),
                    e.max_reorg_depth(),
                    e.quarantine_events(),
                    e.readmissions(),
                ),
                None => (0, 0, 0, 0, 0, 0),
            };
        let availability = {
            let resolved = self.completed_requests + self.failed_requests;
            if resolved == 0 {
                1.0
            } else {
                self.completed_requests as f64 / resolved as f64
            }
        };
        let inclusion_latency = LatencySummary::from_samples(&mut self.inclusion_samples);
        let fetch_latency = LatencySummary::from_samples(&mut self.delivery_samples);
        let slo_monitor =
            std::mem::replace(&mut self.slo, SloMonitor::new(SloThresholds::default()));
        let slo = slo_monitor.into_report(
            inclusion_latency,
            fetch_latency,
            availability,
            max_reorg_depth,
            quarantine_events,
        );
        RunReport {
            nodes: self.config.nodes,
            blocks_mined: self.chain.height(),
            data_generated: self.next_data_id,
            data_unstored: self.data_unstored,
            mean_node_overhead_mb: stats.mean_node_overhead() / 1e6,
            total_sent_mb: stats.total_sent() as f64 / 1e6,
            storage_gini: gini_counts(&used),
            delivery: self.delivery,
            delivery_p95,
            failed_requests: self.failed_requests,
            completed_requests: self.completed_requests,
            recoveries: self.recoveries,
            recovery: self.recovery,
            recovery_hops: self.recovery_hops,
            mean_block_interval_secs: mean_interval,
            mean_battery_percent: self.batteries.iter().map(Battery::percent).sum::<f64>()
                / self.config.nodes as f64,
            mean_replicas: if self.replica_items == 0 {
                0.0
            } else {
                self.replica_total as f64 / self.replica_items as f64
            },
            data_expired: self.data_expired,
            denials: self.denials,
            migrations: self.migrations,
            raft_messages: self.raft_messages,
            raft_heartbeats: self.raft_heartbeats,
            raft_bytes: self.raft_bytes,
            raft_committed: raft_committed_total,
            mean_radio_energy_j: radio_total / self.config.nodes as f64,
            faults_injected: self.injector.applied(),
            messages_dropped: self.transport.messages_dropped(),
            retries: self.retries,
            repairs_triggered: self.repairs_triggered,
            blocks_pruned: self.blocks_pruned,
            retained_blocks: self.chain.retained_len() as u64,
            snapshots_served: self.snapshots_served,
            snapshots_applied: self.snapshots_applied,
            snapshots_rejected: self.snapshots_rejected,
            peak_storage_slots: self.peak_storage_slots,
            peak_tracking_entries: self.peak_tracking_entries,
            under_replicated_item_seconds: self.checker.under_replicated_item_seconds,
            availability,
            byz_injected,
            byz_detected,
            reorgs,
            max_reorg_depth,
            quarantine_events,
            readmissions,
            invariant_violations: self.checker.violations,
            inclusion_latency,
            fetch_latency,
            slo,
            overload: self.overload,
            telemetry: telemetry::registry_snapshot(),
        }
    }

    /// The canonical chain (primarily for tests and examples).
    pub fn chain(&self) -> &Blockchain {
        &self.chain
    }

    /// The current topology snapshot.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Designated requester nodes.
    pub fn requesters(&self) -> &[NodeId] {
        &self.requesters
    }
}

impl fmt::Debug for EdgeNetwork {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EdgeNetwork")
            .field("nodes", &self.config.nodes)
            .field("height", &self.chain.height())
            .field("now", &self.queue.now())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> NetworkConfig {
        NetworkConfig {
            nodes: 12,
            data_items_per_min: 2.0,
            sim_minutes: 30,
            seed: 11,
            ..NetworkConfig::default()
        }
    }

    #[test]
    fn run_produces_blocks_at_roughly_t0() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert!(report.blocks_mined >= 10, "mined {}", report.blocks_mined);
        assert!(
            (report.mean_block_interval_secs - 60.0).abs() < 40.0,
            "interval {}",
            report.mean_block_interval_secs
        );
    }

    #[test]
    fn run_is_deterministic() {
        let a = EdgeNetwork::new(small_config()).unwrap().run();
        let b = EdgeNetwork::new(small_config()).unwrap().run();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = small_config();
        let a = EdgeNetwork::new(cfg.clone()).unwrap().run();
        cfg.seed = 12;
        let b = EdgeNetwork::new(cfg).unwrap().run();
        assert_ne!(a, b);
    }

    #[test]
    fn storage_is_fair() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert!(
            report.storage_gini < 0.35,
            "gini {} too high",
            report.storage_gini
        );
    }

    #[test]
    fn requests_get_served() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert!(report.completed_requests > 0);
        assert!(
            report.delivery.mean() < 10.0,
            "delivery {}",
            report.delivery
        );
    }

    #[test]
    fn battery_drains_with_pos_checks() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert!(report.mean_battery_percent < 100.0);
        assert!(report.mean_battery_percent > 50.0);
    }

    #[test]
    fn random_placement_also_runs() {
        let cfg = NetworkConfig {
            placement: Placement::Random,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(report.blocks_mined > 0);
        assert!(report.completed_requests > 0);
    }

    #[test]
    fn report_has_percentiles_and_radio_energy() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        if report.completed_requests > 0 {
            let p95 = report.delivery_p95.expect("samples exist");
            assert!(p95 >= 0.0);
            assert!(p95 >= report.delivery.mean() * 0.5);
            assert!(p95 <= report.delivery.max().unwrap() + 1e-9);
        }
        assert!(report.mean_radio_energy_j > 0.0);
        // Radio energy stays a small fraction of the battery (tens of MB
        // at µJ/byte ≈ tens of joules vs a 41.6 kJ battery).
        assert!(report.mean_radio_energy_j < 1000.0);
    }

    #[test]
    fn expired_data_is_swept() {
        let cfg = NetworkConfig {
            data_valid_minutes: 5,
            expiration_sweep_secs: 60,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(
            report.data_expired > 0,
            "no expirations in 30 min at 5-min validity"
        );
    }

    #[test]
    fn expiration_disabled_when_sweep_is_zero() {
        let cfg = NetworkConfig {
            data_valid_minutes: 5,
            expiration_sweep_secs: 0,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert_eq!(report.data_expired, 0);
    }

    #[test]
    fn malicious_storers_are_routed_around() {
        // Enough requesters and request pressure that at least one request
        // is structurally bound to hit a malicious storer first, whatever
        // the RNG stream picks for placement.
        let cfg = NetworkConfig {
            malicious_fraction: 0.4,
            requester_fraction: 0.5,
            request_interval_secs: 30,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(report.denials > 0, "no denials with 40% malicious storers");
        // Requests still mostly succeed thanks to replicas + the producer
        // fallback.
        assert!(report.completed_requests > 0);
        let total = report.completed_requests + report.failed_requests;
        assert!(
            report.completed_requests * 2 > total,
            "most requests should still succeed: {} of {}",
            report.completed_requests,
            total
        );
    }

    #[test]
    fn denied_storers_are_blacklisted_network_wide() {
        // With every non-requester node malicious, a denial should be
        // recorded at most once per (data, storer) pair.
        let cfg = NetworkConfig {
            malicious_fraction: 0.5,
            sim_minutes: 60,
            request_interval_secs: 60,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        // Denials happen but stay bounded by the number of (item, storer)
        // pairs, not by the number of requests.
        assert!(report.denials <= report.data_generated * 12);
    }

    #[test]
    fn raft_consensus_runs_and_heartbeats_dominate() {
        let cfg = NetworkConfig {
            raft_consensus: true,
            sim_minutes: 15,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(report.raft_messages > 0, "raft produced no traffic");
        assert!(report.raft_bytes > 0);
        // The paper's complaint: heartbeats drive the bulk of raft
        // traffic. Every heartbeat also triggers a response, so
        // heartbeat-caused messages are ~2× the heartbeat count; require
        // that pair to be at least half of everything.
        assert!(
            report.raft_heartbeats * 4 > report.raft_messages,
            "heartbeats {} of {} messages",
            report.raft_heartbeats,
            report.raft_messages
        );
        // Mobility events replicate to every live replica.
        assert!(report.raft_committed > 0, "no general event committed");
        // The blockchain keeps working alongside raft.
        assert!(report.blocks_mined > 5);
    }

    #[test]
    fn raft_disabled_by_default_costs_nothing() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert_eq!(report.raft_messages, 0);
        assert_eq!(report.raft_bytes, 0);
        assert_eq!(report.raft_committed, 0);
    }

    #[test]
    fn migration_pass_moves_data_under_churn() {
        let cfg = NetworkConfig {
            migration_interval_secs: Some(120),
            sim_minutes: 60,
            topology: edgechain_sim::TopologyConfig {
                mobility_range: 60.0,
                ..Default::default()
            },
            mobility_interval_secs: 30,
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(report.migrations > 0, "no migrations under heavy churn");
        // Migrated items must remain servable.
        assert!(report.completed_requests > 0);
    }

    #[test]
    fn migration_disabled_by_default() {
        let report = EdgeNetwork::new(small_config()).unwrap().run();
        assert_eq!(report.migrations, 0);
    }

    #[test]
    fn token_rescaling_runs_and_chain_stays_valid() {
        let cfg = NetworkConfig {
            token_rescale_blocks: Some(5),
            sim_minutes: 60,
            ..small_config()
        };
        let (report, chain) = EdgeNetwork::new(cfg).unwrap().run_with_chain();
        assert!(report.blocks_mined > 20);
        assert!(crate::chain::Blockchain::from_blocks(chain.as_slice().to_vec()).is_ok());
    }

    #[test]
    fn chain_is_internally_valid() {
        let net = EdgeNetwork::new(small_config()).unwrap();
        assert_eq!(net.topology().len(), 12);
        assert!(!net.requesters().is_empty());
        let (report, chain) = net.run_with_chain();
        assert!(report.blocks_mined > 0);
        // Re-validate the final chain from scratch, signatures included.
        let rebuilt = crate::chain::Blockchain::from_blocks(chain.as_slice().to_vec()).unwrap();
        for block in rebuilt.iter().skip(1) {
            crate::chain::Blockchain::verify_block_signatures(block).unwrap();
        }
        // Ledger derivation matches the mining history.
        let ledger = rebuilt.derive_ledger();
        let total_tokens: u64 = (0..12)
            .map(|i| {
                let acct = Identity::from_seed(small_config().seed + i).account();
                ledger
                    .balance(&acct)
                    .saturating_sub(ledger.initial_tokens())
            })
            .sum();
        assert_eq!(total_tokens, report.blocks_mined);
    }

    #[test]
    fn empty_fault_plan_changes_nothing() {
        // A run with the fault machinery compiled in but no plan must be
        // bit-identical to the baseline (same RNG stream, same traffic).
        let baseline = EdgeNetwork::new(small_config()).unwrap().run();
        let cfg = NetworkConfig {
            fault_plan: FaultPlan::none(),
            ..small_config()
        };
        let with_empty_plan = EdgeNetwork::new(cfg).unwrap().run();
        assert_eq!(baseline, with_empty_plan);
        assert_eq!(baseline.faults_injected, 0);
        assert_eq!(baseline.messages_dropped, 0);
        assert_eq!(baseline.invariant_violations, 0);
    }

    #[test]
    fn recover_missing_advances_height_immediately() {
        // Regression: recover_missing used to leave node_height stale
        // after pulling in the gap blocks, so the node re-requested blocks
        // it already held on the next receipt.
        let (_, chain) = EdgeNetwork::new(small_config()).unwrap().run_with_chain();
        assert!(chain.height() >= 3);
        let mut net = EdgeNetwork::new(small_config()).unwrap();
        net.chain = chain;
        // Some other node holds everything and can serve the gap.
        let holder = NodeId(1);
        for idx in 1..=net.chain.height() {
            net.storage[holder.0].store_block(idx);
        }
        // Node 0 knows only genesis and block 3: blocks 1-2 are missing.
        let v = NodeId(0);
        net.node_known[v.0].insert(3);
        assert_eq!(net.node_height[v.0], 0);
        net.recover_missing(v, 3, SimTime::from_secs(1));
        assert!(net.node_known[v.0].contains(&1));
        assert!(net.node_known[v.0].contains(&2));
        assert_eq!(
            net.node_height[v.0], 3,
            "height must advance through the recovered prefix"
        );
    }

    #[test]
    fn crash_and_restart_are_survived() {
        use edgechain_sim::FaultEvent;
        let cfg = NetworkConfig {
            nodes: 15,
            sim_minutes: 40,
            data_items_per_min: 2.0,
            request_interval_secs: 60,
            seed: 21,
            fault_plan: FaultPlan::new(vec![
                FaultEvent::Crash {
                    node: NodeId(3),
                    at: SimTime::from_secs(300),
                },
                FaultEvent::Restart {
                    node: NodeId(3),
                    at: SimTime::from_secs(900),
                },
                FaultEvent::Crash {
                    node: NodeId(7),
                    at: SimTime::from_secs(600),
                },
                FaultEvent::Restart {
                    node: NodeId(7),
                    at: SimTime::from_secs(1500),
                },
            ]),
            ..NetworkConfig::default()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert_eq!(report.faults_injected, 4);
        assert_eq!(report.invariant_violations, 0);
        assert!(report.blocks_mined > 10, "mined {}", report.blocks_mined);
        assert!(report.completed_requests > 0);
    }

    #[test]
    fn link_loss_drops_messages_and_is_bounded() {
        use edgechain_sim::FaultEvent;
        let cfg = NetworkConfig {
            sim_minutes: 40,
            fault_plan: FaultPlan::new(vec![FaultEvent::LinkLoss {
                prob: 0.3,
                from: SimTime::from_secs(60),
                until: SimTime::from_secs(1800),
            }]),
            ..small_config()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert_eq!(report.faults_injected, 2); // window start + end
        assert!(report.messages_dropped > 0);
        assert!(report.retries > 0, "lossy run should exercise backoff");
        assert_eq!(report.invariant_violations, 0);
    }

    #[test]
    fn repair_restores_replicas_after_a_crash() {
        use edgechain_sim::FaultEvent;
        // Crash two nodes early and never bring them back: any replicas
        // they held stay dark, and the miners' repair sweep must re-create
        // them on surviving nodes.
        let cfg = NetworkConfig {
            nodes: 15,
            sim_minutes: 60,
            data_items_per_min: 3.0,
            seed: 33,
            fault_plan: FaultPlan::new(vec![
                FaultEvent::Crash {
                    node: NodeId(2),
                    at: SimTime::from_secs(400),
                },
                FaultEvent::Crash {
                    node: NodeId(9),
                    at: SimTime::from_secs(500),
                },
            ]),
            ..NetworkConfig::default()
        };
        let report = EdgeNetwork::new(cfg.clone()).unwrap().run();
        assert!(
            report.repairs_triggered > 0,
            "expected repair activity: {report}"
        );
        assert_eq!(report.invariant_violations, 0);

        // With repair disabled the same schedule performs none.
        let no_repair = NetworkConfig {
            replica_repair: false,
            ..cfg
        };
        let r2 = EdgeNetwork::new(no_repair).unwrap().run();
        assert_eq!(r2.repairs_triggered, 0);
    }

    #[test]
    #[should_panic(expected = "fault plan must be valid")]
    fn invalid_fault_plan_is_rejected() {
        use edgechain_sim::FaultEvent;
        let cfg = NetworkConfig {
            fault_plan: FaultPlan::new(vec![FaultEvent::Crash {
                node: NodeId(99),
                at: SimTime::from_secs(1),
            }]),
            ..small_config()
        };
        let _ = EdgeNetwork::new(cfg);
    }

    #[test]
    fn pruning_bounds_retention_and_keeps_derived_state() {
        let cfg = NetworkConfig {
            sim_minutes: 60,
            prune_blocks: true,
            prune_retention_blocks: 8,
            ..small_config()
        };
        let interval = cfg.checkpoint_interval.max(1);
        let retention = cfg.prune_retention_blocks;
        let seed = cfg.seed;
        let (report, chain) = EdgeNetwork::new(cfg).unwrap().run_with_chain();
        assert!(report.blocks_pruned > 0, "no pruning in 60 min: {report}");
        assert!(chain.base_index() > 0);
        assert!(
            (chain.retained_len() as u64) <= interval + retention + 1,
            "retention unbounded: {} blocks held",
            chain.retained_len()
        );
        assert_eq!(report.retained_blocks, chain.retained_len() as u64);
        let anchor = chain.anchor().expect("pruned chain carries an anchor");
        assert!(anchor.verify(), "anchor signature must hold");
        // Ledger derivation spans the anchor: total minted tokens still
        // equal the logical height, pruned prefix included.
        let ledger = chain.derive_ledger();
        let total_tokens: u64 = (0..12)
            .map(|i| {
                let acct = Identity::from_seed(seed + i).account();
                ledger
                    .balance(&acct)
                    .saturating_sub(ledger.initial_tokens())
            })
            .sum();
        assert_eq!(total_tokens, report.blocks_mined);
    }

    #[test]
    fn pruning_below_the_retention_horizon_is_invisible() {
        // A retention window longer than the whole run means pruning never
        // fires — the report must be bit-identical to a pruning-off run.
        let baseline = EdgeNetwork::new(small_config()).unwrap().run();
        let cfg = NetworkConfig {
            prune_blocks: true,
            prune_retention_blocks: 10_000,
            ..small_config()
        };
        let with_pruning = EdgeNetwork::new(cfg).unwrap().run();
        assert_eq!(baseline, with_pruning);
        assert_eq!(baseline.blocks_pruned, 0);
    }

    #[test]
    fn snapshot_bootstrap_rejoins_a_deep_laggard() {
        use edgechain_sim::FaultEvent;
        // Node 3 sleeps through most of the run; by the time it restarts
        // the blocks it needs are pruned everywhere, so block-by-block
        // recovery is impossible and only a snapshot can catch it up.
        let cfg = NetworkConfig {
            nodes: 15,
            sim_minutes: 60,
            data_items_per_min: 2.0,
            request_interval_secs: 60,
            seed: 21,
            prune_blocks: true,
            prune_retention_blocks: 4,
            snapshot_bootstrap: true,
            fault_plan: FaultPlan::new(vec![
                FaultEvent::Crash {
                    node: NodeId(3),
                    at: SimTime::from_secs(120),
                },
                FaultEvent::Restart {
                    node: NodeId(3),
                    at: SimTime::from_secs(3_000),
                },
            ]),
            ..NetworkConfig::default()
        };
        let report = EdgeNetwork::new(cfg).unwrap().run();
        assert!(report.blocks_pruned > 0, "pruning never fired: {report}");
        assert!(
            report.snapshots_applied >= 1,
            "deep rejoiner should bootstrap from a snapshot: {report}"
        );
        assert_eq!(report.invariant_violations, 0, "invariant broken: {report}");
    }

    #[test]
    fn planted_violation_is_caught_at_default_cadence() {
        use edgechain_sim::FaultEvent;
        // A registry item claiming a storer that holds nothing, produced
        // by a key outside the network (no producer fallback), is a
        // durability violation from the first observation on. Both the
        // default (sparse) cadence and the exhaustive one must flag it.
        let plan = || {
            FaultPlan::new(vec![FaultEvent::LinkLoss {
                prob: 0.0,
                from: SimTime::from_secs(60),
                until: SimTime::from_secs(120),
            }])
        };
        let run_with_plant = |cfg: NetworkConfig| {
            let mut net = EdgeNetwork::new(cfg).unwrap();
            let foreign = Identity::from_seed(999);
            let mut item = crate::metadata::MetadataItem::new_signed(
                foreign.keys(),
                DataId(u64::MAX),
                crate::metadata::DataType::Sensing("PM2.5".into()),
                0,
                crate::metadata::Location {
                    label: "planted".into(),
                    x: 0.0,
                    y: 0.0,
                },
                1_440,
                None,
                1_000,
            );
            item.storing_nodes = vec![NodeId(1)];
            net.data_registry.insert(item.data_id, (item, 0));
            net.run()
        };
        let sparse = run_with_plant(NetworkConfig {
            fault_plan: plan(),
            ..small_config()
        });
        assert!(
            sparse.invariant_violations > 0,
            "default cadence missed the planted violation: {sparse}"
        );
        let dense = run_with_plant(NetworkConfig {
            fault_plan: plan(),
            invariant_every_event: true,
            ..small_config()
        });
        assert!(
            dense.invariant_violations >= sparse.invariant_violations,
            "exhaustive metering observed fewer violations than the default"
        );
    }
}
